"""Pytest bootstrap.

Makes the ``src`` layout importable even when the package has not been
installed (useful in offline environments where ``pip install -e .`` cannot
build an editable wheel); an installed ``repro`` package takes precedence.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
