"""Setuptools entry point.

The build environment used for this reproduction has no network access and
no ``wheel`` package, so the PEP 517 editable-install path is unavailable;
keeping a ``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` route.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
