"""The :class:`FilterService` facade and its subscription handles.

This module is the implementation behind :mod:`repro.api`; see the
package docstring for the API tour.  The facade owns one
:class:`~repro.service.broker.Broker` (and through it the adaptive
engine) and exposes the paper's *service* framing: users subscribe
profiles and receive durable :class:`SubscriptionHandle` objects whose
pause/resume/modify/cancel life-cycle rides the engine's incremental
maintenance path — subscription churn never rebuilds the filter.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Mapping

from repro.analysis.calibration import CalibrationSnapshot
from repro.core.builder import ProfileBuilder
from repro.core.errors import ProfileError, ServiceError, SubscriptionError
from repro.core.events import Event
from repro.core.profiles import Profile
from repro.core.schema import Schema
from repro.matching.index.kernel import KernelStats
from repro.matching.registry import EngineRegistry
from repro.matching.sharded import ShardStats
from repro.matching.statistics import FilterStatistics
from repro.service.adaptive import (
    AdaptationPolicy,
    AdaptationRecord,
    resolve_policy_engine,
)
from repro.service.broker import Broker, PublishOutcome
from repro.service.delivery import DeliveryStats, WebhookConfig
from repro.service.durability.store import DurabilityStats, SubscriptionStore
from repro.service.notifications import NotificationLog, NotificationSink
from repro.service.subscriptions import KEEP_DELIVERY, Subscription

__all__ = ["FilterService", "ServiceStats", "SubscriptionHandle"]

#: States of a subscription handle.
_ACTIVE, _PAUSED, _CANCELLED = "active", "paused", "cancelled"


@dataclass(frozen=True)
class ServiceStats:
    """One unified snapshot of a :class:`FilterService`'s observability.

    Merges the three accounting layers that previously had to be read
    separately: the broker's
    :class:`~repro.matching.statistics.FilterStatistics` (events,
    operations, notifications), the index family's aggregated
    :class:`~repro.matching.index.kernel.KernelStats` (columnar
    batch-kernel executed work, across replans), and the adaptive
    engine's :class:`~repro.service.adaptive.AdaptationRecord` history.
    """

    #: Events published (excluding quenched ones, which never reach the
    #: filter component).
    events: int
    #: Events that matched at least one profile.
    matched_events: int
    #: Notifications delivered in total.
    notifications: int
    #: Total comparison operations the filter spent.
    operations: int
    #: The paper's primary metric (0.0 before the first event).
    average_operations_per_event: float
    #: Average notified profiles per event (0.0 before the first event).
    average_matches_per_event: float
    #: Fraction of events matching at least one profile.
    match_rate: float
    #: Events suppressed by publisher-side quenching.
    quenched_events: int
    #: Registered subscriptions (paused ones included).
    subscriptions: int
    #: Subscriptions currently paused.
    paused_subscriptions: int
    #: Engine the policy selects (a registry name or ``"auto"``).
    engine: str
    #: Family of the matcher currently running (``None`` until the first
    #: subscription builds an engine).
    engine_family: str | None
    #: Aggregated columnar batch-kernel accounting (all-zero when the
    #: batch path never ran).
    kernel: KernelStats
    #: Every re-optimisation decision taken so far, oldest first.
    adaptations: tuple[AdaptationRecord, ...]
    #: Notification-delivery accounting across every executor the
    #: service instantiated (all-zero with ``mode="inline"`` when no
    #: sink ever received a notification).
    delivery: DeliveryStats = DeliveryStats()
    #: Partitioning snapshot of the running matcher — shard count,
    #: executor backend and per-shard profile loads (``None`` whenever
    #: the running family is unsharded).
    shards: ShardStats | None = None
    #: Durable subscription-store accounting — journal sequence,
    #: snapshots taken, records replayed at boot (``None`` when the
    #: service runs without a store).
    durability: DurabilityStats | None = None
    #: Measured-vs-predicted cost-calibration state of the adaptive
    #: engine — per-family correction factors and the most recent paired
    #: samples (``None`` until the first subscription builds an engine).
    calibration: CalibrationSnapshot | None = None

    @property
    def batch_dedup_factor(self) -> float:
        """Return charged/executed kernel operations (1.0 = no batch runs)."""
        return self.kernel.dedup_factor

    @property
    def applied_adaptations(self) -> int:
        """Return how many re-optimisation decisions were applied."""
        return sum(1 for record in self.adaptations if record.applied)

    @property
    def recent_adaptations(self) -> tuple[AdaptationRecord, ...]:
        """Return the newest re-optimisation decisions (up to eight)."""
        return self.adaptations[-8:]


class SubscriptionHandle:
    """Durable handle of one subscription (returned by ``subscribe``).

    The handle outlives engine replans and family switches: pause,
    resume, modify and cancel all route through the broker's incremental
    maintenance, so the filter structures and the adaptation history
    survive any amount of handle churn.  Handles are idempotent where it
    is safe (pausing a paused handle is a no-op) and strict where it is
    not (anything on a cancelled handle raises
    :class:`~repro.core.errors.SubscriptionError`).
    """

    def __init__(self, service: "FilterService", subscription: Subscription) -> None:
        self._service = service
        self._subscription = subscription
        self._state = _ACTIVE

    # -- introspection ---------------------------------------------------------
    @property
    def subscription_id(self) -> str:
        return self._subscription.subscription_id

    @property
    def profile(self) -> Profile:
        """Return the currently registered profile."""
        return self._subscription.profile

    @property
    def subscriber(self) -> str:
        return self._subscription.subscriber

    @property
    def state(self) -> str:
        """Return ``"active"``, ``"paused"`` or ``"cancelled"``."""
        return self._state

    @property
    def is_active(self) -> bool:
        return self._state == _ACTIVE

    @property
    def is_paused(self) -> bool:
        return self._state == _PAUSED

    @property
    def is_cancelled(self) -> bool:
        return self._state == _CANCELLED

    def notifications_received(self) -> int:
        """Return how many notifications this handle's profile received."""
        log: NotificationLog = self._service.broker.notification_log
        return log.count_per_profile().get(self.profile.profile_id, 0)

    # -- life-cycle ------------------------------------------------------------
    def _require_live(self, operation: str) -> None:
        if self._state == _CANCELLED:
            raise SubscriptionError(
                f"cannot {operation} subscription {self.subscription_id!r}: "
                "the handle was cancelled"
            )

    def pause(self) -> "SubscriptionHandle":
        """Stop deliveries (idempotent); the registration survives."""
        self._require_live("pause")
        if self._state != _PAUSED:
            self._service.broker.pause_subscription(self.subscription_id)
            self._state = _PAUSED
        return self

    def resume(self) -> "SubscriptionHandle":
        """Re-enable deliveries (idempotent)."""
        self._require_live("resume")
        if self._state == _PAUSED:
            self._service.broker.resume_subscription(self.subscription_id)
            self._state = _ACTIVE
        return self

    def modify(self, profile: Profile | ProfileBuilder) -> "SubscriptionHandle":
        """Replace the subscribed profile in place.

        A :class:`~repro.core.builder.ProfileBuilder` compiles under the
        *current* profile id (same subscription, new predicates); a
        ready-made :class:`~repro.core.profiles.Profile` is registered
        as given.  Works while paused — the new profile attaches on
        resume.
        """
        self._require_live("modify")
        if isinstance(profile, ProfileBuilder):
            current = self._subscription.profile
            profile = profile.build(
                current.profile_id,
                subscriber=current.subscriber,
                priority=current.priority,
            )
        elif not isinstance(profile, Profile):
            raise ProfileError(
                f"modify() needs a Profile or ProfileBuilder, got {type(profile).__name__}"
            )
        self._subscription = self._service.broker.modify_subscription(
            self.subscription_id, profile
        )
        return self

    def deliver_to(
        self,
        sink: NotificationSink | None,
        *,
        delivery: object = KEEP_DELIVERY,
    ) -> "SubscriptionHandle":
        """Pin this subscription's sink (and, optionally, delivery mode).

        ``sink=None`` detaches the sink (the notification log still
        records matches).  ``delivery`` routes this subscription's
        notifications through the named executor (``"inline"``,
        ``"threadpool"``, ``"asyncio"``); omitted, an existing pin is
        kept, while an explicit ``None`` resets the subscription to the
        service-default executor.  Notifications already queued for the
        old sink still reach it — and when the re-pin *changes executor*,
        new notifications may run before that backlog (FIFO holds per
        (subscription, executor); call :meth:`FilterService.drain` first
        for a clean handover).
        """
        self._require_live("redirect")
        self._subscription = self._service.broker.set_subscription_sink(
            self.subscription_id, sink, delivery=delivery
        )
        return self

    def cancel(self) -> Subscription:
        """Unsubscribe for good; further operations on the handle raise."""
        self._require_live("cancel")
        subscription = self._service.broker.unsubscribe(self.subscription_id)
        self._state = _CANCELLED
        self._service._forget(self.subscription_id)
        return subscription

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"SubscriptionHandle({self.subscription_id!r}, "
            f"profile={self.profile.profile_id!r}, state={self._state!r})"
        )


class FilterService:
    """Unified client facade of the event notification service.

    One object bundles what previously took four (broker, registry,
    engine, statistics): subscribe and get a durable handle, publish
    events or batches, read one merged :meth:`stats` snapshot.  The
    engine roster is the pluggable registry of
    :mod:`repro.matching.registry`; pick a family (or ``"auto"``) by
    name, or carry a custom registry on the policy.
    """

    def __init__(
        self,
        schema: Schema,
        *,
        engine: str | None = None,
        adaptive: bool = True,
        policy: AdaptationPolicy | None = None,
        shard_count: int | None = None,
        quenching: bool = False,
        service_id: str = "filter-service",
        delivery: str = "inline",
        max_workers: int | None = None,
        queue_capacity: int | None = None,
        overflow: str = "block",
        retry_attempts: int = 1,
        retry_backoff: float = 0.0,
        webhook: WebhookConfig | None = None,
        store: SubscriptionStore | None = None,
    ) -> None:
        """Create a service over ``schema``.

        ``engine`` names any registered matcher family or ``"auto"``
        (the default when no policy is given: the facade serves the
        paper's adaptive-service framing).  ``policy`` carries the full
        adaptation knobs — including
        :attr:`~repro.service.adaptive.AdaptationPolicy.min_columnar_batch`
        and a custom
        :attr:`~repro.service.adaptive.AdaptationPolicy.registry` — and
        must agree with ``engine`` when both are given.

        ``shard_count`` partitions the profile population for the
        partition-parallel families (``engine="sharded"``): ``None``
        keeps the family's cores-based default, and a policy carrying
        its own ``shard_count`` must agree when both are given.

        ``delivery`` selects the default notification executor
        (``"inline"``: sinks run synchronously inside ``publish``, the
        historical semantics; ``"threadpool"``: a bounded pool of
        ``max_workers`` threads; ``"asyncio"``: async sinks awaited on a
        service-owned event loop).  Asynchronous executors bound each
        delivery lane at ``queue_capacity`` tasks and apply ``overflow``
        (``"block"`` | ``"drop_oldest"`` | ``"raise"``) when a lane is
        full.  Use the service as a context manager — or call
        :meth:`close` — to drain in-flight deliveries on shutdown.

        ``retry_attempts`` / ``retry_backoff`` give the threadpool and
        asyncio executors a bounded budget for transient sink
        exceptions (default: one attempt, the historical semantics);
        ``webhook`` tunes the remote
        :class:`~repro.service.delivery.WebhookDeliveryExecutor`
        (timeouts, backoff, circuit breaker, dead-letter capacity).

        ``store`` makes subscriptions durable: every life-cycle
        operation journals to the
        :class:`~repro.api.SubscriptionStore` before returning, and a
        service booted over a non-empty store replays snapshot + tail
        into the engine registry and resumes the durable handles —
        ``service.handle("sub-7")`` works after a restart (webhook
        sinks reconstructed; in-process sinks must be re-attached via
        :meth:`SubscriptionHandle.deliver_to`).
        """
        if policy is None and engine is None:
            engine = "auto"  # the facade serves the paper's adaptive framing
        policy = resolve_policy_engine(policy, engine)
        if shard_count is not None:
            if policy.shard_count is not None and policy.shard_count != shard_count:
                raise ServiceError(
                    f"conflicting shard count: shard_count={shard_count!r} but the "
                    f"adaptation policy selects {policy.shard_count!r}; set one or "
                    "the other"
                )
            # replace() re-runs the policy's validation (shard_count >= 1).
            policy = replace(policy, shard_count=shard_count)
        self._broker = Broker(
            schema,
            broker_id=service_id,
            adaptive=adaptive,
            adaptation_policy=policy,
            enable_quenching=quenching,
            delivery=delivery,
            max_workers=max_workers,
            queue_capacity=queue_capacity,
            overflow=overflow,
            retry_attempts=retry_attempts,
            retry_backoff=retry_backoff,
            webhook=webhook,
            store=store,
        )
        self._handles: dict[str, SubscriptionHandle] = {}
        self._profile_counter = 0
        # A store replayed subscriptions into the broker before we got
        # here: resume a durable handle for each, in original order.
        for subscription in self._broker.subscriptions:
            handle = SubscriptionHandle(self, subscription)
            if self._broker.is_paused(subscription.subscription_id):
                handle._state = _PAUSED
            self._handles[subscription.subscription_id] = handle

    @classmethod
    def from_profile(cls, name_or_path, *, engine: str | None = None, **overrides):
        """Construct a service pre-configured from a scenario profile.

        ``name_or_path`` is a corpus profile name, a path to a profile
        file, or an already-loaded
        :class:`~repro.workloads.profiles.ScenarioProfile`.  The
        profile's engine hints become the service configuration — engine
        family, pinned ``shard_count`` and adaptation knobs (via a
        generated :class:`~repro.service.adaptive.AdaptationPolicy`),
        delivery mode from the run shape — so examples, benchmarks and
        the corpus runner stop duplicating setup code.  ``engine``
        overrides the hinted family (the corpus runner sweeps it);
        any other constructor keyword can be overridden too.
        """
        from repro.workloads.profiles import ScenarioProfile, load_profile

        if isinstance(name_or_path, ScenarioProfile):
            profile = name_or_path
        else:
            profile = load_profile(name_or_path)
        hints = profile.engine
        kwargs: dict = {"engine": engine if engine is not None else hints.engine}
        pinned = hints.policy_overrides()
        if pinned and "policy" not in overrides:
            kwargs["policy"] = AdaptationPolicy(engine=kwargs["engine"], **pinned)
        kwargs["delivery"] = profile.run.delivery
        kwargs.update(overrides)
        return cls(profile.spec.schema, **kwargs)

    # -- introspection ---------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._broker.schema

    @property
    def broker(self) -> Broker:
        """Return the underlying broker (service-layer escape hatch)."""
        return self._broker

    @property
    def policy(self) -> AdaptationPolicy:
        """Return the resolved adaptation policy."""
        return self._broker.adaptation_policy

    @property
    def registry(self) -> EngineRegistry:
        """Return the engine roster this service resolves families against."""
        return self.policy.engine_registry

    def engines(self) -> tuple[str, ...]:
        """Return every selectable engine name (families + ``"auto"``)."""
        return self.registry.engine_names()

    def handles(self) -> list[SubscriptionHandle]:
        """Return the live (non-cancelled) handles, oldest first."""
        return list(self._handles.values())

    def handle(self, subscription_id: str) -> SubscriptionHandle:
        """Return the handle of a subscription id."""
        try:
            return self._handles[subscription_id]
        except KeyError as exc:
            raise SubscriptionError(
                f"unknown subscription id {subscription_id!r}"
            ) from exc

    def _forget(self, subscription_id: str) -> None:
        self._handles.pop(subscription_id, None)

    # -- subscribing -----------------------------------------------------------
    def _generate_profile_id(self) -> str:
        """Return the next free ``profile-N`` id.

        Skips ids already registered (a user may have hand-picked
        ``profile-3``), so auto-named builder subscriptions never collide.
        """
        registry = self._broker.subscriptions
        while True:
            self._profile_counter += 1
            candidate = f"profile-{self._profile_counter}"
            if not registry.has_profile_id(candidate):
                return candidate

    def _compile(
        self,
        profile: Profile | ProfileBuilder,
        profile_id: str | None,
        subscriber: str,
    ) -> Profile:
        if isinstance(profile, ProfileBuilder):
            if profile_id is None:
                profile_id = self._generate_profile_id()
            return profile.build(profile_id, subscriber=subscriber)
        if not isinstance(profile, Profile):
            raise ProfileError(
                f"subscribe() needs a Profile or ProfileBuilder, got {type(profile).__name__}"
            )
        if profile_id is not None and profile_id != profile.profile_id:
            raise ProfileError(
                f"profile_id={profile_id!r} conflicts with the profile's own id "
                f"{profile.profile_id!r}; pass one or the other"
            )
        return profile

    def subscribe(
        self,
        profile: Profile | ProfileBuilder,
        *,
        subscriber: str = "anonymous",
        profile_id: str | None = None,
        sink: NotificationSink | None = None,
        delivery: str | None = None,
    ) -> SubscriptionHandle:
        """Register a profile (or fluent builder) and return its handle.

        Builders compile under ``profile_id`` (auto-generated
        ``profile-N`` when omitted).  The subscription attaches through
        the engine's incremental maintenance; ``sink`` is invoked for
        every delivered notification (an ``async def`` sink works too —
        pair it with ``delivery="asyncio"``).  ``delivery`` pins this
        subscription to one executor mode, overriding the service
        default.
        """
        compiled = self._compile(profile, profile_id, subscriber)
        subscription = self._broker.subscribe(
            compiled, subscriber, sink=sink, delivery=delivery
        )
        handle = SubscriptionHandle(self, subscription)
        self._handles[subscription.subscription_id] = handle
        return handle

    def subscribe_all(
        self,
        profiles: Iterable[Profile | ProfileBuilder],
        *,
        subscriber: str = "anonymous",
    ) -> list[SubscriptionHandle]:
        """Subscribe many profiles/builders (one engine build, atomic)."""
        compiled = [self._compile(profile, None, subscriber) for profile in profiles]
        subscriptions = self._broker.subscribe_all(compiled, subscriber)
        handles = []
        for subscription in subscriptions:
            handle = SubscriptionHandle(self, subscription)
            self._handles[subscription.subscription_id] = handle
            handles.append(handle)
        return handles

    # -- publishing ------------------------------------------------------------
    @staticmethod
    def _as_event(event: Event | Mapping[str, object]) -> Event:
        if isinstance(event, Event):
            return event
        return Event(dict(event))

    def publish(self, event: Event | Mapping[str, object]) -> PublishOutcome:
        """Publish one event (plain mappings are wrapped into events)."""
        return self._broker.publish(self._as_event(event))

    def publish_batch(
        self, events: Iterable[Event | Mapping[str, object]]
    ) -> list[PublishOutcome]:
        """Publish a batch atomically through the engine's batch kernel."""
        return self._broker.publish_batch(
            [self._as_event(event) for event in events]
        )

    # -- delivery life-cycle ---------------------------------------------------
    def drain(self) -> None:
        """Block until every queued notification reached (or missed) its sink.

        A no-op under pure inline delivery; with ``threadpool`` /
        ``asyncio`` executors this is the barrier tests and shutdown
        paths use before reading sink-side state.
        """
        self._broker.drain_deliveries()

    def dead_letters(self):
        """Return the webhook dead-letter queue, oldest first.

        Tasks that exhausted their retry budget or were failed fast by
        an open circuit breaker; empty when no webhook executor ran.
        """
        return self._broker.dead_letters()

    def close(self, *, drain: bool = True) -> None:
        """Shut the delivery subsystem down (idempotent).

        Drains the asynchronous executors by default so no accepted
        notification is lost; ``drain=False`` discards queued deliveries
        (counted as ``dropped`` in :attr:`ServiceStats.delivery`).  A
        closed service rejects further publishing with
        :class:`~repro.core.errors.DeliveryError`; statistics and
        handles stay readable.
        """
        self._broker.close(drain=drain)

    def __enter__(self) -> "FilterService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        # Deliver what was accepted on a clean exit; on an exception
        # prefer a fast shutdown over blocking on a backlog.
        self.close(drain=exc_type is None)

    # -- observability ---------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Return one merged observability snapshot (see :class:`ServiceStats`)."""
        statistics: FilterStatistics = self._broker.statistics
        events = statistics.events
        shards = None
        calibration = None
        if self._broker.has_engine:
            engine = self._broker.engine
            kernel = engine.kernel_stats()
            adaptations = tuple(engine.adaptations())
            engine_family = engine.engine_family
            calibration = engine.calibration()
            shard_stats = getattr(engine.matcher, "shard_stats", None)
            if shard_stats is not None:
                shards = shard_stats()
        else:
            kernel = KernelStats()
            adaptations = ()
            engine_family = None
        return ServiceStats(
            events=events,
            matched_events=statistics.matched_events,
            notifications=statistics.total_notifications,
            operations=statistics.total_operations,
            average_operations_per_event=(
                statistics.average_operations_per_event() if events else 0.0
            ),
            average_matches_per_event=(
                statistics.average_matches_per_event() if events else 0.0
            ),
            match_rate=statistics.match_rate() if events else 0.0,
            quenched_events=self._broker.quenched_events,
            subscriptions=len(self._broker.subscriptions),
            paused_subscriptions=len(self._broker.paused_subscription_ids),
            engine=self.policy.engine,
            engine_family=engine_family,
            kernel=kernel,
            adaptations=adaptations,
            delivery=self._broker.delivery_stats(),
            shards=shards,
            durability=self._broker.durability_stats(),
            calibration=calibration,
        )

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"FilterService(engine={self.policy.engine!r}, "
            f"subscriptions={len(self._broker.subscriptions)})"
        )
