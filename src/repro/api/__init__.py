"""``repro.api`` — the stable, ergonomic surface of the filtering service.

The paper frames content-based filtering as a *service* users subscribe
to; this package is that service boundary.  Engines, statistics and the
subscription life-cycle keep evolving underneath
(:mod:`repro.matching`, :mod:`repro.service`), while the names exported
here — locked, with signatures, by ``tests/test_public_api.py`` — stay
put.

API tour
--------

**1. Build a service.**  One :class:`FilterService` per schema; pick an
engine family by registry name (``"tree"``, ``"index"``) or let
``"auto"`` arbitrate from the observed event distributions (the
default)::

    from repro.api import FilterService, where
    from repro.workloads import environmental_schema

    service = FilterService(environmental_schema())   # engine="auto"

**2. Subscribe with the fluent builder** (or any hand-built
:class:`~repro.core.profiles.Profile` — the two compile bit-identically)
and keep the returned durable handle::

    alarm = service.subscribe(
        where("temperature").at_least(40) & where("humidity").between(80, 100),
        subscriber="alice",
    )

**3. Publish** events one at a time or in batches (batches reach the
index family's columnar kernel)::

    outcome = service.publish({"temperature": 45, "humidity": 90, ...})
    outcomes = service.publish_batch(ticks)

**4. Manage the subscription through its handle.**  Pause, resume,
modify and cancel all ride the engine's incremental maintenance — no
filter rebuild, and the adaptation history survives::

    alarm.pause()
    alarm.modify(where("temperature").at_least(50))
    alarm.resume()
    alarm.cancel()

**5. Observe** everything through one snapshot merging the filter
statistics, the batch-kernel accounting and the adaptation history::

    snapshot = service.stats()
    snapshot.average_operations_per_event
    snapshot.batch_dedup_factor
    snapshot.adaptations[-1].engine

**6. Take delivery off the hot path.**  The default executor runs sinks
inline (synchronously); a heavy-traffic service hands them to a bounded
worker pool or an asyncio loop — per-subscription FIFO order, bounded
backpressure queues, and a draining close are guaranteed either way::

    with FilterService(schema, delivery="threadpool", max_workers=8) as service:
        service.subscribe(where("symbol").eq("MSFT"), sink=slow_webhook)
        service.subscribe(where("price").at_least(100), sink=an_async_def_sink,
                          delivery="asyncio")
        service.publish_batch(ticks)      # matching never waits on a sink
        service.drain()                   # barrier: all sinks caught up
        service.stats().delivery          # dispatched/delivered/dropped/...

**7. Survive restarts and leave the process.**  A
:class:`SubscriptionStore` journals every subscription operation
(JSONL WAL or SQLite, snapshot + log compaction); booting a service
over the same store replays the state and resumes the durable handles
by id.  A :class:`WebhookSink` pins a subscription to the remote
``webhook`` executor — per-endpoint FIFO lanes, retry budget with
exponential backoff, circuit breaker, dead-letter queue::

    store = JsonlWalStore("state/subscriptions")
    with FilterService(schema, store=store) as service:
        service.subscribe(where("price").at_least(100),
                          sink=WebhookSink("https://example.test/hook"),
                          delivery="webhook")
    # after a restart: same directory, same subscriptions
    service = FilterService(schema, store=JsonlWalStore("state/subscriptions"))
    service.stats().durability            # seq/snapshots/replayed/...

**8. Plug in an engine.**  Matcher families live in the engine registry
(:mod:`repro.matching.registry`); registering an
:class:`~repro.matching.registry.EngineSpec` makes a third-party family
selectable by name — globally via :func:`default_registry`, or per
service via ``AdaptationPolicy(registry=...)`` — without touching
``repro.service``::

    from repro.api import AdaptationPolicy, EngineSpec, default_registry

    default_registry().register(
        EngineSpec(name="bitmap", factory=lambda ctx: BitmapMatcher(ctx.profiles))
    )
    service = FilterService(schema, engine="bitmap")

**9. Go distributed.**  :class:`NetworkService` is the same facade over
a Siena-style broker overlay: subscribe at a *home* broker, publish
anywhere, and covering-reduced routing tables (maintained incrementally
under churn) suppress events as close to the publisher as possible —
see ``docs/routing.md``::

    net = NetworkService(schema)
    for b in ("edge", "core", "hub"):
        net.add_broker(b)
    net.connect("edge", "core"); net.connect("core", "hub")
    alarm = net.subscribe(where("temperature").at_least(40), at="hub")
    net.publish({"temperature": 45, ...}, at="edge")
    net.stats().suppression_rate
"""

from repro.analysis.calibration import (
    CalibrationSample,
    CalibrationSnapshot,
    CostCalibrator,
)
from repro.core.builder import AttributeClause, ProfileBuilder, build_profiles, where
from repro.core.events import Event
from repro.core.profiles import Profile
from repro.core.schema import Attribute, Schema
from repro.matching.registry import (
    EngineCapabilities,
    EngineRegistry,
    EngineSpec,
    default_registry,
)
from repro.matching.sharded import ShardStats
from repro.service.adaptive import AdaptationPolicy, AdaptationRecord
from repro.service.broker import PublishOutcome
from repro.service.delivery import (
    DeliveryStats,
    WebhookConfig,
    WebhookSink,
)
from repro.service.durability import (
    DurabilityStats,
    InMemorySubscriptionStore,
    JsonlWalStore,
    SqliteSubscriptionStore,
    SubscriptionStore,
)
from repro.service.routing import (
    BrokerStats,
    NetworkDeliveryReport,
    NetworkService,
    NetworkStats,
    NetworkSubscriptionHandle,
)
from repro.api.service import FilterService, ServiceStats, SubscriptionHandle

__all__ = [
    "AdaptationPolicy",
    "AdaptationRecord",
    "Attribute",
    "AttributeClause",
    "BrokerStats",
    "CalibrationSample",
    "CalibrationSnapshot",
    "CostCalibrator",
    "DeliveryStats",
    "DurabilityStats",
    "EngineCapabilities",
    "EngineRegistry",
    "EngineSpec",
    "Event",
    "FilterService",
    "InMemorySubscriptionStore",
    "JsonlWalStore",
    "NetworkDeliveryReport",
    "NetworkService",
    "NetworkStats",
    "NetworkSubscriptionHandle",
    "Profile",
    "ProfileBuilder",
    "PublishOutcome",
    "Schema",
    "ServiceStats",
    "ShardStats",
    "SqliteSubscriptionStore",
    "SubscriptionHandle",
    "SubscriptionStore",
    "WebhookConfig",
    "WebhookSink",
    "build_profiles",
    "default_registry",
    "where",
]
