"""Reproduction of the paper's worked Examples 2-4.

Example 2 studies value reordering of the temperature attribute (Measure V1
vs natural order vs binary search); Example 3 studies attribute reordering
(Measures A1/A2); Example 4 combines both (V1 + A2).  The functions here
rebuild those computations with the library's analytical cost model and
return structured results that `EXPERIMENTS.md` and the benchmark suite
compare against the paper's hand-computed numbers.

The paper's values for Example 2 are reproduced exactly; for Examples 3-4
the paper's hand computation leaves the cost of don't-care (``*``) and
residual (``(*)``) edges unspecified, so the absolute per-level numbers can
deviate while the *ordering conclusions* (reordering by A1/A2 reduces the
expected operation count, V1+A2 is the best combination, binary search lies
in between) are checked to hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.cost_model import (
    AttributeCost,
    TreeCost,
    attribute_response_time,
    expected_tree_cost,
)
from repro.core.profiles import ProfileSet
from repro.core.subranges import build_partition
from repro.matching.tree.builder import build_tree
from repro.matching.tree.config import SearchStrategy, TreeConfiguration
from repro.selectivity.attribute_measures import AttributeMeasure
from repro.selectivity.optimizer import TreeOptimizer
from repro.selectivity.value_measures import ValueMeasure
from repro.workloads.toy import (
    HUMIDITY,
    RADIATION,
    TEMPERATURE,
    environmental_profiles,
    example2_temperature_distribution,
    example3_event_distributions,
)

__all__ = [
    "Example2Result",
    "Example3Result",
    "Example4Result",
    "example2_results",
    "example3_results",
    "example4_results",
    "PAPER_EXAMPLE2",
    "PAPER_EXAMPLE3",
    "PAPER_EXAMPLE4",
]

#: The paper's hand-computed reference values.
PAPER_EXAMPLE2 = {
    "event_order_expectation": 0.87,
    "event_order_response": 1.21,
    "binary_expectation": 1.65,
    "binary_response": 1.99,
    "natural_expectation": 2.44,
}
PAPER_EXAMPLE3 = {
    "selectivity_a1": {TEMPERATURE: 0.625, HUMIDITY: 0.75, RADIATION: 0.0},
    "natural_total": 3.371,
    "reordered_total": 1.91,
}
PAPER_EXAMPLE4 = {
    "combined_total": 1.08,
    "binary_total": 1.616,
}


@dataclass(frozen=True)
class Example2Result:
    """Expected values for the temperature attribute under three orderings."""

    natural: AttributeCost
    event_order: AttributeCost
    binary: AttributeCost


@dataclass(frozen=True)
class Example3Result:
    """Attribute selectivities and per-level expectations for Example 3."""

    selectivity_a1: Mapping[str, float]
    selectivity_a2: Mapping[str, float]
    natural_order: tuple[str, ...]
    reordered_order: tuple[str, ...]
    natural_cost: TreeCost
    reordered_cost: TreeCost


@dataclass(frozen=True)
class Example4Result:
    """Combined value + attribute reordering (V1 + A2) vs binary search."""

    combined_cost: TreeCost
    binary_cost: TreeCost
    natural_cost: TreeCost


def _toy_profiles() -> ProfileSet:
    return environmental_profiles()


def example2_results() -> Example2Result:
    """Reproduce Example 2 (single-attribute value reordering)."""
    profiles = _toy_profiles()
    partition = build_partition(profiles, TEMPERATURE)
    distribution = example2_temperature_distribution()
    optimizer = TreeOptimizer(
        profiles,
        {
            TEMPERATURE: distribution,
            **{
                name: dist
                for name, dist in example3_event_distributions().items()
                if name != TEMPERATURE
            },
        },
    )
    natural = attribute_response_time(partition, distribution)
    event_order = attribute_response_time(
        partition,
        distribution,
        optimizer.value_order(TEMPERATURE, ValueMeasure.V1_EVENT),
    )
    binary = attribute_response_time(
        partition, distribution, strategy=SearchStrategy.BINARY
    )
    return Example2Result(natural=natural, event_order=event_order, binary=binary)


def example3_results() -> Example3Result:
    """Reproduce Example 3 (attribute reordering by Measures A1/A2)."""
    profiles = _toy_profiles()
    distributions = example3_event_distributions()
    optimizer = TreeOptimizer(profiles, distributions)

    selectivity_a1 = optimizer.attribute_scores(AttributeMeasure.A1_ZERO_FRACTION)
    selectivity_a2 = optimizer.attribute_scores(AttributeMeasure.A2_ZERO_PROBABILITY)

    natural_order = tuple(profiles.schema.names)
    reordered_order = optimizer.attribute_order(AttributeMeasure.A1_ZERO_FRACTION)

    natural_tree = build_tree(
        profiles, TreeConfiguration(natural_order, {}, SearchStrategy.LINEAR, "natural")
    )
    reordered_tree = build_tree(
        profiles, TreeConfiguration(reordered_order, {}, SearchStrategy.LINEAR, "A1")
    )
    natural_cost = expected_tree_cost(natural_tree, distributions)
    reordered_cost = expected_tree_cost(reordered_tree, distributions)
    return Example3Result(
        selectivity_a1=selectivity_a1,
        selectivity_a2=selectivity_a2,
        natural_order=natural_order,
        reordered_order=reordered_order,
        natural_cost=natural_cost,
        reordered_cost=reordered_cost,
    )


def example4_results() -> Example4Result:
    """Reproduce Example 4 (combined V1 value + A2 attribute reordering)."""
    profiles = _toy_profiles()
    distributions = example3_event_distributions()
    optimizer = TreeOptimizer(profiles, distributions)

    combined_configuration = optimizer.configuration(
        value_measure=ValueMeasure.V1_EVENT,
        attribute_measure=AttributeMeasure.A2_ZERO_PROBABILITY,
        label="V1 + A2",
    )
    binary_configuration = optimizer.configuration(
        value_measure=ValueMeasure.NATURAL,
        attribute_measure=AttributeMeasure.A2_ZERO_PROBABILITY,
        search=SearchStrategy.BINARY,
        label="binary + A2",
    )
    natural_configuration = TreeConfiguration(
        tuple(profiles.schema.names), {}, SearchStrategy.LINEAR, "natural"
    )

    combined_cost = expected_tree_cost(
        build_tree(profiles, combined_configuration), distributions
    )
    binary_cost = expected_tree_cost(
        build_tree(profiles, binary_configuration), distributions
    )
    natural_cost = expected_tree_cost(
        build_tree(profiles, natural_configuration), distributions
    )
    return Example4Result(
        combined_cost=combined_cost,
        binary_cost=binary_cost,
        natural_cost=natural_cost,
    )
