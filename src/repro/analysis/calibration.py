"""Measured-cost calibration for the ``auto`` arbitration.

The adaptive engine picks structures from *analytical* cost estimates
(:mod:`repro.analysis.cost_model`).  Those estimates share a currency —
comparison operations per event — but each family's model simplifies
differently, so the predictions carry family-specific bias: the index
model may undercount rejection probes, the tree model may overcount a
short-circuiting walk.  Left uncorrected, a consistently optimistic
model wins arbitrations it should lose.

:class:`CostCalibrator` closes the loop the way Cozy's ``CostModel``
does for synthesized implementations: whenever a predicted cost can be
paired with the cost actually *measured* over the following interval,
the calibrator updates a per-family correction factor

    ``factor ← (1 − α) · factor + α · (measured / predicted)``

an exponentially-weighted mean of the observed misprediction ratio.
Future predictions for that family are multiplied by the factor before
they are compared.  With a stationary workload the ratio is roughly
constant, so the factor converges geometrically and the *calibrated*
misprediction ``|calibrated − measured| / measured`` shrinks toward
zero at rate ``(1 − α)`` per observation — the property the
calibration-convergence tests pin.

The calibrator is deliberately tiny and engine-agnostic: families are
plain string keys, predictions are floats, and the adaptive engine owns
the pairing of predictions with measurements (see
``AdaptiveFilterEngine._arbitrate``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "CalibrationSample",
    "CalibrationSnapshot",
    "CostCalibrator",
]

#: How many recent samples a snapshot retains for observability.
_RECENT_SAMPLES = 16


@dataclass(frozen=True)
class CalibrationSample:
    """One paired (predicted, measured) cost observation for a family.

    ``predicted`` is the raw analytical estimate; ``calibrated`` is that
    estimate scaled by the correction factor *in effect when the
    prediction was made* — i.e. the number the arbitration actually
    compared.  ``measured`` is the cost observed over the interval the
    prediction covered (comparison operations per event).
    """

    family: str
    predicted: float
    calibrated: float
    measured: float

    @property
    def error(self) -> float:
        """Relative misprediction of the *calibrated* estimate."""
        if self.measured <= 0.0:
            return 0.0
        return abs(self.calibrated - self.measured) / self.measured

    @property
    def raw_error(self) -> float:
        """Relative misprediction of the raw analytical estimate."""
        if self.measured <= 0.0:
            return 0.0
        return abs(self.predicted - self.measured) / self.measured

    def to_dict(self) -> dict[str, float | str]:
        return {
            "family": self.family,
            "predicted": self.predicted,
            "calibrated": self.calibrated,
            "measured": self.measured,
            "error": self.error,
        }


@dataclass(frozen=True)
class CalibrationSnapshot:
    """Read-only view of a calibrator's state for ``ServiceStats``."""

    factors: dict[str, float] = field(default_factory=dict)
    observations: int = 0
    recent: tuple[CalibrationSample, ...] = ()

    def factor(self, family: str) -> float:
        return self.factors.get(family, 1.0)

    def to_dict(self) -> dict:
        return {
            "factors": dict(self.factors),
            "observations": self.observations,
            "recent": [sample.to_dict() for sample in self.recent],
        }


class CostCalibrator:
    """Per-family exponentially-weighted correction of predicted costs.

    ``smoothing`` is the EWMA weight α of the newest observation; 0
    disables learning entirely (factors stay 1.0, :meth:`calibrate` is
    the identity), 1 trusts only the latest ratio.

    ``window`` bounds the calibrator's memory for drifting workloads:
    when set, each family's factor is the EWMA folded over only its last
    ``window`` observed ratios, so evidence gathered under a previous
    workload regime ages out *completely* after ``window`` fresh
    observations instead of lingering as a geometric tail.  ``None``
    (the default) keeps the unbounded incremental EWMA — identical
    behaviour to the pre-window calibrator.
    """

    def __init__(self, smoothing: float = 0.5, window: int | None = None) -> None:
        if not 0.0 <= smoothing <= 1.0:
            raise ValueError(f"smoothing must be within [0, 1], got {smoothing!r}")
        if window is not None and window < 1:
            raise ValueError(f"window must be at least 1, got {window!r}")
        self.smoothing = smoothing
        self.window = window
        self._factors: dict[str, float] = {}
        self._ratios: dict[str, deque[float]] = {}
        self._observations = 0
        self._recent: deque[CalibrationSample] = deque(maxlen=_RECENT_SAMPLES)

    def factor(self, family: str) -> float:
        """The current correction factor for ``family`` (1.0 = trusted)."""
        return self._factors.get(family, 1.0)

    def has_observed(self, family: str) -> bool:
        """Whether any ratio-carrying observation reached ``family``."""
        return family in self._factors

    def calibrate(self, family: str, predicted: float) -> float:
        """Scale a raw analytical estimate by the learned correction."""
        return predicted * self.factor(family)

    def observe(
        self, family: str, predicted: float, measured: float
    ) -> CalibrationSample:
        """Fold one paired observation into the family's factor.

        Returns the sample describing the misprediction *before* the
        update, so callers can report the error the arbitration actually
        incurred.  Non-positive predictions or measurements carry no
        ratio information and leave the factor untouched.
        """
        sample = CalibrationSample(
            family=family,
            predicted=predicted,
            calibrated=self.calibrate(family, predicted),
            measured=measured,
        )
        if self.smoothing > 0.0 and predicted > 0.0 and measured > 0.0:
            ratio = measured / predicted
            if self.window is None:
                previous = self._factors.get(family, 1.0)
                self._factors[family] = (
                    1.0 - self.smoothing
                ) * previous + self.smoothing * ratio
            else:
                ratios = self._ratios.setdefault(family, deque(maxlen=self.window))
                ratios.append(ratio)
                # Refold from the neutral prior over the surviving window
                # only: once `window` fresh ratios arrive, older regimes
                # contribute nothing at all.
                factor = 1.0
                for observed in ratios:
                    factor = (1.0 - self.smoothing) * factor + self.smoothing * observed
                self._factors[family] = factor
        self._observations += 1
        self._recent.append(sample)
        return sample

    def snapshot(self) -> CalibrationSnapshot:
        return CalibrationSnapshot(
            factors=dict(self._factors),
            observations=self._observations,
            recent=tuple(self._recent),
        )
