"""Analytical cost model (Section 3, Eq. 2 and its generalisation).

The paper expresses the response time of the filter, measured in comparison
operations, as

    R(a, P_p, P_e) = E(X) + R_0(P_e, x_0)                         (Eq. 2)

per attribute, where ``E(X)`` is the expectation of the probe position of
the event value's sub-range under the chosen edge ordering and ``R_0 = r_0 *
P_e(x_0)`` accounts for events falling into the zero-subdomain.  For the
full tree the response time is the sum of conditional expectations over the
levels.

This module computes these quantities *exactly* for a built
:class:`~repro.matching.tree.builder.ProfileTree` and per-attribute event
distributions (independence across attributes is assumed, as in the paper's
experiments).  The same cost conventions as the runtime matcher are used —
see :mod:`repro.matching.tree.search` — so the analytical numbers (test
scenario TV4) and the simulated numbers (TV1-TV3) agree up to sampling
noise; this is validated by the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.domains import DiscreteDomain
from repro.core.errors import MatchingError
from repro.core.intervals import Interval
from repro.core.subranges import AttributePartition, Subrange
from repro.distributions.base import Distribution
from repro.matching.tree.builder import ProfileTree
from repro.matching.tree.config import SearchStrategy, ValueOrder
from repro.matching.tree.nodes import TreeLeaf, TreeNode
from repro.matching.tree.search import (
    absence_cost_for_gap,
    binary_search_depth,
    find_cost,
)

__all__ = [
    "AttributeCost",
    "TreeCost",
    "attribute_response_time",
    "expected_tree_cost",
    "node_gap_probabilities",
]


@dataclass(frozen=True)
class AttributeCost:
    """Expected cost of filtering one attribute (single-node view, Eq. 2)."""

    #: ``E(X)`` — expected probe position over matching (defined) values.
    expectation: float
    #: ``R_0`` — expected operations spent rejecting zero-subdomain values.
    rejection: float

    @property
    def total(self) -> float:
        """Return ``R = E(X) + R_0``."""
        return self.expectation + self.rejection


@dataclass(frozen=True)
class TreeCost:
    """Expected cost of filtering a full profile tree."""

    #: Expected comparison operations per event (the Fig. 4/5(a)/6 metric).
    operations_per_event: float
    #: Expected operations per level, indexed by tree level (conditional
    #: expectations ``E(X_j | X_{j-1}, ...)`` including rejection costs).
    per_level: tuple[float, ...]
    #: Probability that an event matches at least one profile.
    match_probability: float
    #: Expected number of (event, profile) notifications per event.
    expected_notifications: float
    #: Expected operations conditioned on matching, per profile id.
    per_profile: Mapping[str, float]

    @property
    def operations_per_profile(self) -> float:
        """Return the Fig. 5(b) metric: per-profile costs averaged over
        profiles that can be notified at all."""
        if not self.per_profile:
            raise MatchingError("no profile is reachable in the tree")
        return sum(self.per_profile.values()) / len(self.per_profile)

    @property
    def operations_per_event_and_profile(self) -> float:
        """Return the Fig. 5(c) metric: operations per delivered notification."""
        if self.expected_notifications <= 0:
            raise MatchingError("the event distribution produces no notifications")
        return self.operations_per_event / self.expected_notifications


# ---------------------------------------------------------------------------
# Single-attribute model (Eq. 2) — used by Examples 2-4 and scenario TV4.
# ---------------------------------------------------------------------------

def attribute_response_time(
    partition: AttributePartition,
    distribution: Distribution,
    value_order: ValueOrder | None = None,
    *,
    strategy: SearchStrategy = SearchStrategy.LINEAR,
) -> AttributeCost:
    """Return ``E(X)`` and ``R_0`` for a single attribute (Eq. 2).

    The "tree" for a single attribute is one node carrying every defined
    sub-range as an edge.  ``value_order`` defaults to the natural order.
    """
    subranges = partition.subranges
    count = len(subranges)
    if value_order is None:
        value_order = ValueOrder.natural(partition.attribute.name, count)
    if len(value_order) != count:
        raise MatchingError(
            f"value order covers {len(value_order)} sub-ranges, partition has {count}"
        )

    expectation = 0.0
    for subrange in subranges:
        probability = distribution.probability_of_subrange(subrange)
        if strategy is SearchStrategy.BINARY:
            cost = binary_search_depth(subrange.index, count)
        else:
            cost = value_order.position_of(subrange.index)
        expectation += probability * cost

    rejection = 0.0
    gap_probabilities = _gap_probabilities_for_subranges(subranges, partition, distribution)
    for gap_index, probability in enumerate(gap_probabilities):
        if probability <= 0:
            continue
        if strategy is SearchStrategy.BINARY:
            cost = _binary_absence_cost(count)
        else:
            cost = min(gap_index + 1, count) if count else 0
        rejection += probability * cost
    return AttributeCost(expectation, rejection)


def _binary_absence_cost(count: int) -> int:
    if count <= 0:
        return 0
    import math

    return int(math.floor(math.log2(count))) + 1


# ---------------------------------------------------------------------------
# Gap probabilities (rejection geometry).
# ---------------------------------------------------------------------------

def _point_interval_for(subrange: Subrange, partition: AttributePartition) -> Interval:
    """Return the interval representation of a sub-range for gap geometry."""
    if subrange.interval is not None:
        return subrange.interval
    domain = partition.attribute.domain
    if isinstance(domain, DiscreteDomain):
        return Interval.point(domain.index_of(subrange.value))
    return Interval.point(float(subrange.value))  # type: ignore[arg-type]


def _gap_probabilities_for_subranges(
    subranges: Sequence[Subrange],
    partition: AttributePartition,
    distribution: Distribution,
) -> list[float]:
    """Return the probability of each gap between consecutive sub-ranges.

    Gaps are indexed 0..k for k sub-ranges: gap 0 lies below the first
    sub-range, gap i between sub-range i and i+1, gap k above the last one.
    The probabilities cover exactly the event values on none of the given
    sub-ranges (for the full partition this is the zero-subdomain D_0).
    """
    domain = partition.attribute.domain
    full = domain.full_interval()
    count = len(subranges)
    if count == 0:
        return [1.0]
    intervals = [_point_interval_for(s, partition) for s in subranges]
    probabilities: list[float] = []
    # Gap below the first sub-range.
    first = intervals[0]
    probabilities.append(
        _interval_probability(
            distribution,
            full.low,
            first.low,
            full.low_closed,
            not first.low_closed,
        )
    )
    # Gaps between consecutive sub-ranges.
    for left, right in zip(intervals, intervals[1:]):
        probabilities.append(
            _interval_probability(
                distribution,
                left.high,
                right.low,
                not left.high_closed,
                not right.low_closed,
            )
        )
    # Gap above the last sub-range.
    last = intervals[-1]
    probabilities.append(
        _interval_probability(
            distribution,
            last.high,
            full.high,
            not last.high_closed,
            full.high_closed,
        )
    )
    return probabilities


def _interval_probability(
    distribution: Distribution,
    low: float,
    high: float,
    low_closed: bool,
    high_closed: bool,
) -> float:
    """Return the probability of an interval, tolerating empty intervals."""
    if low > high:
        return 0.0
    if low == high and not (low_closed and high_closed):
        return 0.0
    return distribution.probability_of_interval(Interval(low, high, low_closed, high_closed))


def node_gap_probabilities(
    node: TreeNode,
    partition: AttributePartition,
    distribution: Distribution,
) -> list[float]:
    """Return the gap probabilities of one tree node's defined edges."""
    subranges = [edge.subrange for edge in node.natural_edges]
    return _gap_probabilities_for_subranges(subranges, partition, distribution)


# ---------------------------------------------------------------------------
# Full-tree model.
# ---------------------------------------------------------------------------

def expected_tree_cost(
    tree: ProfileTree,
    event_distributions: Mapping[str, Distribution],
) -> TreeCost:
    """Return the expected filtering cost of ``tree`` under the given
    per-attribute event distributions (attributes assumed independent).

    The walk visits every node once, weighting its expected probe count by
    the probability that an event reaches it; rejection and residual-edge
    costs use the same conventions as the runtime matcher.
    """
    missing = [
        name for name in tree.configuration.attribute_order if name not in event_distributions
    ]
    if missing:
        raise MatchingError(f"missing event distributions for attributes {missing}")

    strategy = tree.configuration.search
    level_count = len(tree.configuration.attribute_order)
    per_level = [0.0] * level_count
    total = 0.0
    match_probability = 0.0
    expected_notifications = 0.0
    # Per-profile accumulation of (probability, probability * path cost).
    profile_mass: dict[str, float] = {}
    profile_weighted_cost: dict[str, float] = {}

    # The same sub-ranges and gap intervals recur at many nodes of the tree,
    # so cache their probabilities per attribute.  Gap probabilities are
    # keyed by the tuple of edge sub-range indices at the node.
    subrange_probability_cache: dict[tuple[str, int], float] = {}
    gap_probability_cache: dict[tuple[str, tuple[int, ...]], list[float]] = {}

    def cached_subrange_probability(attribute: str, edge_subrange: Subrange) -> float:
        key = (attribute, edge_subrange.index)
        if key not in subrange_probability_cache:
            subrange_probability_cache[key] = event_distributions[
                attribute
            ].probability_of_subrange(edge_subrange)
        return subrange_probability_cache[key]

    def cached_gap_probabilities(attribute: str, node: TreeNode) -> list[float]:
        key = (attribute, tuple(edge.subrange.index for edge in node.natural_edges))
        if key not in gap_probability_cache:
            gap_probability_cache[key] = node_gap_probabilities(
                node, tree.partitions[attribute], event_distributions[attribute]
            )
        return gap_probability_cache[key]

    def walk(element, reach_probability: float, level: int, path_cost: float) -> None:
        nonlocal total, match_probability, expected_notifications
        if reach_probability <= 0:
            return
        if isinstance(element, TreeLeaf):
            match_probability += reach_probability if element.profile_ids else 0.0
            expected_notifications += reach_probability * len(element.profile_ids)
            for profile_id in element.profile_ids:
                profile_mass[profile_id] = profile_mass.get(profile_id, 0.0) + reach_probability
                profile_weighted_cost[profile_id] = (
                    profile_weighted_cost.get(profile_id, 0.0) + reach_probability * path_cost
                )
            return
        node: TreeNode = element
        attribute = node.attribute

        node_expected = 0.0
        edge_probabilities: list[float] = []
        for edge in node.edges:
            probability = cached_subrange_probability(attribute, edge.subrange)
            edge_probabilities.append(probability)
            cost = find_cost(node, edge, strategy)
            node_expected += probability * cost

        gap_probabilities = cached_gap_probabilities(attribute, node)
        outside_probability = sum(gap_probabilities)
        expected_absence_cost = 0.0
        for gap_index, probability in enumerate(gap_probabilities):
            if probability <= 0:
                continue
            expected_absence_cost += probability * absence_cost_for_gap(
                node, gap_index, strategy
            )
        if node.has_residual:
            # One extra probe for taking the * / (*) edge.
            expected_absence_cost += outside_probability * 1.0
        node_expected += expected_absence_cost

        total += reach_probability * node_expected
        per_level[level] += reach_probability * node_expected

        # Recurse along defined edges.
        for edge, probability in zip(node.edges, edge_probabilities):
            cost = find_cost(node, edge, strategy)
            walk(edge.child, reach_probability * probability, level + 1, path_cost + cost)
        # Recurse along the residual edge (conditional expected cost).
        if node.has_residual and outside_probability > 0:
            residual_cost = expected_absence_cost / outside_probability
            walk(
                node.residual,
                reach_probability * outside_probability,
                level + 1,
                path_cost + residual_cost,
            )

    walk(tree.root, 1.0, 0, 0.0)

    per_profile = {
        profile_id: profile_weighted_cost[profile_id] / mass
        for profile_id, mass in profile_mass.items()
        if mass > 0
    }
    return TreeCost(
        operations_per_event=total,
        per_level=tuple(per_level),
        match_probability=match_probability,
        expected_notifications=expected_notifications,
        per_profile=per_profile,
    )
