"""Analytical cost model (Eq. 2) and reproduction of the worked examples."""

from repro.analysis.calibration import (
    CalibrationSample,
    CalibrationSnapshot,
    CostCalibrator,
)
from repro.analysis.cost_model import (
    AttributeCost,
    TreeCost,
    attribute_response_time,
    expected_tree_cost,
    node_gap_probabilities,
)
from repro.analysis.paper_examples import (
    PAPER_EXAMPLE2,
    PAPER_EXAMPLE3,
    PAPER_EXAMPLE4,
    Example2Result,
    Example3Result,
    Example4Result,
    example2_results,
    example3_results,
    example4_results,
)

__all__ = [
    "AttributeCost",
    "CalibrationSample",
    "CalibrationSnapshot",
    "CostCalibrator",
    "Example2Result",
    "Example3Result",
    "Example4Result",
    "PAPER_EXAMPLE2",
    "PAPER_EXAMPLE3",
    "PAPER_EXAMPLE4",
    "TreeCost",
    "attribute_response_time",
    "expected_tree_cost",
    "example2_results",
    "example3_results",
    "example4_results",
    "node_gap_probabilities",
]
