"""Workload specifications.

A workload couples a schema with per-attribute event and profile
distributions plus the parameters of profile generation (how many profiles,
how often an attribute is left as don't-care, equality vs range predicates).
The evaluation scenarios of the paper — and our reproduction of its figures
— are all expressed as :class:`WorkloadSpec` instances, so a figure caption
such as "events: defined 39, profiles: gauss" maps one-to-one onto a spec.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.core.errors import WorkloadError
from repro.core.schema import Attribute, Schema

__all__ = ["AttributeSpec", "MixGroup", "WorkloadSpec"]


@dataclass(frozen=True)
class AttributeSpec:
    """Generation parameters of one attribute.

    Attributes
    ----------
    event_distribution:
        Name of the event value distribution ``P_e`` (see
        :func:`repro.distributions.make_distribution`), e.g. ``"equal"``,
        ``"gauss"``, ``"defined 39"`` or ``"95% high"``.
    profile_distribution:
        Name of the distribution profile values are drawn from (``P_p``).
    dont_care_probability:
        Probability that a generated profile leaves the attribute
        unconstrained (the ``*`` of the paper).
    predicate:
        ``"equality"`` (the paper's prototype), ``"range"`` — range
        predicates cover ``range_width_fraction`` of the domain centred on
        the drawn value — or ``"mixed"``, where each generated predicate
        is independently an equality with probability
        ``mixed_equality_probability`` and a range otherwise.  Mixed
        attributes are the natural habitat of hybrid per-attribute plans:
        selective equalities next to broad ranges on the same attribute.
    range_width_fraction:
        Width of generated range predicates relative to the domain size.
    mixed_equality_probability:
        Probability that a ``"mixed"`` attribute draws an equality rather
        than a range predicate (ignored for the other predicate kinds).
    """

    event_distribution: str = "equal"
    profile_distribution: str = "equal"
    dont_care_probability: float = 0.0
    predicate: str = "equality"
    range_width_fraction: float = 0.1
    mixed_equality_probability: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.dont_care_probability <= 1.0:
            raise WorkloadError("dont_care_probability must lie in [0, 1]")
        if self.predicate not in {"equality", "range", "mixed"}:
            raise WorkloadError("predicate must be 'equality', 'range' or 'mixed'")
        if not 0.0 < self.range_width_fraction <= 1.0:
            raise WorkloadError("range_width_fraction must lie in (0, 1]")
        if not 0.0 <= self.mixed_equality_probability <= 1.0:
            raise WorkloadError("mixed_equality_probability must lie in [0, 1]")


@dataclass(frozen=True)
class MixGroup:
    """One population segment of a heterogeneous profile mix.

    A workload whose subscribers split into qualitatively different
    populations — e.g. a social feed where most profiles are broad
    follow-everything firehoses while a few are razor-sharp keyword
    alerts — declares one :class:`MixGroup` per population.  Each group
    carries a sampling ``weight`` (relative, need not sum to 1) and
    per-attribute :class:`AttributeSpec` *overrides*; attributes a group
    does not override fall back to the workload's base specs.
    """

    name: str
    weight: float = 1.0
    attributes: Mapping[str, AttributeSpec] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("mix group name must be non-empty")
        if not self.weight > 0.0:
            raise WorkloadError(f"mix group {self.name!r}: weight must be positive")
        object.__setattr__(self, "attributes", dict(self.attributes or {}))


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete, reproducible workload description."""

    name: str
    schema: Schema
    attributes: Mapping[str, AttributeSpec]
    profile_count: int = 100
    event_count: int = 1000
    seed: int = 7
    mix: tuple = ()

    def __post_init__(self) -> None:
        if self.profile_count <= 0:
            raise WorkloadError("profile_count must be positive")
        if self.event_count <= 0:
            raise WorkloadError("event_count must be positive")
        unknown = [name for name in self.attributes if name not in self.schema]
        if unknown:
            raise WorkloadError(f"attribute specs reference unknown attributes {unknown}")
        object.__setattr__(self, "attributes", dict(self.attributes))
        object.__setattr__(self, "mix", tuple(self.mix))
        seen_groups: set[str] = set()
        for group in self.mix:
            if not isinstance(group, MixGroup):
                raise WorkloadError("mix entries must be MixGroup instances")
            if group.name in seen_groups:
                raise WorkloadError(f"duplicate mix group {group.name!r}")
            seen_groups.add(group.name)
            unknown = [name for name in group.attributes if name not in self.schema]
            if unknown:
                raise WorkloadError(
                    f"mix group {group.name!r} references unknown attributes {unknown}"
                )

    def spec_for(self, attribute: str, group: MixGroup | None = None) -> AttributeSpec:
        """Return the spec of one attribute (defaults when unspecified).

        With a ``group``, that mix group's override wins over the base
        attribute spec — the lookup profile generation uses when a
        heterogeneous mix is declared.
        """
        if attribute not in self.schema:
            raise WorkloadError(f"unknown attribute {attribute!r}")
        if group is not None and attribute in group.attributes:
            return group.attributes[attribute]
        return self.attributes.get(attribute, AttributeSpec())

    def with_distributions(
        self,
        *,
        events: str | None = None,
        profiles: str | None = None,
    ) -> "WorkloadSpec":
        """Return a copy with all attributes' distribution names replaced.

        This is how the figure harness sweeps over ``P_e``/``P_p``
        combinations: the schema and generation parameters stay fixed while
        the distribution names vary.
        """
        updated = {}
        for name in self.schema.names:
            spec = self.spec_for(name)
            updated[name] = replace(
                spec,
                event_distribution=events if events is not None else spec.event_distribution,
                profile_distribution=(
                    profiles if profiles is not None else spec.profile_distribution
                ),
            )
        return replace(self, attributes=updated)

    def with_counts(
        self, *, profile_count: int | None = None, event_count: int | None = None
    ) -> "WorkloadSpec":
        """Return a copy with different profile/event counts."""
        return replace(
            self,
            profile_count=profile_count if profile_count is not None else self.profile_count,
            event_count=event_count if event_count is not None else self.event_count,
        )

    def with_seed(self, seed: int) -> "WorkloadSpec":
        """Return a copy using a different random seed."""
        return replace(self, seed=seed)

    def with_name(self, name: str) -> "WorkloadSpec":
        """Return a copy under a different name (derived sweep variants)."""
        return replace(self, name=name)

    def with_domain(self, attribute: str, domain) -> "WorkloadSpec":
        """Return a copy whose schema uses ``domain`` for ``attribute``.

        The figure harness sweeps domain sizes on the single-attribute
        scenario; everything else about the spec (distribution names,
        generation knobs, counts, seed) is preserved.
        """
        if attribute not in self.schema:
            raise WorkloadError(f"unknown attribute {attribute!r}")
        rebuilt = Schema(
            Attribute(item.name, domain) if item.name == attribute else item
            for item in self.schema
        )
        return replace(self, schema=rebuilt)
