"""Workload specifications.

A workload couples a schema with per-attribute event and profile
distributions plus the parameters of profile generation (how many profiles,
how often an attribute is left as don't-care, equality vs range predicates).
The evaluation scenarios of the paper — and our reproduction of its figures
— are all expressed as :class:`WorkloadSpec` instances, so a figure caption
such as "events: defined 39, profiles: gauss" maps one-to-one onto a spec.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.core.errors import WorkloadError
from repro.core.schema import Schema

__all__ = ["AttributeSpec", "WorkloadSpec"]


@dataclass(frozen=True)
class AttributeSpec:
    """Generation parameters of one attribute.

    Attributes
    ----------
    event_distribution:
        Name of the event value distribution ``P_e`` (see
        :func:`repro.distributions.make_distribution`), e.g. ``"equal"``,
        ``"gauss"``, ``"defined 39"`` or ``"95% high"``.
    profile_distribution:
        Name of the distribution profile values are drawn from (``P_p``).
    dont_care_probability:
        Probability that a generated profile leaves the attribute
        unconstrained (the ``*`` of the paper).
    predicate:
        ``"equality"`` (the paper's prototype), ``"range"`` — range
        predicates cover ``range_width_fraction`` of the domain centred on
        the drawn value — or ``"mixed"``, where each generated predicate
        is independently an equality with probability
        ``mixed_equality_probability`` and a range otherwise.  Mixed
        attributes are the natural habitat of hybrid per-attribute plans:
        selective equalities next to broad ranges on the same attribute.
    range_width_fraction:
        Width of generated range predicates relative to the domain size.
    mixed_equality_probability:
        Probability that a ``"mixed"`` attribute draws an equality rather
        than a range predicate (ignored for the other predicate kinds).
    """

    event_distribution: str = "equal"
    profile_distribution: str = "equal"
    dont_care_probability: float = 0.0
    predicate: str = "equality"
    range_width_fraction: float = 0.1
    mixed_equality_probability: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.dont_care_probability <= 1.0:
            raise WorkloadError("dont_care_probability must lie in [0, 1]")
        if self.predicate not in {"equality", "range", "mixed"}:
            raise WorkloadError("predicate must be 'equality', 'range' or 'mixed'")
        if not 0.0 < self.range_width_fraction <= 1.0:
            raise WorkloadError("range_width_fraction must lie in (0, 1]")
        if not 0.0 <= self.mixed_equality_probability <= 1.0:
            raise WorkloadError("mixed_equality_probability must lie in [0, 1]")


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete, reproducible workload description."""

    name: str
    schema: Schema
    attributes: Mapping[str, AttributeSpec]
    profile_count: int = 100
    event_count: int = 1000
    seed: int = 7

    def __post_init__(self) -> None:
        if self.profile_count <= 0:
            raise WorkloadError("profile_count must be positive")
        if self.event_count <= 0:
            raise WorkloadError("event_count must be positive")
        unknown = [name for name in self.attributes if name not in self.schema]
        if unknown:
            raise WorkloadError(f"attribute specs reference unknown attributes {unknown}")
        object.__setattr__(self, "attributes", dict(self.attributes))

    def spec_for(self, attribute: str) -> AttributeSpec:
        """Return the spec of one attribute (defaults when unspecified)."""
        if attribute not in self.schema:
            raise WorkloadError(f"unknown attribute {attribute!r}")
        return self.attributes.get(attribute, AttributeSpec())

    def with_distributions(
        self,
        *,
        events: str | None = None,
        profiles: str | None = None,
    ) -> "WorkloadSpec":
        """Return a copy with all attributes' distribution names replaced.

        This is how the figure harness sweeps over ``P_e``/``P_p``
        combinations: the schema and generation parameters stay fixed while
        the distribution names vary.
        """
        updated = {}
        for name in self.schema.names:
            spec = self.spec_for(name)
            updated[name] = replace(
                spec,
                event_distribution=events if events is not None else spec.event_distribution,
                profile_distribution=(
                    profiles if profiles is not None else spec.profile_distribution
                ),
            )
        return replace(self, attributes=updated)

    def with_counts(
        self, *, profile_count: int | None = None, event_count: int | None = None
    ) -> "WorkloadSpec":
        """Return a copy with different profile/event counts."""
        return replace(
            self,
            profile_count=profile_count if profile_count is not None else self.profile_count,
            event_count=event_count if event_count is not None else self.event_count,
        )

    def with_seed(self, seed: int) -> "WorkloadSpec":
        """Return a copy using a different random seed."""
        return replace(self, seed=seed)
