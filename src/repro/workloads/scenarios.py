"""Application scenarios from the paper's introduction.

The introduction motivates the work with "stock tickers, environmental
monitoring, and facility management" and observes that their event and
profile distributions are far from uniform: stock subscribers concentrate on
"a small range of values for certain shares", environmental sensors produce
roughly uniform readings while users subscribe to catastrophe thresholds,
and facility management mixes periodic uniform telemetry with alarm-focused
subscriptions.  These scenarios back the example programs and the baseline
benchmarks; the figure experiments use purpose-built specs instead.
"""

from __future__ import annotations

from repro.core.domains import DiscreteDomain, IntegerDomain
from repro.core.schema import Attribute, Schema
from repro.workloads.spec import AttributeSpec, WorkloadSpec

__all__ = [
    "stock_ticker_spec",
    "environmental_monitoring_spec",
    "facility_management_spec",
    "single_attribute_spec",
    "wide_range_spec",
    "mixed_workload_spec",
]


def stock_ticker_spec(
    *, profile_count: int = 500, event_count: int = 2000, seed: int = 11
) -> WorkloadSpec:
    """Return the stock-ticker scenario.

    Events carry a symbol, a price level (discretised to integer ticks) and
    a traded volume bucket.  Prices cluster around the current level (Gauss)
    while subscriptions concentrate on a narrow band of interesting prices
    ("users are mainly interested in a small range of values for certain
    shares"), making the event and profile distributions strongly peaked.
    """
    schema = Schema(
        [
            Attribute(
                "symbol",
                DiscreteDomain([f"S{i:02d}" for i in range(40)]),
                description="ticker symbol",
            ),
            Attribute("price", IntegerDomain(0, 199), unit="ticks"),
            Attribute("volume", IntegerDomain(0, 49), unit="lots"),
        ]
    )
    attributes = {
        "symbol": AttributeSpec(
            event_distribution="falling", profile_distribution="falling"
        ),
        "price": AttributeSpec(
            event_distribution="gauss", profile_distribution="95% high"
        ),
        "volume": AttributeSpec(
            event_distribution="falling",
            profile_distribution="equal",
            dont_care_probability=0.6,
        ),
    }
    return WorkloadSpec(
        name="stock-ticker",
        schema=schema,
        attributes=attributes,
        profile_count=profile_count,
        event_count=event_count,
        seed=seed,
    )


def environmental_monitoring_spec(
    *, profile_count: int = 300, event_count: int = 2000, seed: int = 13
) -> WorkloadSpec:
    """Return the environmental-monitoring scenario (catastrophe warnings).

    Sensor readings are roughly uniform over the physical domains; user
    profiles concentrate on the extreme ("catastrophe") ranges, so most
    events fall into the zero-subdomain and should be rejected early — the
    situation Measures A1/A2 are designed for.
    """
    schema = Schema(
        [
            Attribute("temperature", IntegerDomain(-30, 50), unit="°C"),
            Attribute("humidity", IntegerDomain(0, 100), unit="%"),
            Attribute("radiation", IntegerDomain(1, 100), unit="mW/m²"),
        ]
    )
    attributes = {
        "temperature": AttributeSpec(
            event_distribution="gauss", profile_distribution="95% high"
        ),
        "humidity": AttributeSpec(
            event_distribution="equal",
            profile_distribution="95% high",
            dont_care_probability=0.3,
        ),
        "radiation": AttributeSpec(
            event_distribution="relocated gauss low",
            profile_distribution="95% high",
            dont_care_probability=0.5,
        ),
    }
    return WorkloadSpec(
        name="environmental",
        schema=schema,
        attributes=attributes,
        profile_count=profile_count,
        event_count=event_count,
        seed=seed,
    )


def facility_management_spec(
    *, profile_count: int = 200, event_count: int = 1500, seed: int = 17
) -> WorkloadSpec:
    """Return the facility-management scenario.

    Buildings report room, sensor kind and reading; subscriptions mix broad
    monitoring profiles (many don't-cares) with narrow alarm profiles.
    """
    schema = Schema(
        [
            Attribute("building", IntegerDomain(1, 8)),
            Attribute("room", IntegerDomain(1, 60)),
            Attribute("sensor", DiscreteDomain(["smoke", "door", "power", "water", "hvac"])),
            Attribute("reading", IntegerDomain(0, 99)),
        ]
    )
    attributes = {
        "building": AttributeSpec(
            event_distribution="equal", profile_distribution="equal",
            dont_care_probability=0.2,
        ),
        "room": AttributeSpec(
            event_distribution="equal", profile_distribution="equal",
            dont_care_probability=0.6,
        ),
        "sensor": AttributeSpec(
            event_distribution="falling", profile_distribution="falling",
            dont_care_probability=0.3,
        ),
        "reading": AttributeSpec(
            event_distribution="gauss", profile_distribution="95% high",
            dont_care_probability=0.4,
        ),
    }
    return WorkloadSpec(
        name="facility",
        schema=schema,
        attributes=attributes,
        profile_count=profile_count,
        event_count=event_count,
        seed=seed,
    )


def wide_range_spec(
    *, profile_count: int = 1500, event_count: int = 1024, seed: int = 29
) -> WorkloadSpec:
    """Return the wide-range scenario (hit-heavy threshold monitoring).

    A fleet of regional monitors subscribes to *broad* metric bands —
    every profile constrains a large range (half the metric domain on
    average) plus its region, so a typical event satisfies hundreds of
    range entries while only the ~1/32 of them in the matching region
    deliver.  This is the counting-bound antipode of the stock ticker's
    reject-heavy profile mix: per-event cost is dominated by bumping one
    counter per satisfied posting, which is exactly the workload the
    columnar batch kernel's vectorized counting targets
    (:mod:`repro.matching.index.kernel`).
    """
    schema = Schema(
        [
            Attribute("metric", IntegerDomain(0, 9999), description="monitored reading"),
            Attribute(
                "region",
                DiscreteDomain([f"r{i:02d}" for i in range(32)]),
                description="reporting region",
            ),
        ]
    )
    attributes = {
        "metric": AttributeSpec(
            event_distribution="equal",
            profile_distribution="equal",
            predicate="range",
            range_width_fraction=0.5,
        ),
        "region": AttributeSpec(event_distribution="equal", profile_distribution="equal"),
    }
    return WorkloadSpec(
        name="wide-range",
        schema=schema,
        attributes=attributes,
        profile_count=profile_count,
        event_count=event_count,
        seed=seed,
    )


def mixed_workload_spec(
    *, profile_count: int = 220, event_count: int = 6000, seed: int = 37
) -> WorkloadSpec:
    """Return the mixed-structure workload behind the hybrid-plan benchmark.

    Three attribute characters, so no single per-attribute structure fits
    the whole subscription set:

    * ``symbol`` — *equality-sparse*: every profile pins one of 2000
      symbols, so the hash side probes in one lookup while a profile tree
      must walk its root edges sequentially and the scan side would touch
      every entry.
    * ``metric`` — *range-heavy mixed*: half the entries are selective
      equalities (kept on the hash), half are ranges as wide as the whole
      domain.  Under the peaked (Gauss) event stream almost every range
      is satisfied, so the interval probe costs its ``log`` overhead on
      top of touching nearly every entry — the hybrid planner demotes
      only this structure to a plain scan, which the binary all-or-
      nothing plan cannot express.
    * ``band`` — narrow alert bands where the interval index shines;
      the counting baseline instead pays one comparison per distinct
      band on every event.
    """
    schema = Schema(
        [
            Attribute("symbol", IntegerDomain(0, 1999), description="entity id"),
            Attribute("metric", IntegerDomain(0, 999), description="monitored reading"),
            Attribute("band", IntegerDomain(0, 999), description="alert band probe"),
        ]
    )
    attributes = {
        "symbol": AttributeSpec(event_distribution="equal", profile_distribution="equal"),
        "metric": AttributeSpec(
            event_distribution="gauss",
            profile_distribution="gauss",
            predicate="mixed",
            range_width_fraction=1.0,
            mixed_equality_probability=0.5,
            dont_care_probability=0.5,
        ),
        "band": AttributeSpec(
            event_distribution="equal",
            profile_distribution="equal",
            predicate="range",
            range_width_fraction=0.04,
            dont_care_probability=0.5,
        ),
    }
    return WorkloadSpec(
        name="mixed-structure",
        schema=schema,
        attributes=attributes,
        profile_count=profile_count,
        event_count=event_count,
        seed=seed,
    )


def single_attribute_spec(
    *,
    events: str = "equal",
    profiles: str = "equal",
    domain_size: int = 100,
    profile_count: int = 60,
    event_count: int = 4000,
    seed: int = 5,
    name: str = "single-attribute",
) -> WorkloadSpec:
    """Return the single-attribute workload used by scenarios TV3/TV4.

    One integer attribute with equality profiles whose values are drawn from
    the ``profiles`` distribution; events are drawn from the ``events``
    distribution.  This mirrors the paper's "full profile tree with one
    attribute only" tests that isolate the effect of value reordering.
    """
    schema = Schema([Attribute("value", IntegerDomain(0, domain_size - 1))])
    attributes = {
        "value": AttributeSpec(event_distribution=events, profile_distribution=profiles)
    }
    return WorkloadSpec(
        name=name,
        schema=schema,
        attributes=attributes,
        profile_count=profile_count,
        event_count=event_count,
        seed=seed,
    )
