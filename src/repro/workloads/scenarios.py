"""Legacy scenario callables — thin shims over the declarative corpus.

The application scenarios these functions used to hand-build now live as
declarative profiles under :mod:`repro.workloads.profiles` (one TOML
file per scenario); the committed files are the source of truth and the
corpus runner's input.  Each ``*_spec()`` callable below loads its
declarative replacement and emits a one-time :class:`DeprecationWarning`
via :func:`repro.core.deprecation.warn_once` — the specs it returns stay
bit-identical to the pre-redesign hand-built ones (pinned by
``tests/workloads/test_profiles.py``), so existing callers keep working
unchanged.  New code should call
:func:`repro.workloads.profiles.get_profile` instead.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.deprecation import warn_once
from repro.core.domains import IntegerDomain
from repro.core.schema import Attribute, Schema
from repro.workloads.spec import AttributeSpec, WorkloadSpec

__all__ = [
    "stock_ticker_spec",
    "environmental_monitoring_spec",
    "facility_management_spec",
    "single_attribute_spec",
    "wide_range_spec",
    "mixed_workload_spec",
]


def _declarative_spec(
    shim: str, profile_name: str, *, profile_count: int, event_count: int, seed: int
) -> WorkloadSpec:
    """Load a corpus profile's spec for a legacy shim, warning once."""
    warn_once(
        f"repro.workloads.scenarios.{shim}",
        f"{shim}() is deprecated; the scenario is the declarative profile "
        f"{profile_name!r} — use repro.workloads.profiles.get_profile"
        f"({profile_name!r}).spec instead",
    )
    from repro.workloads.profiles import get_profile

    return replace(
        get_profile(profile_name).spec,
        profile_count=profile_count,
        event_count=event_count,
        seed=seed,
    )


def stock_ticker_spec(
    *, profile_count: int = 500, event_count: int = 2000, seed: int = 11
) -> WorkloadSpec:
    """Deprecated: the ``"stock-ticker"`` corpus profile's spec."""
    return _declarative_spec(
        "stock_ticker_spec",
        "stock-ticker",
        profile_count=profile_count,
        event_count=event_count,
        seed=seed,
    )


def environmental_monitoring_spec(
    *, profile_count: int = 300, event_count: int = 2000, seed: int = 13
) -> WorkloadSpec:
    """Deprecated: the ``"environmental"`` corpus profile's spec."""
    return _declarative_spec(
        "environmental_monitoring_spec",
        "environmental",
        profile_count=profile_count,
        event_count=event_count,
        seed=seed,
    )


def facility_management_spec(
    *, profile_count: int = 200, event_count: int = 1500, seed: int = 17
) -> WorkloadSpec:
    """Deprecated: the ``"facility"`` corpus profile's spec."""
    return _declarative_spec(
        "facility_management_spec",
        "facility",
        profile_count=profile_count,
        event_count=event_count,
        seed=seed,
    )


def wide_range_spec(
    *, profile_count: int = 1500, event_count: int = 1024, seed: int = 29
) -> WorkloadSpec:
    """Deprecated: the ``"wide-range"`` corpus profile's spec."""
    return _declarative_spec(
        "wide_range_spec",
        "wide-range",
        profile_count=profile_count,
        event_count=event_count,
        seed=seed,
    )


def mixed_workload_spec(
    *, profile_count: int = 220, event_count: int = 6000, seed: int = 37
) -> WorkloadSpec:
    """Deprecated: the ``"mixed-structure"`` corpus profile's spec."""
    return _declarative_spec(
        "mixed_workload_spec",
        "mixed-structure",
        profile_count=profile_count,
        event_count=event_count,
        seed=seed,
    )


def single_attribute_spec(
    *,
    events: str = "equal",
    profiles: str = "equal",
    domain_size: int = 100,
    profile_count: int = 60,
    event_count: int = 4000,
    seed: int = 5,
    name: str = "single-attribute",
) -> WorkloadSpec:
    """Deprecated: the ``"single-attribute"`` corpus profile's spec.

    The extra knobs (distribution names, domain size, spec name) predate
    the declarative corpus; the figure harness still sweeps them, so the
    shim rebuilds the one-attribute schema when they deviate from the
    committed profile.
    """
    base = _declarative_spec(
        "single_attribute_spec",
        "single-attribute",
        profile_count=profile_count,
        event_count=event_count,
        seed=seed,
    )
    schema = base.schema
    if domain_size != 100:
        schema = Schema([Attribute("value", IntegerDomain(0, domain_size - 1))])
    attributes = {
        "value": AttributeSpec(event_distribution=events, profile_distribution=profiles)
    }
    return replace(base, name=name, schema=schema, attributes=attributes)
