"""Loading, validating and dumping declarative scenario profiles.

Profiles are TOML (or YAML, when PyYAML is importable) documents::

    name = "stock-ticker"
    description = "Peaked prices against narrow-band subscriptions"
    profile_count = 500
    event_count = 2000
    seed = 11

    [schema.price]
    domain = "integer"
    low = 0
    high = 199

    [attributes.price]
    event_distribution = "gauss"
    profile_distribution = "95% high"

    [run]
    batch_size = 250

    [engine]
    engine = "index"
    families = ["tree", "index", "hybrid"]

Every key is validated on load and failures raise
:class:`~repro.core.errors.WorkloadSpecError` carrying the dotted path of
the offending key (``attributes.price.event_distribution: unknown
distribution ...``), so a malformed corpus file points at itself.

``extends = "base"`` resolves another profile (by registry name or by
path relative to the extending file) and deep-merges the child over it:
child scalars and lists win, tables merge key-by-key, and ``name`` /
``description`` are identity rather than inheritance — they never flow
from the base.  Cycles are detected and rejected.

The registry is the directory of this package: every committed
``*.toml`` (not underscore-prefixed) is a named corpus profile,
discoverable via :func:`list_profiles` and loadable via
:func:`get_profile`; :func:`load_profile` additionally accepts
filesystem paths for out-of-tree profiles.
"""

from __future__ import annotations

import json
import os
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Any, Mapping

try:  # Python 3.11+
    import tomllib as _toml
except ModuleNotFoundError:  # pragma: no cover - py3.10 fallback
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ModuleNotFoundError:
        _toml = None  # type: ignore[assignment]

try:
    import yaml as _yaml
except ModuleNotFoundError:  # pragma: no cover - PyYAML is optional
    _yaml = None

from repro.core.domains import ContinuousDomain, DiscreteDomain, Domain, IntegerDomain
from repro.core.errors import (
    DistributionError,
    DomainError,
    SchemaError,
    WorkloadError,
    WorkloadSpecError,
)
from repro.core.schema import Attribute, Schema
from repro.distributions.library import make_distribution
from repro.workloads.profiles.model import (
    DEFAULT_FAMILIES,
    EngineHints,
    RunShape,
    ScenarioProfile,
)
from repro.workloads.spec import AttributeSpec, MixGroup, WorkloadSpec

__all__ = [
    "PROFILES_DIR",
    "dump_profile",
    "get_profile",
    "list_profiles",
    "load_profile",
]

#: Directory holding the committed corpus (this package's own directory).
PROFILES_DIR = Path(__file__).resolve().parent

_SUFFIXES = (".toml", ".yaml", ".yml")

_TOP_LEVEL_KEYS = {
    "name",
    "description",
    "extends",
    "profile_count",
    "event_count",
    "seed",
    "schema",
    "attributes",
    "mix",
    "run",
    "engine",
}
_SCHEMA_KEYS = {"domain", "low", "high", "values", "pattern", "count", "unit", "description"}
_ATTRIBUTE_KEYS = {field.name for field in dataclass_fields(AttributeSpec)}
_MIX_KEYS = {"weight", "attributes"}
_RUN_KEYS = {field.name for field in dataclass_fields(RunShape)}
_ENGINE_KEYS = {field.name for field in dataclass_fields(EngineHints)}

_CACHE: dict[str, ScenarioProfile] = {}


# -- typed accessors ----------------------------------------------------------


def _check_table(value: Any, path: str) -> dict:
    if not isinstance(value, Mapping):
        raise WorkloadSpecError(path, f"expected a table, got {type(value).__name__}")
    return dict(value)


def _check_string(value: Any, path: str) -> str:
    if not isinstance(value, str):
        raise WorkloadSpecError(path, f"expected a string, got {value!r}")
    return value


def _check_int(value: Any, path: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise WorkloadSpecError(path, f"expected an integer, got {value!r}")
    return value


def _check_number(value: Any, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WorkloadSpecError(path, f"expected a number, got {value!r}")
    return float(value)


def _reject_unknown_keys(table: Mapping, allowed: set[str], path: str) -> None:
    for key in table:
        if key not in allowed:
            raise WorkloadSpecError(
                f"{path}.{key}" if path else str(key),
                f"unknown key (expected one of {sorted(allowed)})",
            )


# -- document reading and inheritance -----------------------------------------


def _read_document(path: Path) -> dict:
    suffix = path.suffix.lower()
    if suffix == ".toml":
        if _toml is None:  # pragma: no cover - py3.10 without tomli
            raise WorkloadSpecError(
                str(path),
                "reading TOML profiles needs tomllib (Python 3.11+) or the "
                "tomli package; install tomli or use a YAML profile",
            )
        try:
            with open(path, "rb") as handle:
                document = _toml.load(handle)
        except _toml.TOMLDecodeError as exc:
            raise WorkloadSpecError(str(path), f"invalid TOML: {exc}") from exc
    elif suffix in (".yaml", ".yml"):
        if _yaml is None:
            raise WorkloadSpecError(
                str(path),
                "reading YAML profiles needs the PyYAML package; install "
                "pyyaml or use a TOML profile",
            )
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = _yaml.safe_load(handle)
        except _yaml.YAMLError as exc:
            raise WorkloadSpecError(str(path), f"invalid YAML: {exc}") from exc
    else:
        raise WorkloadSpecError(
            str(path), f"unsupported profile suffix {suffix!r} (expected {list(_SUFFIXES)})"
        )
    return _check_table(document, str(path))


def _looks_like_path(reference: str) -> bool:
    if os.sep in reference or "/" in reference:
        return True
    return reference.lower().endswith(_SUFFIXES)


def _locate(reference: str, *, relative_to: Path | None, key: str) -> Path:
    """Resolve a profile reference (registry name or file path) to a path."""
    if _looks_like_path(reference):
        path = Path(reference)
        if not path.is_absolute() and relative_to is not None:
            path = relative_to / path
        if not path.is_file():
            raise WorkloadSpecError(key, f"no such profile file: {reference}")
        return path
    for suffix in _SUFFIXES:
        candidate = PROFILES_DIR / f"{reference}{suffix}"
        if candidate.is_file():
            return candidate
    raise WorkloadSpecError(
        key,
        f"unknown profile {reference!r}; available: {', '.join(list_profiles())}",
    )


def _merge(base: Mapping, child: Mapping) -> dict:
    """Deep-merge ``child`` over ``base``: tables merge, scalars/lists win."""
    merged = dict(base)
    for key, value in child.items():
        if isinstance(value, Mapping) and isinstance(merged.get(key), Mapping):
            merged[key] = _merge(merged[key], value)
        else:
            merged[key] = value
    return merged


def _resolve_document(path: Path, seen: tuple[Path, ...]) -> dict:
    resolved = path.resolve()
    if resolved in seen:
        chain = " -> ".join(p.stem for p in (*seen, resolved))
        raise WorkloadSpecError("extends", f"cyclic extends chain: {chain}")
    document = _read_document(path)
    extends = document.get("extends")
    if extends is None:
        return document
    base_path = _locate(_check_string(extends, "extends"), relative_to=path.parent, key="extends")
    base = _resolve_document(base_path, (*seen, resolved))
    # Identity never flows from the base: an extending profile is a new
    # scenario, not an alias, so it states its own name and description.
    base.pop("name", None)
    base.pop("description", None)
    child = {key: value for key, value in document.items() if key != "extends"}
    return _merge(base, child)


# -- section builders ---------------------------------------------------------


def _build_domain(table: Mapping, path: str) -> Domain:
    table = _check_table(table, path)
    _reject_unknown_keys(table, _SCHEMA_KEYS, path)
    kind = _check_string(table.get("domain"), f"{path}.domain") if "domain" in table else None
    if kind is None:
        raise WorkloadSpecError(f"{path}.domain", "required (integer, continuous or discrete)")
    try:
        if kind == "integer":
            for bound in ("low", "high"):
                if bound not in table:
                    raise WorkloadSpecError(f"{path}.{bound}", "required for integer domains")
            return IntegerDomain(
                _check_int(table["low"], f"{path}.low"),
                _check_int(table["high"], f"{path}.high"),
            )
        if kind == "continuous":
            for bound in ("low", "high"):
                if bound not in table:
                    raise WorkloadSpecError(f"{path}.{bound}", "required for continuous domains")
            return ContinuousDomain(
                _check_number(table["low"], f"{path}.low"),
                _check_number(table["high"], f"{path}.high"),
            )
        if kind == "discrete":
            values = table.get("values")
            pattern = table.get("pattern")
            if (values is None) == (pattern is None):
                raise WorkloadSpecError(
                    f"{path}.values",
                    "discrete domains take either 'values' or 'pattern' + 'count'",
                )
            if pattern is not None:
                pattern = _check_string(pattern, f"{path}.pattern")
                if "count" not in table:
                    raise WorkloadSpecError(f"{path}.count", "required alongside 'pattern'")
                count = _check_int(table["count"], f"{path}.count")
                if count < 1:
                    raise WorkloadSpecError(f"{path}.count", "must be at least 1")
                values = [pattern.format(i=i) for i in range(count)]
            elif not isinstance(values, list) or not values:
                raise WorkloadSpecError(f"{path}.values", "expected a non-empty list")
            return DiscreteDomain(values)
    except DomainError as exc:
        raise WorkloadSpecError(path, str(exc)) from exc
    raise WorkloadSpecError(
        f"{path}.domain",
        f"unknown domain kind {kind!r} (expected 'integer', 'continuous' or 'discrete')",
    )


def _build_schema(table: Mapping, path: str) -> Schema:
    table = _check_table(table, path)
    if not table:
        raise WorkloadSpecError(path, "a profile needs at least one schema attribute")
    attributes = []
    for name, entry in table.items():
        entry_path = f"{path}.{name}"
        entry = _check_table(entry, entry_path)
        domain = _build_domain(entry, entry_path)
        unit = entry.get("unit")
        description = entry.get("description")
        if unit is not None:
            unit = _check_string(unit, f"{entry_path}.unit")
        if description is not None:
            description = _check_string(description, f"{entry_path}.description")
        try:
            attributes.append(Attribute(name, domain, unit=unit, description=description))
        except SchemaError as exc:
            raise WorkloadSpecError(entry_path, str(exc)) from exc
    try:
        return Schema(attributes)
    except SchemaError as exc:
        raise WorkloadSpecError(path, str(exc)) from exc


def _build_attribute_spec(table: Mapping, path: str, schema: Schema, name: str) -> AttributeSpec:
    if name not in schema:
        raise WorkloadSpecError(
            path,
            f"not declared in [schema] (schema attributes: {list(schema.names)})",
        )
    table = _check_table(table, path)
    _reject_unknown_keys(table, _ATTRIBUTE_KEYS, path)
    kwargs: dict[str, Any] = {}
    for key, value in table.items():
        if key in ("event_distribution", "profile_distribution", "predicate"):
            kwargs[key] = _check_string(value, f"{path}.{key}")
        else:
            kwargs[key] = _check_number(value, f"{path}.{key}")
    try:
        spec = AttributeSpec(**kwargs)
    except WorkloadError as exc:
        raise WorkloadSpecError(path, str(exc)) from exc
    domain = schema.attribute(name).domain
    for side in ("event_distribution", "profile_distribution"):
        try:
            make_distribution(getattr(spec, side), domain)
        except DistributionError as exc:
            raise WorkloadSpecError(f"{path}.{side}", str(exc)) from exc
    if spec.predicate in ("range", "mixed") and isinstance(domain, DiscreteDomain):
        raise WorkloadSpecError(
            f"{path}.predicate",
            f"{spec.predicate!r} predicates need an ordered domain, but "
            f"schema.{name} is discrete",
        )
    return spec


def _build_mix(table: Mapping, path: str, schema: Schema) -> tuple[MixGroup, ...]:
    table = _check_table(table, path)
    groups = []
    for group_name, entry in table.items():
        group_path = f"{path}.{group_name}"
        entry = _check_table(entry, group_path)
        _reject_unknown_keys(entry, _MIX_KEYS, group_path)
        weight = _check_number(entry.get("weight", 1.0), f"{group_path}.weight")
        overrides = {
            attr: _build_attribute_spec(spec, f"{group_path}.attributes.{attr}", schema, attr)
            for attr, spec in _check_table(
                entry.get("attributes", {}), f"{group_path}.attributes"
            ).items()
        }
        try:
            groups.append(MixGroup(name=group_name, weight=weight, attributes=overrides))
        except WorkloadError as exc:
            raise WorkloadSpecError(group_path, str(exc)) from exc
    return tuple(groups)


def _build_run(table: Mapping, path: str) -> RunShape:
    table = _check_table(table, path)
    _reject_unknown_keys(table, _RUN_KEYS, path)
    kwargs: dict[str, Any] = {}
    if "batch_size" in table:
        kwargs["batch_size"] = _check_int(table["batch_size"], f"{path}.batch_size")
    if "delivery" in table:
        kwargs["delivery"] = _check_string(table["delivery"], f"{path}.delivery")
    if "churn_rate" in table:
        kwargs["churn_rate"] = _check_number(table["churn_rate"], f"{path}.churn_rate")
    return RunShape(**kwargs)


def _build_engine(table: Mapping, path: str) -> EngineHints:
    table = _check_table(table, path)
    _reject_unknown_keys(table, _ENGINE_KEYS, path)
    kwargs: dict[str, Any] = {}
    if "engine" in table:
        kwargs["engine"] = _check_string(table["engine"], f"{path}.engine")
    if "families" in table:
        families = table["families"]
        if not isinstance(families, list):
            raise WorkloadSpecError(f"{path}.families", "expected a list of family names")
        kwargs["families"] = tuple(
            _check_string(family, f"{path}.families") for family in families
        )
    for knob in ("shard_count", "reoptimize_interval", "warmup_events", "min_columnar_batch"):
        if knob in table:
            kwargs[knob] = _check_int(table[knob], f"{path}.{knob}")
    if "improvement_threshold" in table:
        kwargs["improvement_threshold"] = _check_number(
            table["improvement_threshold"], f"{path}.improvement_threshold"
        )
    return EngineHints(**kwargs)


def _build_profile(document: Mapping, *, default_name: str, source: Path | None) -> ScenarioProfile:
    _reject_unknown_keys(document, _TOP_LEVEL_KEYS, "")
    if "schema" not in document:
        raise WorkloadSpecError("schema", "required: a profile declares its schema")
    schema = _build_schema(document["schema"], "schema")
    attributes = {
        name: _build_attribute_spec(table, f"attributes.{name}", schema, name)
        for name, table in _check_table(
            document.get("attributes", {}), "attributes"
        ).items()
    }
    mix = _build_mix(document.get("mix", {}), "mix", schema)
    name = _check_string(document.get("name", default_name), "name")
    kwargs: dict[str, Any] = {}
    for count_key in ("profile_count", "event_count", "seed"):
        if count_key in document:
            kwargs[count_key] = _check_int(document[count_key], count_key)
    try:
        spec = WorkloadSpec(name=name, schema=schema, attributes=attributes, mix=mix, **kwargs)
    except WorkloadError as exc:
        raise WorkloadSpecError("profile", str(exc)) from exc
    description = _check_string(document.get("description", ""), "description")
    extends = document.get("extends")
    return ScenarioProfile(
        name=name,
        spec=spec,
        run=_build_run(document.get("run", {}), "run"),
        engine=_build_engine(document.get("engine", {}), "engine"),
        description=description,
        extends=extends if isinstance(extends, str) else None,
        source=source,
    )


# -- public API ---------------------------------------------------------------


def list_profiles() -> tuple[str, ...]:
    """Return the names of the committed corpus profiles, sorted.

    Underscore-prefixed files are bases for ``extends`` chains, not
    runnable scenarios, and stay out of the listing.
    """
    names = {
        path.stem
        for suffix in _SUFFIXES
        for path in PROFILES_DIR.glob(f"*{suffix}")
        if not path.stem.startswith("_")
    }
    return tuple(sorted(names))


def load_profile(name_or_path: str | os.PathLike) -> ScenarioProfile:
    """Load and validate one scenario profile.

    ``name_or_path`` is either the name of a committed corpus profile
    (see :func:`list_profiles`) or a filesystem path to a profile file
    anywhere.  Inheritance (``extends``) is resolved, every key is
    validated, and failures raise
    :class:`~repro.core.errors.WorkloadSpecError` naming the offending
    key path.
    """
    reference = os.fspath(name_or_path)
    if isinstance(name_or_path, os.PathLike) or _looks_like_path(reference):
        path = Path(reference)
        if not path.is_file():
            raise WorkloadSpecError("profile", f"no such profile file: {reference}")
    else:
        path = _locate(reference, relative_to=None, key="profile")
    extends = _read_document(path).get("extends")
    document = _resolve_document(path, ())
    profile = _build_profile(document, default_name=path.stem, source=path)
    if isinstance(extends, str):
        profile = ScenarioProfile(
            name=profile.name,
            spec=profile.spec,
            run=profile.run,
            engine=profile.engine,
            description=profile.description,
            extends=extends,
            source=path,
        )
    return profile


def get_profile(name: str) -> ScenarioProfile:
    """Return a committed corpus profile by name (cached per process)."""
    if _looks_like_path(name):
        raise WorkloadSpecError(
            "profile", f"get_profile takes a registry name, not a path: {name!r}"
        )
    if name not in _CACHE:
        _CACHE[name] = load_profile(name)
    return _CACHE[name]


# -- dumping ------------------------------------------------------------------


def _toml_value(value: object) -> str:
    if isinstance(value, str):
        return json.dumps(value)  # JSON string escapes are valid TOML
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(item) for item in value) + "]"
    raise WorkloadSpecError("dump", f"cannot serialise {value!r} to TOML")


def _domain_lines(domain: Domain) -> list[str]:
    if isinstance(domain, IntegerDomain):
        return ['domain = "integer"', f"low = {domain.low}", f"high = {domain.high}"]
    if isinstance(domain, ContinuousDomain):
        return [
            'domain = "continuous"',
            f"low = {_toml_value(domain.low)}",
            f"high = {_toml_value(domain.high)}",
        ]
    if isinstance(domain, DiscreteDomain):
        return ['domain = "discrete"', f"values = {_toml_value(list(domain.ordered_values))}"]
    raise WorkloadSpecError("dump", f"cannot serialise domain {domain!r}")


def _attribute_spec_lines(spec: AttributeSpec) -> list[str]:
    return [
        f"{field.name} = {_toml_value(getattr(spec, field.name))}"
        for field in dataclass_fields(AttributeSpec)
    ]


def dump_profile(profile: ScenarioProfile, path: str | os.PathLike) -> Path:
    """Write ``profile`` as a fully-resolved TOML document.

    Inheritance is flattened on write (the output carries no
    ``extends``), and loading the written file yields a profile equal to
    ``profile`` — the round-trip contract the loader tests pin.
    """
    spec = profile.spec
    lines = [f"name = {_toml_value(profile.name)}"]
    if profile.description:
        lines.append(f"description = {_toml_value(profile.description)}")
    lines += [
        f"profile_count = {spec.profile_count}",
        f"event_count = {spec.event_count}",
        f"seed = {spec.seed}",
    ]
    for attribute in spec.schema:
        lines += ["", f"[schema.{attribute.name}]", *_domain_lines(attribute.domain)]
        if attribute.unit is not None:
            lines.append(f"unit = {_toml_value(attribute.unit)}")
        if attribute.description is not None:
            lines.append(f"description = {_toml_value(attribute.description)}")
    for name, attribute_spec in spec.attributes.items():
        lines += ["", f"[attributes.{name}]", *_attribute_spec_lines(attribute_spec)]
    for group in spec.mix:
        lines += ["", f"[mix.{group.name}]", f"weight = {_toml_value(group.weight)}"]
        for name, attribute_spec in group.attributes.items():
            lines += [
                "",
                f"[mix.{group.name}.attributes.{name}]",
                *_attribute_spec_lines(attribute_spec),
            ]
    run = profile.run
    lines += [
        "",
        "[run]",
        f"batch_size = {run.batch_size}",
        f"delivery = {_toml_value(run.delivery)}",
        f"churn_rate = {_toml_value(run.churn_rate)}",
    ]
    hints = profile.engine
    lines += [
        "",
        "[engine]",
        f"engine = {_toml_value(hints.engine)}",
        f"families = {_toml_value(hints.families)}",
    ]
    for knob, value in hints.policy_overrides().items():
        lines.append(f"{knob} = {_toml_value(value)}")
    target = Path(path)
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return target
