"""Declarative scenario profiles — workloads as data.

The corpus lives next to this module as ``*.toml`` files; each one is a
complete scenario (schema, per-attribute distributions, profile mix,
counts, seed, run shape, engine hints).  ``list_profiles()`` discovers
the committed corpus, ``get_profile(name)`` loads one by name (cached),
``load_profile(path)`` loads out-of-tree files, and ``dump_profile``
writes a fully-resolved profile back out — the round-trip the loader
tests pin.  See ``docs/workloads.md`` for the file-format reference and
the corpus catalog.
"""

from repro.core.errors import WorkloadSpecError
from repro.workloads.profiles.loader import (
    PROFILES_DIR,
    dump_profile,
    get_profile,
    list_profiles,
    load_profile,
)
from repro.workloads.profiles.model import (
    DEFAULT_FAMILIES,
    EngineHints,
    RunShape,
    ScenarioProfile,
)

__all__ = [
    "DEFAULT_FAMILIES",
    "EngineHints",
    "PROFILES_DIR",
    "RunShape",
    "ScenarioProfile",
    "WorkloadSpecError",
    "dump_profile",
    "get_profile",
    "list_profiles",
    "load_profile",
]
