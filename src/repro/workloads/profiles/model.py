"""Data model of declarative scenario profiles.

A *scenario profile* is everything a corpus runner needs to reproduce one
workload end to end: the :class:`~repro.workloads.spec.WorkloadSpec`
(schema, distributions, profile mix, counts, seed), the *run shape*
(batch size, delivery mode, subscription churn rate) and *engine hints*
(which family to construct by default, which families are applicable at
all, and the adaptation-policy knobs a fair comparison needs pinned).

The model is pure data — it imports nothing from :mod:`repro.service`
or :mod:`repro.api`, so the workloads layer stays below the service
layer.  :meth:`EngineHints.policy_overrides` hands the pinned knobs to
whoever builds the :class:`~repro.service.adaptive.AdaptationPolicy`
(``FilterService.from_profile``, the corpus runner).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.errors import WorkloadSpecError
from repro.workloads.spec import WorkloadSpec

__all__ = ["EngineHints", "RunShape", "ScenarioProfile"]

#: Engine families a corpus profile runs through unless it names its own
#: roster.  ``counting``/``naive`` stay out: their op metrics are
#: documented lower bounds, not comparable production costs.  ``sharded``
#: is opt-in because it requires a pinned ``shard_count`` (the cores-based
#: default would make corpus numbers machine-dependent).
DEFAULT_FAMILIES = ("tree", "index", "hybrid")

_DELIVERY_MODES = ("inline", "threadpool", "asyncio")


@dataclass(frozen=True)
class RunShape:
    """How the corpus runner drives the workload through a service.

    ``batch_size`` events are published per ``publish_batch`` call
    (1 = per-event publishing); ``churn_rate`` is the number of
    subscription operations (cancel + replacement subscribe counts as
    two) interleaved per published event — 0 freezes the population.
    """

    batch_size: int = 1
    delivery: str = "inline"
    churn_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise WorkloadSpecError("run.batch_size", "must be at least 1")
        if self.delivery not in _DELIVERY_MODES:
            raise WorkloadSpecError(
                "run.delivery", f"must be one of {list(_DELIVERY_MODES)}, got {self.delivery!r}"
            )
        if self.churn_rate < 0.0:
            raise WorkloadSpecError("run.churn_rate", "must be non-negative")


@dataclass(frozen=True)
class EngineHints:
    """Engine selection and pinned adaptation knobs of a profile.

    ``engine`` is the family ``FilterService.from_profile`` constructs by
    default (any registry name or ``"auto"``); ``families`` is the roster
    the corpus runner sweeps — a profile whose structure is pathological
    for a family (e.g. broad ranges exploding the tree's subrange
    decomposition) narrows it and documents why in the file.  The
    remaining knobs pin :class:`~repro.service.adaptive.AdaptationPolicy`
    fields that change deterministic op counts (``shard_count`` must be
    pinned whenever ``families`` includes ``"sharded"``: the cores-based
    default would make corpus numbers machine-dependent).
    """

    engine: str = "auto"
    families: tuple[str, ...] = DEFAULT_FAMILIES
    shard_count: int | None = None
    reoptimize_interval: int | None = None
    warmup_events: int | None = None
    improvement_threshold: float | None = None
    min_columnar_batch: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "families", tuple(self.families))
        if not self.families:
            raise WorkloadSpecError("engine.families", "must name at least one family")
        if "sharded" in self.families and self.shard_count is None:
            raise WorkloadSpecError(
                "engine.shard_count",
                "must be pinned when 'sharded' is in engine.families (the "
                "cores-based default is machine-dependent, corpus numbers "
                "must not be)",
            )

    def policy_overrides(self) -> dict[str, object]:
        """Return the pinned AdaptationPolicy kwargs (unset knobs omitted)."""
        overrides: dict[str, object] = {}
        for knob in (
            "shard_count",
            "reoptimize_interval",
            "warmup_events",
            "improvement_threshold",
            "min_columnar_batch",
        ):
            value = getattr(self, knob)
            if value is not None:
                overrides[knob] = value
        return overrides


@dataclass(frozen=True)
class ScenarioProfile:
    """One fully-resolved scenario profile.

    ``extends`` and ``source`` are provenance, not identity: two profiles
    that resolve to the same spec/run/hints compare equal no matter which
    file (or inheritance chain) produced them — the property the
    round-trip tests rely on.
    """

    name: str
    spec: WorkloadSpec
    run: RunShape = field(default_factory=RunShape)
    engine: EngineHints = field(default_factory=EngineHints)
    description: str = ""
    extends: str | None = field(default=None, compare=False)
    source: Path | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.name != self.spec.name:
            raise WorkloadSpecError(
                "name",
                f"profile name {self.name!r} disagrees with its spec name "
                f"{self.spec.name!r}",
            )
