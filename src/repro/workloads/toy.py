"""The paper's running toy example (Examples 1-4).

Example 1 defines an environmental monitoring service with three attributes
(temperature, humidity, UV-A radiation) and five profiles P1-P5; Examples
2-4 attach event probabilities to the resulting sub-ranges and study the
effect of value and attribute reordering.  This module reconstructs that
setup exactly so the analysis layer and the test suite can check the
library's numbers against the paper's worked examples.
"""

from __future__ import annotations

from repro.core.domains import ContinuousDomain
from repro.core.events import Event
from repro.core.profiles import ProfileSet, profile
from repro.core.predicates import RangePredicate
from repro.core.schema import Attribute, Schema
from repro.distributions.base import Distribution
from repro.distributions.continuous import PiecewiseConstantDistribution

__all__ = [
    "TEMPERATURE",
    "HUMIDITY",
    "RADIATION",
    "environmental_schema",
    "environmental_profiles",
    "example_event",
    "example2_temperature_distribution",
    "example3_event_distributions",
]

#: Attribute names used throughout the toy example.
TEMPERATURE = "temperature"
HUMIDITY = "humidity"
RADIATION = "radiation"


def environmental_schema() -> Schema:
    """Return the schema of Example 1.

    ``a1``: temperature in [-30, 50] °C, ``a2``: humidity in [0, 100] %,
    ``a3``: UV-A radiation in [1, 100] mW/m².
    """
    return Schema(
        [
            Attribute(TEMPERATURE, ContinuousDomain(-30, 50), unit="°C"),
            Attribute(HUMIDITY, ContinuousDomain(0, 100), unit="%"),
            Attribute(RADIATION, ContinuousDomain(1, 100), unit="mW/m²"),
        ]
    )


def environmental_profiles(schema: Schema | None = None) -> ProfileSet:
    """Return the five profiles P1-P5 of Example 1.

    * P1: temperature >= 35, humidity >= 90
    * P2: temperature >= 30, humidity >= 90
    * P3: temperature >= 30, humidity >= 90, radiation in [35, 50]
    * P4: temperature in [-30, -20], humidity <= 5, radiation in [40, 100]
    * P5: temperature >= 30, humidity >= 80
    """
    schema = schema or environmental_schema()
    profiles = ProfileSet(schema)
    profiles.add(
        profile(
            "P1",
            temperature=RangePredicate.at_least(35),
            humidity=RangePredicate.at_least(90),
        )
    )
    profiles.add(
        profile(
            "P2",
            temperature=RangePredicate.at_least(30),
            humidity=RangePredicate.at_least(90),
        )
    )
    profiles.add(
        profile(
            "P3",
            temperature=RangePredicate.at_least(30),
            humidity=RangePredicate.at_least(90),
            radiation=RangePredicate.between(35, 50),
        )
    )
    profiles.add(
        profile(
            "P4",
            temperature=RangePredicate.between(-30, -20),
            humidity=RangePredicate.at_most(5),
            radiation=RangePredicate.between(40, 100),
        )
    )
    profiles.add(
        profile(
            "P5",
            temperature=RangePredicate.at_least(30),
            humidity=RangePredicate.at_least(80),
        )
    )
    return profiles


def example_event() -> Event:
    """Return the event of Eq. (1): temperature 30 °C, humidity 90 %,
    radiation 2 mW/m² — matched by P2 and P5."""
    return Event({TEMPERATURE: 30.0, HUMIDITY: 90.0, RADIATION: 2.0})


def _piecewise(
    domain: ContinuousDomain, segments: list[tuple[float, float, float]]
) -> Distribution:
    """Build a piecewise-constant distribution from (low, high, mass) segments.

    The segments must tile the domain; unit-width bins are used so every
    integer segment boundary is respected exactly.
    """
    full = domain.full_interval()
    bins = int(round(full.high - full.low))
    weights = [0.0] * bins
    for low, high, mass in segments:
        first = int(round(low - full.low))
        last = int(round(high - full.low))
        width = max(1, last - first)
        for i in range(first, last):
            weights[i] += mass / width
    return PiecewiseConstantDistribution(domain, weights)


def example2_temperature_distribution() -> Distribution:
    """Return ``P_e`` for the temperature attribute as given in Example 2.

    ``P_e([-30, -20]) = 2 %``, ``P_e([30, 35]) = 1 %``,
    ``P_e((35, 50]) = 80 %`` and ``P_e(x_0) = P_e([-20, 30]) = 17 %``.
    """
    domain = ContinuousDomain(-30, 50)
    return _piecewise(
        domain,
        [(-30, -20, 0.02), (-20, 30, 0.17), (30, 35, 0.01), (35, 50, 0.80)],
    )


def example3_event_distributions() -> dict[str, Distribution]:
    """Return the per-attribute event distributions assumed in Example 3.

    ``P_e(X_1)`` is the temperature distribution of Example 2;
    ``P_e(X_2) = ([0, 30]: 5 %, [30, 80]: 60 %, [80, 90]: 25 %, [90, 100]: 10 %)``;
    ``P_e(X_3) = ([0, 35]: 90 %, [35, 40]: 5 %, [40, 50]: 2 %, [50, 100]: 3 %)``.
    """
    humidity_domain = ContinuousDomain(0, 100)
    radiation_domain = ContinuousDomain(1, 100)
    humidity = _piecewise(
        humidity_domain,
        [(0, 30, 0.05), (30, 80, 0.60), (80, 90, 0.25), (90, 100, 0.10)],
    )
    radiation = _piecewise(
        radiation_domain,
        [(1, 35, 0.90), (35, 40, 0.05), (40, 50, 0.02), (50, 100, 0.03)],
    )
    return {
        TEMPERATURE: example2_temperature_distribution(),
        HUMIDITY: humidity,
        RADIATION: radiation,
    }
