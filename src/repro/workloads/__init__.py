"""Workload specifications, generators and the declarative scenario corpus.

Scenarios are *data*: the committed corpus of TOML profiles under
:mod:`repro.workloads.profiles` replaces the hand-written ``*_spec()``
callables (kept as one-time-warning shims).  ``list_profiles()`` /
``get_profile(name)`` / ``load_profile(path)`` are the discovery and
loading API; see ``docs/workloads.md``.
"""

from repro.core.errors import WorkloadSpecError
from repro.workloads.generators import (
    Workload,
    build_workload,
    generate_events,
    generate_profiles,
)
from repro.workloads.profiles import (
    EngineHints,
    RunShape,
    ScenarioProfile,
    dump_profile,
    get_profile,
    list_profiles,
    load_profile,
)
from repro.workloads.scenarios import (
    environmental_monitoring_spec,
    facility_management_spec,
    mixed_workload_spec,
    single_attribute_spec,
    stock_ticker_spec,
    wide_range_spec,
)
from repro.workloads.spec import AttributeSpec, MixGroup, WorkloadSpec
from repro.workloads.toy import (
    environmental_profiles,
    environmental_schema,
    example2_temperature_distribution,
    example3_event_distributions,
    example_event,
)

__all__ = [
    "AttributeSpec",
    "EngineHints",
    "MixGroup",
    "RunShape",
    "ScenarioProfile",
    "Workload",
    "WorkloadSpec",
    "WorkloadSpecError",
    "build_workload",
    "dump_profile",
    "environmental_monitoring_spec",
    "environmental_profiles",
    "environmental_schema",
    "example2_temperature_distribution",
    "example3_event_distributions",
    "example_event",
    "facility_management_spec",
    "generate_events",
    "generate_profiles",
    "get_profile",
    "list_profiles",
    "load_profile",
    "mixed_workload_spec",
    "single_attribute_spec",
    "stock_ticker_spec",
    "wide_range_spec",
]
