"""Workload specifications, generators and application scenarios."""

from repro.workloads.generators import (
    Workload,
    build_workload,
    generate_events,
    generate_profiles,
)
from repro.workloads.scenarios import (
    environmental_monitoring_spec,
    facility_management_spec,
    mixed_workload_spec,
    single_attribute_spec,
    stock_ticker_spec,
    wide_range_spec,
)
from repro.workloads.spec import AttributeSpec, WorkloadSpec
from repro.workloads.toy import (
    environmental_profiles,
    environmental_schema,
    example2_temperature_distribution,
    example3_event_distributions,
    example_event,
)

__all__ = [
    "AttributeSpec",
    "Workload",
    "WorkloadSpec",
    "build_workload",
    "environmental_monitoring_spec",
    "environmental_profiles",
    "environmental_schema",
    "example2_temperature_distribution",
    "example3_event_distributions",
    "example_event",
    "facility_management_spec",
    "generate_events",
    "generate_profiles",
    "mixed_workload_spec",
    "single_attribute_spec",
    "stock_ticker_spec",
    "wide_range_spec",
]
