"""Profile and event generators.

Turns a :class:`~repro.workloads.spec.WorkloadSpec` into concrete profiles,
events and per-attribute distributions.  All randomness is driven by a
single seeded ``random.Random`` derived from the spec's seed, so generated
workloads are fully reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.core.domains import DiscreteDomain, Domain, IntegerDomain
from repro.core.errors import WorkloadError
from repro.core.events import Event
from repro.core.predicates import Equals, Predicate, RangePredicate
from repro.core.profiles import Profile, ProfileSet
from repro.core.schema import Schema
from repro.distributions.base import Distribution
from repro.distributions.joint import IndependentJointDistribution
from repro.distributions.library import make_distribution
from repro.workloads.spec import AttributeSpec, MixGroup, WorkloadSpec

__all__ = ["Workload", "generate_profiles", "generate_events", "build_workload"]


@dataclass(frozen=True)
class Workload:
    """A fully materialised workload."""

    spec: WorkloadSpec
    profiles: ProfileSet
    events: tuple[Event, ...]
    event_distributions: Mapping[str, Distribution]
    profile_distributions: Mapping[str, Distribution]

    @property
    def schema(self) -> Schema:
        return self.spec.schema

    def joint_event_distribution(self) -> IndependentJointDistribution:
        """Return the independent joint distribution of the event values."""
        return IndependentJointDistribution(self.schema, dict(self.event_distributions))


def _profile_predicate(
    spec: AttributeSpec, domain: Domain, value: object, rng: random.Random
) -> Predicate:
    """Turn a drawn profile value into a predicate according to the spec."""
    if spec.predicate == "equality":
        return Equals(value)
    if spec.predicate == "mixed" and rng.random() < spec.mixed_equality_probability:
        return Equals(value)
    # Range predicate centred on the drawn value.
    full = domain.full_interval()
    if isinstance(domain, DiscreteDomain):
        raise WorkloadError("range predicates require an ordered domain")
    width = spec.range_width_fraction * (full.high - full.low)
    centre = float(value)  # type: ignore[arg-type]
    low = max(full.low, centre - width / 2)
    high = min(full.high, centre + width / 2)
    if isinstance(domain, IntegerDomain):
        low, high = int(round(low)), int(round(high))
        if low > high:
            low = high
    if low >= high:
        return Equals(value)
    return RangePredicate.between(low, high)


def generate_profiles(
    spec: WorkloadSpec,
    rng: random.Random,
    profile_distributions: Mapping[str, Distribution],
) -> ProfileSet:
    """Generate ``spec.profile_count`` profiles from the profile distributions.

    Every profile constrains each attribute independently with probability
    ``1 - dont_care_probability``; a profile that would constrain nothing is
    re-drawn (a fully unconstrained profile matches every event and is not a
    meaningful subscription).
    """
    groups: tuple[MixGroup, ...] = tuple(spec.mix)
    weights = [group.weight for group in groups]
    profiles = ProfileSet(spec.schema)
    for index in range(spec.profile_count):
        # With a heterogeneous mix, pick this profile's population segment
        # first; an empty mix never touches the rng, so legacy workloads
        # generate bit-identically to the pre-mix generator.
        group: MixGroup | None = None
        if groups:
            group = rng.choices(groups, weights=weights, k=1)[0]
        predicates: dict[str, Predicate] = {}
        for attempt in range(100):
            predicates = {}
            for attribute in spec.schema:
                attribute_spec = spec.spec_for(attribute.name, group)
                if rng.random() < attribute_spec.dont_care_probability:
                    continue
                distribution = profile_distributions[attribute.name]
                value = distribution.sample(rng)
                predicates[attribute.name] = _profile_predicate(
                    attribute_spec, attribute.domain, value, rng
                )
            if predicates:
                break
        if not predicates:
            raise WorkloadError(
                "could not generate a constrained profile; lower the "
                "dont_care_probability values"
            )
        profiles.add(
            Profile(
                profile_id=f"{spec.name}-P{index + 1}",
                predicates=predicates,
                subscriber=f"user-{index % max(1, spec.profile_count // 10) + 1}",
            )
        )
    return profiles


def generate_events(
    spec: WorkloadSpec,
    rng: random.Random,
    event_distributions: Mapping[str, Distribution],
    *,
    count: int | None = None,
) -> tuple[Event, ...]:
    """Generate events by sampling every attribute independently."""
    joint = IndependentJointDistribution(spec.schema, dict(event_distributions))
    total = count if count is not None else spec.event_count
    return tuple(joint.sample_events(total, rng))


def build_workload(spec: WorkloadSpec) -> Workload:
    """Materialise a workload: distributions, profiles and events."""
    rng = random.Random(spec.seed)
    event_distributions: dict[str, Distribution] = {}
    profile_distributions: dict[str, Distribution] = {}
    for attribute in spec.schema:
        attribute_spec = spec.spec_for(attribute.name)
        event_distributions[attribute.name] = make_distribution(
            attribute_spec.event_distribution, attribute.domain
        )
        profile_distributions[attribute.name] = make_distribution(
            attribute_spec.profile_distribution, attribute.domain
        )
    profiles = generate_profiles(spec, rng, profile_distributions)
    events = generate_events(spec, rng, event_distributions)
    return Workload(
        spec=spec,
        profiles=profiles,
        events=events,
        event_distributions=event_distributions,
        profile_distributions=profile_distributions,
    )
