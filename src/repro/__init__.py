"""repro — reproduction of "Efficient Distribution-Based Event Filtering".

A content-based event notification service (ENS) with a profile-tree filter
whose value and attribute orders adapt to the observed event and profile
distributions, after Hinze & Bittner (ICDCSW 2002).

Sub-packages
------------
``repro.core``
    Events, profiles, predicates, attribute domains and sub-range partitions.
``repro.distributions``
    Event/profile distributions, projection onto sub-ranges, estimation.
``repro.matching``
    Naive, counting, tree-based and predicate-index matchers with operation
    accounting and a batch filtering API.
``repro.selectivity``
    Value measures V1-V3, attribute measures A1-A3, the tree optimizer.
``repro.analysis``
    The analytical cost model (Eq. 2) and the paper's worked examples.
``repro.service``
    The event notification service: broker, subscriptions, adaptive
    re-optimisation, quenching and a multi-broker routing overlay.
``repro.api``
    The stable client facade: :class:`~repro.api.FilterService`, durable
    subscription handles, the fluent profile builder (``where``) and the
    pluggable engine registry.
``repro.simulation``
    Discrete-event simulation used by the distributed examples.
``repro.workloads``
    Workload specs, generators and the paper's application scenarios.
``repro.experiments``
    The evaluation harness regenerating every figure of the paper.
"""

from repro.matching import (
    CountingMatcher,
    Matcher,
    MatchResult,
    NaiveMatcher,
    PredicateIndexMatcher,
    TreeMatcher,
    match_all,
    match_batch,
)

__version__ = "1.2.0"

__all__ = [
    "CountingMatcher",
    "MatchResult",
    "Matcher",
    "NaiveMatcher",
    "PredicateIndexMatcher",
    "TreeMatcher",
    "__version__",
    "match_all",
    "match_batch",
]
