"""Network latency models for the broker overlay.

The paper evaluates a single-node filter; the "distributed" aspect of the
venue (and of the cited Siena/Elvin systems) enters through broker networks
where profile propagation and event routing cross links with non-zero
latency.  These small models keep the examples deterministic (seeded) while
still exercising ordering effects in the simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import SimulationError

__all__ = ["LatencyModel", "ConstantLatency", "UniformLatency", "PerHopLatency"]


class LatencyModel:
    """Base class: returns a delay (in simulated time units) per message."""

    def delay(self, source: str, destination: str) -> float:
        """Return the latency of one message from ``source`` to ``destination``."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Every link has the same fixed latency."""

    value: float = 1.0

    def __post_init__(self) -> None:
        if self.value < 0:
            raise SimulationError("latency must be non-negative")

    def delay(self, source: str, destination: str) -> float:
        return self.value


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]`` with a seeded generator."""

    def __init__(self, low: float, high: float, *, seed: int = 0) -> None:
        if low < 0 or high < low:
            raise SimulationError("need 0 <= low <= high for uniform latency")
        self._low = low
        self._high = high
        self._rng = random.Random(seed)

    def delay(self, source: str, destination: str) -> float:
        return self._rng.uniform(self._low, self._high)


class PerHopLatency(LatencyModel):
    """Explicit per-link latencies with a default for unlisted links."""

    def __init__(self, latencies: dict[tuple[str, str], float], *, default: float = 1.0) -> None:
        if default < 0 or any(v < 0 for v in latencies.values()):
            raise SimulationError("latencies must be non-negative")
        self._latencies = dict(latencies)
        self._default = default

    def delay(self, source: str, destination: str) -> float:
        if (source, destination) in self._latencies:
            return self._latencies[(source, destination)]
        if (destination, source) in self._latencies:
            return self._latencies[(destination, source)]
        return self._default
