"""Multi-broker fan-out scenarios on simulated time.

The seed-era simulator only modelled single-event hop latency; this
module drives the modern :class:`~repro.service.routing.NetworkService`
overlay at scale: N brokers in a chain / star / balanced-tree topology,
a workload-generated subscription population spread over the brokers,
high subscription churn (pause/resume/modify/cancel against live
covering tables) interleaved with batched event publishes — all on the
:class:`~repro.simulation.engine.SimulationEngine` clock under a
configurable latency model.

Defaults are CI-sized; the same driver runs the ROADMAP's 10-broker /
100k-subscription fan-out by turning the knobs up (generation is the
only superlinear cost — routing state stays covering-reduced)::

    from repro.simulation import run_fanout_scenario

    report = run_fanout_scenario(brokers=10, subscriptions=100_000,
                                 event_batches=50, batch_size=200,
                                 churn_operations=10_000)
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import SimulationError
from repro.service.routing.service import NetworkService, NetworkStats
from repro.simulation.engine import SimulationEngine
from repro.simulation.latency import LatencyModel
from repro.workloads.generators import build_workload
from repro.workloads.profiles import get_profile
from repro.workloads.spec import WorkloadSpec

__all__ = ["FanOutReport", "build_topology", "run_fanout_scenario"]

_TOPOLOGIES = ("chain", "star", "tree")


@dataclass(frozen=True)
class FanOutReport:
    """Outcome of one fan-out scenario run."""

    topology: str
    brokers: int
    subscriptions: int
    #: Pause/resume/modify/cancel operations applied during the run.
    churn_operations: int
    events_published: int
    notifications: int
    #: Simulated time consumed by the event traversal.
    simulated_time: float
    #: Scheduler events executed on the simulation engine.
    scheduled_events: int
    #: Final network-wide snapshot (hops, suppression, cover hit rate…).
    network: NetworkStats


def build_topology(
    service: NetworkService,
    *,
    brokers: int,
    topology: str = "chain",
    engine: str | None = None,
) -> list[str]:
    """Create ``brokers`` nodes named ``b0..bN-1`` and link them.

    ``"chain"`` is the worst case for hop counts (and the benchmark's
    shape), ``"star"`` routes everything through ``b0``, ``"tree"`` is a
    balanced binary tree rooted at ``b0``.
    """
    if topology not in _TOPOLOGIES:
        raise SimulationError(
            f"unknown topology {topology!r}; pick one of {_TOPOLOGIES}"
        )
    if brokers < 1:
        raise SimulationError("need at least one broker")
    names = [f"b{i}" for i in range(brokers)]
    for name in names:
        service.add_broker(name, engine=engine)
    for i in range(1, brokers):
        if topology == "chain":
            service.connect(names[i - 1], names[i])
        elif topology == "star":
            service.connect(names[0], names[i])
        else:  # balanced binary tree
            service.connect(names[(i - 1) // 2], names[i])
    return names


def run_fanout_scenario(
    *,
    brokers: int = 10,
    subscriptions: int = 500,
    event_batches: int = 10,
    batch_size: int = 50,
    churn_operations: int = 100,
    topology: str = "chain",
    engine: str | None = "index",
    latency: LatencyModel | None = None,
    spec: WorkloadSpec | None = None,
    seed: int = 7,
) -> FanOutReport:
    """Run one fan-out scenario and return its report.

    The workload (profiles and events) comes from ``spec`` (default:
    the stock-ticker scenario scaled to the requested sizes).  Profiles
    subscribe at seeded-random home brokers; between event batches the
    driver applies ``churn_operations`` seeded pause/resume/modify/
    cancel operations against live handles, exercising the covering
    tables' incremental maintenance while traffic flows.
    """
    rng = random.Random(seed)
    spec = spec or (
        get_profile("stock-ticker")
        .spec.with_counts(
            profile_count=subscriptions,
            event_count=max(1, event_batches * batch_size),
        )
        .with_seed(seed)
    )
    workload = build_workload(spec)
    service = NetworkService(spec.schema, engine=engine, latency=latency)
    names = build_topology(service, brokers=brokers, topology=topology)
    handles = []
    for item in workload.profiles:
        handles.append(
            service.subscribe(
                item,
                at=rng.choice(names),
                subscriber=item.subscriber or item.profile_id,
            )
        )
    simulation = SimulationEngine()
    events = list(workload.events)
    batches = [
        events[start : start + batch_size]
        for start in range(0, len(events), batch_size)
    ][:event_batches]
    churn_per_gap = churn_operations // max(1, len(batches))
    churn_applied = 0
    for batch in batches:
        for _ in range(churn_per_gap):
            handle = rng.choice(handles)
            action = rng.random()
            if handle.is_cancelled:
                continue
            if action < 0.35 and handle.is_active:
                handle.pause()
            elif action < 0.70 and handle.is_paused:
                handle.resume()
            elif action < 0.85 and handle.is_active:
                # Tighten the profile in place: same id, same routing
                # delta machinery as an unsubscribe + resubscribe.
                handle.modify(handle.profile)
            else:
                handle.cancel()
            churn_applied += 1
        service.publish_batch(batch, at=rng.choice(names), simulation=simulation)
    stats = service.stats()
    return FanOutReport(
        topology=topology,
        brokers=brokers,
        subscriptions=subscriptions,
        churn_operations=churn_applied,
        events_published=stats.events_published,
        notifications=stats.notifications,
        simulated_time=simulation.clock.now,
        scheduled_events=simulation.executed,
        network=stats,
    )
