"""Discrete-event simulation substrate for the distributed examples."""

from repro.simulation.clock import SimulationClock
from repro.simulation.engine import ScheduledEvent, SimulationEngine
from repro.simulation.latency import (
    ConstantLatency,
    LatencyModel,
    PerHopLatency,
    UniformLatency,
)

__all__ = [
    "ConstantLatency",
    "LatencyModel",
    "PerHopLatency",
    "ScheduledEvent",
    "SimulationClock",
    "SimulationEngine",
    "UniformLatency",
]
