"""Discrete-event simulation substrate for the distributed scenarios."""

from repro.simulation.clock import SimulationClock
from repro.simulation.engine import ScheduledEvent, SimulationEngine
from repro.simulation.latency import (
    ConstantLatency,
    LatencyModel,
    PerHopLatency,
    UniformLatency,
)

# Imported last: the scenario driver sits on top of the routing overlay,
# which itself schedules on the engine/latency modules above.
from repro.simulation.scenario import (
    FanOutReport,
    build_topology,
    run_fanout_scenario,
)

__all__ = [
    "ConstantLatency",
    "FanOutReport",
    "LatencyModel",
    "PerHopLatency",
    "ScheduledEvent",
    "SimulationClock",
    "SimulationEngine",
    "UniformLatency",
    "build_topology",
    "run_fanout_scenario",
]
