"""Discrete-event simulation engine.

A minimal but complete priority-queue scheduler: callbacks are scheduled at
absolute or relative simulated times and executed in timestamp order (FIFO
among equal timestamps).  The broker-network substrate uses it to model
message propagation delays; the queueing example uses it to study the filter
operating point (events queue up when the filter is slower than the arrival
rate, Section 4.3).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import SimulationError
from repro.simulation.clock import SimulationClock

__all__ = ["ScheduledEvent", "SimulationEngine"]

#: Callbacks receive the engine so they can schedule follow-up events.
SimulationCallback = Callable[["SimulationEngine"], None]


@dataclass(frozen=True, order=True)
class ScheduledEvent:
    """One pending callback in the event queue."""

    timestamp: float
    sequence: int
    callback: SimulationCallback = field(compare=False)
    description: str = field(compare=False, default="")


class SimulationEngine:
    """Priority-queue discrete-event simulator."""

    def __init__(self, *, start_time: float = 0.0) -> None:
        self.clock = SimulationClock(start_time)
        self._queue: list[ScheduledEvent] = []
        self._sequence = itertools.count()
        self._executed = 0

    # -- scheduling -----------------------------------------------------------------
    def schedule_at(
        self, timestamp: float, callback: SimulationCallback, *, description: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` at an absolute simulated time."""
        if timestamp < self.clock.now:
            raise SimulationError(
                f"cannot schedule an event in the past ({timestamp} < {self.clock.now})"
            )
        event = ScheduledEvent(timestamp, next(self._sequence), callback, description)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self, delay: float, callback: SimulationCallback, *, description: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` after a relative delay."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.schedule_at(self.clock.now + delay, callback, description=description)

    # -- execution ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Return the number of queued events."""
        return len(self._queue)

    @property
    def executed(self) -> int:
        """Return the number of executed events."""
        return self._executed

    def step(self) -> ScheduledEvent:
        """Execute the next queued event and return it."""
        if not self._queue:
            raise SimulationError("the event queue is empty")
        event = heapq.heappop(self._queue)
        self.clock.advance_to(event.timestamp)
        event.callback(self)
        self._executed += 1
        return event

    def run(self, *, until: float | None = None, max_events: int | None = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the number of events executed by this call.
        """
        executed = 0
        while self._queue:
            if until is not None and self._queue[0].timestamp > until:
                self.clock.advance_to(until)
                break
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        else:
            if until is not None and until > self.clock.now:
                self.clock.advance_to(until)
        return executed
