"""Simulated time.

The distributed examples and the broker-network substrate run on simulated
time: a monotonically advancing clock owned by the discrete-event engine.
Keeping the clock separate from the engine lets components (brokers, links,
statistics) read the current time without holding a reference to the whole
simulation.
"""

from __future__ import annotations

from repro.core.errors import SimulationError

__all__ = ["SimulationClock"]


class SimulationClock:
    """A monotone simulated clock."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Return the current simulated time."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Moving backwards is a programming error in the driving engine and
        raises :class:`SimulationError`.
        """
        if timestamp < self._now:
            raise SimulationError(
                f"cannot move the clock backwards from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` time units."""
        if delta < 0:
            raise SimulationError("cannot advance the clock by a negative delta")
        self._now += float(delta)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"SimulationClock(now={self._now})"
