"""Distribution interfaces.

The paper models the value of each event attribute as a random variable
``X`` whose distribution is given either as a continuous density function or
as discrete probability values (Section 3).  The continuous distribution of
an attribute "can be reformed as a distribution of, at the most, ``2p - 1``
discrete values" by integrating the density over each defined sub-range,
plus the probability of the zero-subdomain ``x_0``.

This module defines the :class:`Distribution` interface used everywhere in
the library and the :class:`SubrangeDistribution` — the discretised form
obtained by projecting a distribution onto an
:class:`~repro.core.subranges.AttributePartition`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.domains import Domain
from repro.core.errors import DistributionError
from repro.core.intervals import Interval
from repro.core.subranges import AttributePartition, Subrange

__all__ = ["Distribution", "SubrangeDistribution", "project_onto_partition"]

_PROBABILITY_TOLERANCE = 1e-9


class Distribution:
    """Probability distribution over one attribute domain."""

    #: The domain this distribution is defined over.
    domain: Domain

    def probability_of_value(self, value: object) -> float:
        """Return ``P(X = value)``.

        For continuous distributions this is zero except for degenerate
        point masses; it is primarily useful for discrete domains.
        """
        raise NotImplementedError

    def probability_of_interval(self, interval: Interval) -> float:
        """Return ``P(X in interval)`` (interval over values or, for
        :class:`~repro.core.domains.DiscreteDomain`, over natural-order
        indexes)."""
        raise NotImplementedError

    def sample(self, rng: random.Random) -> object:
        """Draw one value from the distribution using ``rng``."""
        raise NotImplementedError

    def mean(self) -> float:
        """Return the mean of the distribution (numeric domains only)."""
        raise NotImplementedError

    # -- derived helpers -----------------------------------------------------
    def probability_of_subrange(self, subrange: Subrange) -> float:
        """Return the probability mass of one defined sub-range."""
        if subrange.value is not None:
            return self.probability_of_value(subrange.value)
        if subrange.interval is None:
            raise DistributionError("subrange carries neither a value nor an interval")
        return self.probability_of_interval(subrange.interval)

    def validate(self) -> None:
        """Check that the distribution integrates/sums to one."""
        total = self.probability_of_interval(self.domain.full_interval())
        if abs(total - 1.0) > 1e-6:
            raise DistributionError(
                f"distribution mass over the full domain is {total:.6f}, expected 1.0"
            )


@dataclass(frozen=True)
class SubrangeDistribution:
    """A distribution projected onto the sub-ranges of one attribute.

    This is exactly the discretisation of Section 3: ``probabilities[i]`` is
    ``P(X = x_i)`` for the ``i``-th defined sub-range (natural order), and
    :attr:`zero_probability` is ``P(X = x_0)`` — the probability that an
    event value falls into the zero-subdomain ``D_0``.
    """

    partition: AttributePartition
    probabilities: tuple[float, ...]
    zero_probability: float

    def __post_init__(self) -> None:
        if len(self.probabilities) != len(self.partition.subranges):
            raise DistributionError(
                "one probability per defined sub-range is required "
                f"({len(self.partition.subranges)} sub-ranges, "
                f"{len(self.probabilities)} probabilities)"
            )
        if any(p < -_PROBABILITY_TOLERANCE for p in self.probabilities):
            raise DistributionError("sub-range probabilities must be non-negative")
        if self.zero_probability < -_PROBABILITY_TOLERANCE:
            raise DistributionError("zero-subdomain probability must be non-negative")
        total = sum(self.probabilities) + self.zero_probability
        if total > 1.0 + 1e-6:
            raise DistributionError(
                f"sub-range probabilities sum to {total:.6f} > 1"
            )

    @property
    def subranges(self) -> Sequence[Subrange]:
        return self.partition.subranges

    def probability(self, subrange: Subrange) -> float:
        """Return the probability of one sub-range of the partition."""
        return self.probabilities[subrange.index]

    def probability_by_index(self, index: int) -> float:
        return self.probabilities[index]

    def total_defined_probability(self) -> float:
        """Return ``P(X != x_0)`` — mass on the defined sub-ranges."""
        return sum(self.probabilities)

    def as_mapping(self) -> Mapping[int, float]:
        """Return ``{subrange index: probability}`` plus ``-1`` for ``x_0``."""
        mapping = {s.index: p for s, p in zip(self.partition.subranges, self.probabilities)}
        mapping[-1] = self.zero_probability
        return mapping

    def normalised(self) -> "SubrangeDistribution":
        """Return a copy rescaled so the total mass is exactly one."""
        total = self.total_defined_probability() + self.zero_probability
        if total <= 0:
            raise DistributionError("cannot normalise a zero-mass distribution")
        return SubrangeDistribution(
            self.partition,
            tuple(p / total for p in self.probabilities),
            self.zero_probability / total,
        )


def project_onto_partition(
    distribution: Distribution, partition: AttributePartition
) -> SubrangeDistribution:
    """Project ``distribution`` onto the defined sub-ranges of ``partition``.

    The probability of each defined sub-range is the integral of the density
    (or sum of the probability masses) over the sub-range; the remaining mass
    is assigned to the zero-subdomain ``x_0``.
    """
    probabilities = []
    for subrange in partition.subranges:
        probabilities.append(max(0.0, distribution.probability_of_subrange(subrange)))
    zero = max(0.0, 1.0 - sum(probabilities))
    return SubrangeDistribution(partition, tuple(probabilities), zero)
