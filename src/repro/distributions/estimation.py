"""Distribution estimation from observed histories.

Section 4 of the paper: "We assume a history of profile and event
distributions to be known to the system; the future properties of events and
profiles are inferred from the history" and, in the conclusion, the
algorithm "has to maintain a history of events in order to determine the
event distribution".

This module provides:

* :class:`FrequencyCounter` — the per-value counters of the prototype's
  statistics objects (Section 4.2), convertible to a
  :class:`~repro.distributions.discrete.DiscreteDistribution`;
* :class:`EventHistory` — a bounded sliding window of observed events with
  per-attribute counters, used by the adaptive filter component;
* :func:`estimate_profile_distribution` — the empirical profile distribution
  ``P_p`` over the sub-ranges of an attribute partition (the fraction of
  profile references per sub-range), used by the value measures V2/V3 and
  the attribute measures A1/A2.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Iterable, Mapping

from repro.core.domains import DiscreteDomain, Domain, IntegerDomain
from repro.core.errors import DistributionError
from repro.core.events import Event
from repro.core.profiles import ProfileSet
from repro.core.schema import Schema
from repro.core.subranges import AttributePartition
from repro.distributions.base import SubrangeDistribution
from repro.distributions.discrete import DiscreteDistribution

__all__ = [
    "FrequencyCounter",
    "EventHistory",
    "estimate_profile_distribution",
    "estimate_event_distribution",
]


class FrequencyCounter:
    """Per-value frequency counter for one attribute.

    Mirrors the prototype's statistic objects: every observed (or simulated)
    value increments a counter; the counters can be read back as an
    empirical probability distribution.  Counters can also be *set* directly,
    which is how the paper "manipulates the counters in order to simulate a
    distribution" without posting a multiple number of events.
    """

    def __init__(self, domain: Domain) -> None:
        self._domain = domain
        self._counts: Counter = Counter()
        self._total = 0

    @property
    def total(self) -> int:
        """Return the total number of recorded observations."""
        return self._total

    def record(self, value: object, weight: int = 1) -> None:
        """Record one observation of ``value`` (optionally weighted)."""
        if value not in self._domain:
            raise DistributionError(f"value {value!r} is outside the attribute domain")
        if weight <= 0:
            raise DistributionError("observation weight must be positive")
        self._counts[value] += weight
        self._total += weight

    def forget(self, value: object, weight: int = 1) -> None:
        """Remove ``weight`` observations of ``value`` (sliding-window decay)."""
        current = self._counts.get(value, 0)
        removed = min(current, weight)
        if removed:
            self._counts[value] = current - removed
            if self._counts[value] == 0:
                del self._counts[value]
            self._total -= removed

    def set_count(self, value: object, count: int) -> None:
        """Overwrite the counter of ``value`` (distribution simulation)."""
        if value not in self._domain:
            raise DistributionError(f"value {value!r} is outside the attribute domain")
        if count < 0:
            raise DistributionError("counts must be non-negative")
        self._total -= self._counts.get(value, 0)
        if count:
            self._counts[value] = count
            self._total += count
        elif value in self._counts:
            del self._counts[value]

    def counts(self) -> Mapping[object, int]:
        """Return a copy of the raw counters."""
        return dict(self._counts)

    def frequency(self, value: object) -> float:
        """Return the relative frequency of ``value`` (0 when never seen)."""
        if self._total == 0:
            return 0.0
        return self._counts.get(value, 0) / self._total

    def to_distribution(self, *, bins: int = 50):
        """Return the empirical distribution implied by the counters.

        Finite domains yield a :class:`DiscreteDistribution`; continuous
        domains yield a histogram
        :class:`~repro.distributions.continuous.PiecewiseConstantDistribution`
        with ``bins`` equal-width bins.
        """
        if self._total == 0:
            raise DistributionError("cannot build a distribution from an empty counter")
        if isinstance(self._domain, (DiscreteDomain, IntegerDomain)):
            return DiscreteDistribution(self._domain, dict(self._counts))
        from repro.distributions.continuous import PiecewiseConstantDistribution

        full = self._domain.full_interval()
        width = (full.high - full.low) / bins
        weights = [0.0] * bins
        for value, count in self._counts.items():
            index = min(int((float(value) - full.low) / width), bins - 1)
            weights[index] += count
        return PiecewiseConstantDistribution(self._domain, weights)


class EventHistory:
    """Bounded sliding window of observed events with per-attribute counters.

    The adaptive filter component consults the history to estimate the
    current event distribution ``P_e`` and decide whether the profile tree
    should be restructured.
    """

    def __init__(self, schema: Schema, *, max_length: int = 10_000) -> None:
        if max_length <= 0:
            raise DistributionError("history length must be positive")
        self._schema = schema
        self._max_length = max_length
        self._events: Deque[Event] = deque()
        self._counters = {
            attribute.name: FrequencyCounter(attribute.domain) for attribute in schema
        }

    def __len__(self) -> int:
        return len(self._events)

    @property
    def max_length(self) -> int:
        return self._max_length

    def observe(self, event: Event) -> None:
        """Add one event, evicting the oldest one beyond the window size."""
        event.validate(self._schema, require_all=False)
        self._events.append(event)
        for name, value in event.values.items():
            self._counters[name].record(value)
        if len(self._events) > self._max_length:
            expired = self._events.popleft()
            for name, value in expired.values.items():
                self._counters[name].forget(value)

    def observe_all(self, events: Iterable[Event]) -> None:
        for event in events:
            self.observe(event)

    def counter(self, attribute: str) -> FrequencyCounter:
        """Return the frequency counter of one attribute."""
        try:
            return self._counters[attribute]
        except KeyError as exc:
            raise DistributionError(f"unknown attribute {attribute!r}") from exc

    def events(self) -> list[Event]:
        """Return the retained events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        """Drop all retained events and counters."""
        self._events.clear()
        for attribute in self._schema:
            self._counters[attribute.name] = FrequencyCounter(attribute.domain)


def estimate_event_distribution(
    history: EventHistory, partition: AttributePartition
) -> SubrangeDistribution:
    """Estimate ``P_e`` over the sub-ranges of ``partition`` from a history."""
    counter = history.counter(partition.attribute.name)
    if counter.total == 0:
        raise DistributionError(
            f"no observations for attribute {partition.attribute.name!r}"
        )
    masses = [0.0] * len(partition.subranges)
    zero = 0.0
    for value, count in counter.counts().items():
        weight = count / counter.total
        located = partition.locate(value)
        if located is None:
            zero += weight
        else:
            masses[located.index] += weight
    return SubrangeDistribution(partition, tuple(masses), zero)


def estimate_profile_distribution(
    profiles: ProfileSet, partition: AttributePartition
) -> SubrangeDistribution:
    """Estimate the profile distribution ``P_p`` over a partition.

    ``P_p(x_i)`` is the fraction of profile references falling on sub-range
    ``x_i``: each profile that constrains the attribute contributes one unit
    of mass spread uniformly over the sub-ranges its predicate accepts.  The
    zero-subdomain has ``P_p(x_0) = 0`` by definition ("the probability of
    these attribute values is zero").
    """
    counts = [0.0] * len(partition.subranges)
    total = 0.0
    for prof in profiles:
        if not prof.constrains(partition.attribute.name):
            continue
        accepted = [s for s in partition.subranges if prof.profile_id in s.profile_ids]
        if not accepted:
            continue
        share = 1.0 / len(accepted)
        for subrange in accepted:
            counts[subrange.index] += share
        total += 1.0
    if total == 0:
        # No profile constrains the attribute: P_p is all don't-care.  Model
        # this as a uniform reference distribution over zero sub-ranges.
        return SubrangeDistribution(partition, tuple(), 1.0) if not partition.subranges else (
            SubrangeDistribution(
                partition,
                tuple(0.0 for _ in partition.subranges),
                1.0,
            )
        )
    return SubrangeDistribution(
        partition, tuple(c / total for c in counts), 0.0
    )
