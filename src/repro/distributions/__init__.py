"""Probability distributions for events and profiles.

Implements the distribution machinery of Section 3: per-attribute event and
profile distributions (``P_e`` / ``P_p``), their projection onto the defined
sub-ranges of an attribute (the discrete random variable ``X`` with domain
``W ∪ {x_0}``), joint distributions across attributes, the named
distribution families used by the evaluation (equal, Gauss, relocated
Gauss, peaked, falling, "defined N"), and history-based estimation for the
adaptive filter component.
"""

from repro.distributions.base import (
    Distribution,
    SubrangeDistribution,
    project_onto_partition,
)
from repro.distributions.continuous import (
    PiecewiseConstantDistribution,
    falling_continuous,
    gaussian_continuous,
    peaked_continuous,
    relocated_gaussian_continuous,
    rising_continuous,
    uniform_continuous,
)
from repro.distributions.discrete import (
    DiscreteDistribution,
    falling_discrete,
    gaussian_discrete,
    peaked_discrete,
    relocated_gaussian_discrete,
    rising_discrete,
    uniform_discrete,
)
from repro.distributions.estimation import (
    EventHistory,
    FrequencyCounter,
    estimate_event_distribution,
    estimate_profile_distribution,
)
from repro.distributions.joint import (
    ConditionalJointDistribution,
    IndependentJointDistribution,
    JointDistribution,
)
from repro.distributions.library import (
    available_named_distributions,
    defined_distribution,
    make_distribution,
)

__all__ = [
    "ConditionalJointDistribution",
    "DiscreteDistribution",
    "Distribution",
    "EventHistory",
    "FrequencyCounter",
    "IndependentJointDistribution",
    "JointDistribution",
    "PiecewiseConstantDistribution",
    "SubrangeDistribution",
    "available_named_distributions",
    "defined_distribution",
    "estimate_event_distribution",
    "estimate_profile_distribution",
    "falling_continuous",
    "falling_discrete",
    "gaussian_continuous",
    "gaussian_discrete",
    "make_distribution",
    "peaked_continuous",
    "peaked_discrete",
    "project_onto_partition",
    "relocated_gaussian_continuous",
    "relocated_gaussian_discrete",
    "rising_continuous",
    "rising_discrete",
    "uniform_continuous",
    "uniform_discrete",
]
