"""Named distribution library, including the Fig. 3 "defined N" family.

The paper's evaluation defines 60 event/profile distributions and refers to
them by number ("defined 1" ... "defined 42" appear in Figs. 3-4), alongside
the uniform ("equal") and Gauss distributions.  The authors only publish a
qualitative sketch of these functions (Fig. 3 "does not precisely describe
each function, but gives an impression"), so this module provides a
*deterministic synthetic replacement*: every ``defined N`` is a mixture of a
uniform background and between one and three peaks whose positions, widths
and masses are derived from ``N`` through a seeded pseudo-random procedure.
The family therefore spans the same qualitative space the paper explores —
narrow high peaks, wide bumps, shifted and multi-modal shapes — and any two
runs of the library produce identical distributions.

All distributions are exposed through a string registry so experiment
definitions can say e.g. ``events="defined 39", profiles="gauss"`` exactly
like the paper's figure captions.
"""

from __future__ import annotations

import random
from typing import Callable, Mapping

from repro.core.domains import DiscreteDomain, Domain, IntegerDomain
from repro.core.errors import DistributionError
from repro.distributions.base import Distribution
from repro.distributions.continuous import (
    PiecewiseConstantDistribution,
    falling_continuous,
    gaussian_continuous,
    peaked_continuous,
    relocated_gaussian_continuous,
    rising_continuous,
    uniform_continuous,
)
from repro.distributions.discrete import (
    DiscreteDistribution,
    falling_discrete,
    gaussian_discrete,
    peaked_discrete,
    relocated_gaussian_discrete,
    rising_discrete,
    uniform_discrete,
)

__all__ = [
    "defined_distribution",
    "make_distribution",
    "available_named_distributions",
    "DistributionFactory",
]

#: A factory takes the attribute domain and returns a distribution over it.
DistributionFactory = Callable[[Domain], Distribution]


def _is_finite_domain(domain: Domain) -> bool:
    return isinstance(domain, (DiscreteDomain, IntegerDomain))


def _defined_shape(n: int, resolution: int) -> list[float]:
    """Return the relative weights of the ``defined n`` distribution.

    The shape is a uniform background plus 1-3 rectangular/triangular peaks.
    All parameters derive from ``n`` via a dedicated ``random.Random(n)`` so
    the family is deterministic and documented.
    """
    if n < 1:
        raise DistributionError("defined-distribution index must be >= 1")
    rng = random.Random(10_000 + n)
    background = rng.uniform(0.02, 0.3)
    weights = [background] * resolution
    peak_count = 1 + (n % 3)
    for _ in range(peak_count):
        centre = rng.uniform(0.05, 0.95)
        width = rng.uniform(0.02, 0.35)
        height = rng.uniform(1.0, 12.0)
        triangular = rng.random() < 0.5
        for i in range(resolution):
            position = (i + 0.5) / resolution
            distance = abs(position - centre)
            if distance <= width / 2:
                if triangular:
                    weights[i] += height * (1.0 - 2.0 * distance / width)
                else:
                    weights[i] += height
    return weights


def defined_distribution(n: int, domain: Domain) -> Distribution:
    """Return the synthetic ``defined n`` distribution over ``domain``."""
    if _is_finite_domain(domain):
        if isinstance(domain, DiscreteDomain):
            values = list(domain.values())
        else:
            values = list(domain.values())
        shape = _defined_shape(n, len(values))
        return DiscreteDistribution(domain, dict(zip(values, shape)))
    shape = _defined_shape(n, 200)
    return PiecewiseConstantDistribution(domain, shape)


def _named_factories() -> Mapping[str, DistributionFactory]:
    """Return the registry of named distribution factories."""

    def equal(domain: Domain) -> Distribution:
        return uniform_discrete(domain) if _is_finite_domain(domain) else uniform_continuous(domain)

    def gauss(domain: Domain) -> Distribution:
        return (
            gaussian_discrete(domain)
            if _is_finite_domain(domain)
            else gaussian_continuous(domain)
        )

    def relocated_gauss_low(domain: Domain) -> Distribution:
        return (
            relocated_gaussian_discrete(domain, location="low")
            if _is_finite_domain(domain)
            else relocated_gaussian_continuous(domain, location="low")
        )

    def relocated_gauss_high(domain: Domain) -> Distribution:
        return (
            relocated_gaussian_discrete(domain, location="high")
            if _is_finite_domain(domain)
            else relocated_gaussian_continuous(domain, location="high")
        )

    def falling(domain: Domain) -> Distribution:
        return falling_discrete(domain) if _is_finite_domain(domain) else falling_continuous(domain)

    def rising(domain: Domain) -> Distribution:
        return rising_discrete(domain) if _is_finite_domain(domain) else rising_continuous(domain)

    def peak(mass: float, location: str) -> DistributionFactory:
        def factory(domain: Domain) -> Distribution:
            if _is_finite_domain(domain):
                return peaked_discrete(
                    domain, peak_fraction=0.1, peak_mass=mass, location=location
                )
            return peaked_continuous(
                domain, peak_fraction=0.1, peak_mass=mass, location=location
            )

        return factory

    factories: dict[str, DistributionFactory] = {
        "equal": equal,
        "uniform": equal,
        "gauss": gauss,
        "gaussian": gauss,
        "relocated gauss low": relocated_gauss_low,
        "relocated gauss high": relocated_gauss_high,
        "relocated gauss": relocated_gauss_low,
        "falling": falling,
        "rising": rising,
        "90% high": peak(0.90, "high"),
        "90% low": peak(0.90, "low"),
        "95% high": peak(0.95, "high"),
        "95% low": peak(0.95, "low"),
        "95% center": peak(0.95, "center"),
    }
    return factories


_FACTORIES = _named_factories()


def available_named_distributions() -> list[str]:
    """Return the non-parameterised distribution names understood by
    :func:`make_distribution` (the ``defined N`` family is additional)."""
    return sorted(_FACTORIES)


def make_distribution(name: str, domain: Domain) -> Distribution:
    """Create a distribution over ``domain`` from its figure-caption name.

    Supported names are the entries of
    :func:`available_named_distributions` plus ``"defined N"``/``"dN"`` for
    the Fig. 3 family (e.g. ``"defined 39"`` or ``"d39"``).
    """
    key = name.strip().lower()
    if key in _FACTORIES:
        return _FACTORIES[key](domain)
    token = key.replace("defined", "").strip()
    if key.startswith("defined") and token.isdigit():
        return defined_distribution(int(token), domain)
    if key.startswith("d") and key[1:].isdigit():
        return defined_distribution(int(key[1:]), domain)
    raise DistributionError(
        f"unknown distribution name {name!r}; known names: "
        f"{available_named_distributions()} plus 'defined N' / 'dN'"
    )
