"""Continuous probability distributions.

The paper's model allows the per-attribute event distribution to be given as
a continuous density function which is then integrated over each defined
sub-range (Section 3).  This module provides the continuous families used in
the evaluation — uniform, (truncated) Gauss, relocated Gauss, linear ramps
and peaked mixtures — implemented as piecewise-constant or analytically
integrable densities over a :class:`~repro.core.domains.ContinuousDomain`.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Sequence

from repro.core.domains import ContinuousDomain, Domain
from repro.core.errors import DistributionError
from repro.core.intervals import Interval
from repro.distributions.base import Distribution

__all__ = [
    "PiecewiseConstantDistribution",
    "uniform_continuous",
    "gaussian_continuous",
    "relocated_gaussian_continuous",
    "falling_continuous",
    "rising_continuous",
    "peaked_continuous",
]


class PiecewiseConstantDistribution(Distribution):
    """A histogram density over a continuous domain.

    The domain is divided into ``len(weights)`` equal-width bins; bin ``i``
    carries relative mass ``weights[i]`` spread uniformly over the bin.  All
    continuous families below reduce to this representation, which makes
    integration over arbitrary sub-ranges exact and cheap.
    """

    def __init__(self, domain: Domain, weights: Sequence[float]) -> None:
        if not isinstance(domain, ContinuousDomain):
            raise DistributionError(
                "PiecewiseConstantDistribution requires a ContinuousDomain"
            )
        weights = [float(w) for w in weights]
        if not weights:
            raise DistributionError("at least one bin weight is required")
        if any(w < 0 for w in weights):
            raise DistributionError("bin weights must be non-negative")
        total = sum(weights)
        if total <= 0:
            raise DistributionError("total probability mass must be positive")
        self.domain = domain
        self._masses = [w / total for w in weights]
        self._bin_count = len(weights)
        self._bin_width = domain.size / self._bin_count
        cumulative: list[float] = []
        running = 0.0
        for mass in self._masses:
            running += mass
            cumulative.append(running)
        self._cumulative = cumulative

    # -- helpers ---------------------------------------------------------------
    def bin_edges(self) -> list[float]:
        """Return the ``bin_count + 1`` bin boundary positions."""
        low = self.domain.full_interval().low
        return [low + i * self._bin_width for i in range(self._bin_count + 1)]

    def bin_masses(self) -> list[float]:
        """Return the normalised probability mass of each bin."""
        return list(self._masses)

    def density_at(self, value: float) -> float:
        """Return the probability density at ``value`` (0 outside the domain)."""
        full = self.domain.full_interval()
        if not full.contains(value):
            return 0.0
        index = min(int((value - full.low) / self._bin_width), self._bin_count - 1)
        return self._masses[index] / self._bin_width

    # -- Distribution interface -------------------------------------------------
    def probability_of_value(self, value: object) -> float:
        # A continuous distribution assigns zero mass to individual points.
        return 0.0

    def probability_of_interval(self, interval: Interval) -> float:
        full = self.domain.full_interval()
        clipped = full.intersect(interval)
        if clipped is None:
            return 0.0
        low = full.low
        total = 0.0
        for index, mass in enumerate(self._masses):
            bin_low = low + index * self._bin_width
            bin_high = bin_low + self._bin_width
            overlap_low = max(bin_low, clipped.low)
            overlap_high = min(bin_high, clipped.high)
            if overlap_high > overlap_low:
                total += mass * (overlap_high - overlap_low) / self._bin_width
        return total

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        index = bisect.bisect_left(self._cumulative, u)
        index = min(index, self._bin_count - 1)
        previous = self._cumulative[index - 1] if index > 0 else 0.0
        mass = self._masses[index]
        within = 0.5 if mass <= 0 else (u - previous) / mass
        low = self.domain.full_interval().low
        return low + (index + within) * self._bin_width

    def mean(self) -> float:
        low = self.domain.full_interval().low
        return sum(
            mass * (low + (index + 0.5) * self._bin_width)
            for index, mass in enumerate(self._masses)
        )

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"PiecewiseConstantDistribution(bins={self._bin_count}, "
            f"domain={self.domain!r})"
        )


_DEFAULT_BINS = 200


def uniform_continuous(
    domain: Domain, *, bins: int = _DEFAULT_BINS
) -> PiecewiseConstantDistribution:
    """Return the uniform ("equally distributed") density over ``domain``."""
    return PiecewiseConstantDistribution(domain, [1.0] * bins)


def gaussian_continuous(
    domain: Domain,
    *,
    mean_fraction: float = 0.5,
    stddev_fraction: float = 0.15,
    bins: int = _DEFAULT_BINS,
) -> PiecewiseConstantDistribution:
    """Return a truncated Gauss density positioned by domain fractions."""
    if stddev_fraction <= 0:
        raise DistributionError("stddev_fraction must be positive")
    full = domain.full_interval()
    mean = full.low + mean_fraction * (full.high - full.low)
    stddev = stddev_fraction * (full.high - full.low)
    width = (full.high - full.low) / bins
    weights = []
    for i in range(bins):
        centre = full.low + (i + 0.5) * width
        weights.append(math.exp(-0.5 * ((centre - mean) / stddev) ** 2))
    return PiecewiseConstantDistribution(domain, weights)


def relocated_gaussian_continuous(
    domain: Domain,
    *,
    location: str = "low",
    stddev_fraction: float = 0.15,
    bins: int = _DEFAULT_BINS,
) -> PiecewiseConstantDistribution:
    """Return the paper's relocated Gauss (bell shifted to one domain end)."""
    if location not in {"low", "high"}:
        raise DistributionError("location must be 'low' or 'high'")
    mean_fraction = 0.08 if location == "low" else 0.92
    return gaussian_continuous(
        domain, mean_fraction=mean_fraction, stddev_fraction=stddev_fraction, bins=bins
    )


def falling_continuous(
    domain: Domain, *, bins: int = _DEFAULT_BINS
) -> PiecewiseConstantDistribution:
    """Return a linearly decreasing density over the domain."""
    return PiecewiseConstantDistribution(domain, [float(bins - i) for i in range(bins)])


def rising_continuous(
    domain: Domain, *, bins: int = _DEFAULT_BINS
) -> PiecewiseConstantDistribution:
    """Return a linearly increasing density over the domain."""
    return PiecewiseConstantDistribution(domain, [float(i + 1) for i in range(bins)])


def peaked_continuous(
    domain: Domain,
    *,
    peak_fraction: float,
    peak_mass: float,
    location: str = "high",
    bins: int = _DEFAULT_BINS,
) -> PiecewiseConstantDistribution:
    """Return a density with ``peak_mass`` concentrated on a narrow range.

    Mirrors :func:`repro.distributions.discrete.peaked_discrete` for
    continuous domains (catastrophe-warning style distributions).
    """
    if not 0 < peak_fraction <= 1:
        raise DistributionError("peak_fraction must be in (0, 1]")
    if not 0 <= peak_mass <= 1:
        raise DistributionError("peak_mass must be in [0, 1]")
    if location not in {"low", "high", "center"}:
        raise DistributionError("location must be one of 'low', 'high', 'center'")
    peak_bins = max(1, math.ceil(peak_fraction * bins))
    if location == "low":
        peak_indices = set(range(peak_bins))
    elif location == "high":
        peak_indices = set(range(bins - peak_bins, bins))
    else:
        start = max(0, (bins - peak_bins) // 2)
        peak_indices = set(range(start, start + peak_bins))
    rest_bins = bins - len(peak_indices)
    weights = []
    for i in range(bins):
        if i in peak_indices:
            weights.append(peak_mass / len(peak_indices))
        elif rest_bins:
            weights.append((1.0 - peak_mass) / rest_bins)
        else:
            weights.append(0.0)
    return PiecewiseConstantDistribution(domain, weights)
