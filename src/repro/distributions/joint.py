"""Joint distributions over all schema attributes.

The paper notes that "the distributions for the values of each of the n
attributes of an event are not independent, the notion of conditional
distributions is required", but its experiments "assume independent
attributes for ease of computation" and "use the overall distribution of
events for each attribute, not conditional distributions" (Section 4.3).

Both options are available here:

* :class:`IndependentJointDistribution` — one marginal per attribute,
  conditionals equal the marginals (what the paper's tests use);
* :class:`ConditionalJointDistribution` — explicit conditional distributions
  per attribute given the values of earlier attributes, for studying the A3
  measure and correlated workloads.
"""

from __future__ import annotations

import random
from typing import Callable, Mapping

from repro.core.errors import DistributionError
from repro.core.events import Event
from repro.core.schema import Schema
from repro.distributions.base import Distribution

__all__ = ["JointDistribution", "IndependentJointDistribution", "ConditionalJointDistribution"]


class JointDistribution:
    """Joint distribution of event attribute values over a schema."""

    schema: Schema

    def marginal(self, attribute: str) -> Distribution:
        """Return the marginal distribution of one attribute."""
        raise NotImplementedError

    def conditional(self, attribute: str, given: Mapping[str, object]) -> Distribution:
        """Return the distribution of ``attribute`` given earlier values."""
        raise NotImplementedError

    def sample_event(self, rng: random.Random, *, timestamp: float = 0.0) -> Event:
        """Draw a complete event, sampling attributes in schema order."""
        values: dict[str, object] = {}
        for attribute in self.schema.names:
            distribution = self.conditional(attribute, values)
            values[attribute] = distribution.sample(rng)
        return Event(values, timestamp=timestamp)

    def sample_events(
        self, count: int, rng: random.Random, *, start_time: float = 0.0, interval: float = 1.0
    ) -> list[Event]:
        """Draw ``count`` events with evenly spaced timestamps."""
        return [
            self.sample_event(rng, timestamp=start_time + i * interval)
            for i in range(count)
        ]


class IndependentJointDistribution(JointDistribution):
    """Product distribution: every attribute is drawn independently."""

    def __init__(self, schema: Schema, marginals: Mapping[str, Distribution]) -> None:
        missing = [name for name in schema.names if name not in marginals]
        if missing:
            raise DistributionError(f"missing marginal distributions for {missing}")
        unknown = [name for name in marginals if name not in schema]
        if unknown:
            raise DistributionError(f"marginals given for unknown attributes {unknown}")
        self.schema = schema
        self._marginals = dict(marginals)

    def marginal(self, attribute: str) -> Distribution:
        try:
            return self._marginals[attribute]
        except KeyError as exc:
            raise DistributionError(f"no marginal for attribute {attribute!r}") from exc

    def conditional(self, attribute: str, given: Mapping[str, object]) -> Distribution:
        return self.marginal(attribute)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"IndependentJointDistribution({', '.join(self.schema.names)})"


class ConditionalJointDistribution(JointDistribution):
    """Joint distribution with explicit conditional structure.

    ``conditionals[name]`` is a callable receiving the already-sampled
    values of the preceding attributes (in schema order) and returning the
    conditional distribution of attribute ``name``.  Attributes without an
    entry fall back to their marginal in ``marginals``.
    """

    def __init__(
        self,
        schema: Schema,
        marginals: Mapping[str, Distribution],
        conditionals: Mapping[str, Callable[[Mapping[str, object]], Distribution]] | None = None,
    ) -> None:
        self._base = IndependentJointDistribution(schema, marginals)
        self.schema = schema
        self._conditionals = dict(conditionals or {})
        unknown = [name for name in self._conditionals if name not in schema]
        if unknown:
            raise DistributionError(f"conditionals given for unknown attributes {unknown}")

    def marginal(self, attribute: str) -> Distribution:
        return self._base.marginal(attribute)

    def conditional(self, attribute: str, given: Mapping[str, object]) -> Distribution:
        maker = self._conditionals.get(attribute)
        if maker is None:
            return self._base.marginal(attribute)
        return maker(given)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        conditioned = sorted(self._conditionals)
        return (
            f"ConditionalJointDistribution({', '.join(self.schema.names)}, "
            f"conditioned={conditioned})"
        )
