"""Discrete probability distributions.

The evaluation prototype of the paper supports equality tests over
enumerable attribute domains and simulates event/profile distributions with
per-value counters (Section 4.2 "Statistics").  The classes here provide the
corresponding per-value probability distributions, including the uniform
("equally distributed") baseline, peaked distributions ("a small range of
values is requested by many users"), falling/rising ramps and discretised
Gaussians, all of which appear in the test scenarios of Section 4.3.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Mapping, Sequence

from repro.core.domains import DiscreteDomain, Domain, IntegerDomain
from repro.core.errors import DistributionError
from repro.core.intervals import Interval
from repro.distributions.base import Distribution

__all__ = [
    "DiscreteDistribution",
    "uniform_discrete",
    "peaked_discrete",
    "falling_discrete",
    "rising_discrete",
    "gaussian_discrete",
    "relocated_gaussian_discrete",
]


class DiscreteDistribution(Distribution):
    """A probability mass function over a finite attribute domain."""

    def __init__(self, domain: Domain, weights: Mapping[object, float]) -> None:
        if not isinstance(domain, (DiscreteDomain, IntegerDomain)):
            raise DistributionError(
                "DiscreteDistribution requires a DiscreteDomain or IntegerDomain"
            )
        if not weights:
            raise DistributionError("at least one value must carry probability mass")
        total = float(sum(weights.values()))
        if total <= 0:
            raise DistributionError("total probability mass must be positive")
        cleaned: dict[object, float] = {}
        for value, weight in weights.items():
            if weight < 0:
                raise DistributionError(f"negative weight {weight} for value {value!r}")
            if value not in domain:
                raise DistributionError(f"value {value!r} is outside the domain")
            if weight > 0:
                cleaned[value] = float(weight) / total
        self.domain = domain
        self._pmf = cleaned
        # Pre-compute the sampling tables in the domain's natural order so
        # sampling is deterministic given a seeded random.Random.
        self._values = self._ordered_values()
        cumulative: list[float] = []
        running = 0.0
        for value in self._values:
            running += self._pmf.get(value, 0.0)
            cumulative.append(running)
        self._cumulative = cumulative

    # -- helpers ---------------------------------------------------------------
    def _ordered_values(self) -> list:
        if isinstance(self.domain, DiscreteDomain):
            return [v for v in self.domain.values() if v in self._pmf]
        return sorted(self._pmf)

    def support(self) -> list:
        """Return the values carrying positive probability, in natural order."""
        return list(self._values)

    def pmf(self) -> Mapping[object, float]:
        """Return the full probability mass function as a mapping."""
        return dict(self._pmf)

    # -- Distribution interface -------------------------------------------------
    def probability_of_value(self, value: object) -> float:
        return self._pmf.get(value, 0.0)

    def probability_of_interval(self, interval: Interval) -> float:
        if isinstance(self.domain, DiscreteDomain):
            total = 0.0
            for index, value in enumerate(self.domain.values()):
                if interval.contains(index):
                    total += self._pmf.get(value, 0.0)
            return total
        total = 0.0
        for value, probability in self._pmf.items():
            if interval.contains(float(value)):  # type: ignore[arg-type]
                total += probability
        return total

    def sample(self, rng: random.Random) -> object:
        u = rng.random()
        index = bisect.bisect_left(self._cumulative, u)
        index = min(index, len(self._values) - 1)
        return self._values[index]

    def mean(self) -> float:
        if isinstance(self.domain, DiscreteDomain):
            raise DistributionError("mean is undefined for unordered discrete domains")
        return sum(float(v) * p for v, p in self._pmf.items())

    def reweighted(self, overrides: Mapping[object, float]) -> "DiscreteDistribution":
        """Return a copy with some weights replaced (then renormalised).

        This mirrors the paper's statistics objects whose counters are
        "manipulated in order to simulate a distribution".
        """
        weights = dict(self._pmf)
        weights.update(overrides)
        return DiscreteDistribution(self.domain, weights)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"DiscreteDistribution(support={len(self._values)} values)"


def _domain_values(domain: Domain) -> Sequence:
    if isinstance(domain, DiscreteDomain):
        return list(domain.values())
    if isinstance(domain, IntegerDomain):
        return list(domain.values())
    raise DistributionError("a finite domain is required")


def uniform_discrete(domain: Domain) -> DiscreteDistribution:
    """Return the "equally distributed" baseline over a finite domain."""
    values = _domain_values(domain)
    weight = 1.0 / len(values)
    return DiscreteDistribution(domain, {v: weight for v in values})


def peaked_discrete(
    domain: Domain,
    *,
    peak_fraction: float,
    peak_mass: float,
    location: str = "high",
) -> DiscreteDistribution:
    """Return a distribution with a peak over a small range of the domain.

    ``peak_fraction`` of the values (rounded up, at least one) carry
    ``peak_mass`` of the probability, the rest is spread uniformly.  The peak
    sits at the low end, the high end or the centre of the natural order
    (``location`` in ``{"low", "high", "center"}``).  This models the
    "95 % high" / "95 % low" profile distributions of Fig. 5 and the
    catastrophe-warning scenario where "users are mainly interested in a
    small range of values".
    """
    if not 0 < peak_fraction <= 1:
        raise DistributionError("peak_fraction must be in (0, 1]")
    if not 0 <= peak_mass <= 1:
        raise DistributionError("peak_mass must be in [0, 1]")
    if location not in {"low", "high", "center"}:
        raise DistributionError("location must be one of 'low', 'high', 'center'")
    values = _domain_values(domain)
    count = len(values)
    peak_count = max(1, math.ceil(peak_fraction * count))
    if location == "low":
        peak_values = values[:peak_count]
    elif location == "high":
        peak_values = values[count - peak_count :]
    else:
        start = max(0, (count - peak_count) // 2)
        peak_values = values[start : start + peak_count]
    rest_values = [v for v in values if v not in set(peak_values)]
    weights: dict[object, float] = {}
    for v in peak_values:
        weights[v] = peak_mass / len(peak_values)
    if rest_values:
        rest_mass = 1.0 - peak_mass
        for v in rest_values:
            weights[v] = rest_mass / len(rest_values)
    return DiscreteDistribution(domain, weights)


def falling_discrete(domain: Domain) -> DiscreteDistribution:
    """Return a linearly decreasing distribution over the natural order."""
    values = _domain_values(domain)
    count = len(values)
    weights = {v: float(count - i) for i, v in enumerate(values)}
    return DiscreteDistribution(domain, weights)


def rising_discrete(domain: Domain) -> DiscreteDistribution:
    """Return a linearly increasing distribution over the natural order."""
    values = _domain_values(domain)
    weights = {v: float(i + 1) for i, v in enumerate(values)}
    return DiscreteDistribution(domain, weights)


def gaussian_discrete(
    domain: Domain, *, mean_fraction: float = 0.5, stddev_fraction: float = 0.15
) -> DiscreteDistribution:
    """Return a discretised (truncated) Gauss distribution.

    ``mean_fraction`` and ``stddev_fraction`` position the bell relative to
    the natural order of the domain (0 = first value, 1 = last value).  The
    paper uses the plain Gauss distribution and a *relocated* Gauss whose
    centre is shifted towards the low or high values (Section 4.3).
    """
    if stddev_fraction <= 0:
        raise DistributionError("stddev_fraction must be positive")
    values = _domain_values(domain)
    count = len(values)
    mean = mean_fraction * (count - 1)
    stddev = max(stddev_fraction * count, 1e-9)
    weights = {
        v: math.exp(-0.5 * ((i - mean) / stddev) ** 2) for i, v in enumerate(values)
    }
    return DiscreteDistribution(domain, weights)


def relocated_gaussian_discrete(
    domain: Domain, *, location: str = "low", stddev_fraction: float = 0.15
) -> DiscreteDistribution:
    """Return the paper's "relocated Gauss": the bell shifted to one end."""
    if location not in {"low", "high"}:
        raise DistributionError("location must be 'low' or 'high'")
    mean_fraction = 0.08 if location == "low" else 0.92
    return gaussian_discrete(
        domain, mean_fraction=mean_fraction, stddev_fraction=stddev_fraction
    )
