"""Value-selectivity measures (Section 4.1, Measures V1-V3).

A value-selectivity measure ``s_val : W -> R`` assigns a score to every
defined sub-range of an attribute; the probe order of the tree edges follows
*descending* selectivity (``s_val(x_i) >= s_val(x_j)  =>  o_v(i) > o_v(j)``
in the paper's notation, i.e. higher selectivity is probed earlier).  Values
with equal selectivity keep their natural relative order, and "the
selectivity of values not contained in the profile tree is defined as zero".

The three measures proposed by the paper:

* **V1** — event probability ``P_e(x_i)``: frequent event values first;
* **V2** — profile probability ``P_p(x_i)``: values many profiles refer to
  first (user-centric);
* **V3** — combined ``P_e(x_i) * P_p(x_i)``.
"""

from __future__ import annotations

import enum

from repro.core.errors import SelectivityError
from repro.core.subranges import AttributePartition
from repro.distributions.base import SubrangeDistribution
from repro.matching.tree.config import ValueOrder

__all__ = ["ValueMeasure", "value_selectivities", "value_order_from_measure"]


class ValueMeasure(str, enum.Enum):
    """Identifier of a value-ordering strategy."""

    #: Natural ascending order of the sub-ranges (no reordering).
    NATURAL = "natural"
    #: Measure V1: descending event probability.
    V1_EVENT = "V1"
    #: Measure V2: descending profile probability.
    V2_PROFILE = "V2"
    #: Measure V3: descending combined event*profile probability.
    V3_COMBINED = "V3"

    @classmethod
    def parse(cls, name: str) -> "ValueMeasure":
        """Parse a measure from a string such as ``"V1"`` or ``"natural"``."""
        key = name.strip().lower()
        aliases = {
            "natural": cls.NATURAL,
            "v1": cls.V1_EVENT,
            "event": cls.V1_EVENT,
            "event order": cls.V1_EVENT,
            "v2": cls.V2_PROFILE,
            "profile": cls.V2_PROFILE,
            "profile order": cls.V2_PROFILE,
            "v3": cls.V3_COMBINED,
            "combined": cls.V3_COMBINED,
            "event * profile": cls.V3_COMBINED,
        }
        try:
            return aliases[key]
        except KeyError as exc:
            raise SelectivityError(f"unknown value measure {name!r}") from exc


def value_selectivities(
    measure: ValueMeasure,
    partition: AttributePartition,
    event_distribution: SubrangeDistribution | None = None,
    profile_distribution: SubrangeDistribution | None = None,
) -> list[float]:
    """Return the selectivity score of every sub-range (natural index order)."""
    count = len(partition.subranges)
    if measure is ValueMeasure.NATURAL:
        # Scores that reproduce the natural order when sorted descending with
        # stable natural tie-breaking: all equal.
        return [0.0] * count
    if measure is ValueMeasure.V1_EVENT:
        if event_distribution is None:
            raise SelectivityError("Measure V1 needs the event distribution P_e")
        return [event_distribution.probability_by_index(i) for i in range(count)]
    if measure is ValueMeasure.V2_PROFILE:
        if profile_distribution is None:
            raise SelectivityError("Measure V2 needs the profile distribution P_p")
        return [profile_distribution.probability_by_index(i) for i in range(count)]
    if measure is ValueMeasure.V3_COMBINED:
        if event_distribution is None or profile_distribution is None:
            raise SelectivityError("Measure V3 needs both P_e and P_p")
        return [
            event_distribution.probability_by_index(i)
            * profile_distribution.probability_by_index(i)
            for i in range(count)
        ]
    raise SelectivityError(f"unhandled value measure {measure!r}")  # pragma: no cover


def value_order_from_measure(
    measure: ValueMeasure,
    partition: AttributePartition,
    event_distribution: SubrangeDistribution | None = None,
    profile_distribution: SubrangeDistribution | None = None,
    *,
    descending: bool = True,
) -> ValueOrder:
    """Return the probe order implied by a value-selectivity measure.

    Sub-ranges are ranked by descending selectivity (the paper's reordering
    rule); ties keep their natural ascending order.  ``descending=False``
    yields the reversed ("worst-case") order used in the attribute-reordering
    experiments for comparison.
    """
    scores = value_selectivities(measure, partition, event_distribution, profile_distribution)
    indices = list(range(len(scores)))
    if descending:
        ranked = sorted(indices, key=lambda i: (-scores[i], i))
    else:
        ranked = sorted(indices, key=lambda i: (scores[i], i))
    if measure is ValueMeasure.NATURAL:
        ranked = indices if descending else list(reversed(indices))
    return ValueOrder.from_ranking(partition.attribute.name, ranked)
