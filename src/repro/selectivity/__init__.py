"""Selectivity measures and the distribution-aware tree optimizer.

Implements the value-selectivity measures V1-V3 and the attribute-selectivity
measures A1-A3 of Section 4.1 plus the :class:`TreeOptimizer` that combines
them with event/profile distributions into tree configurations.
"""

from repro.selectivity.attribute_measures import (
    AttributeMeasure,
    a3_order,
    attribute_order_from_measure,
    attribute_selectivities,
)
from repro.selectivity.optimizer import TreeOptimizer
from repro.selectivity.value_measures import (
    ValueMeasure,
    value_order_from_measure,
    value_selectivities,
)

__all__ = [
    "AttributeMeasure",
    "TreeOptimizer",
    "ValueMeasure",
    "a3_order",
    "attribute_order_from_measure",
    "attribute_selectivities",
    "value_order_from_measure",
    "value_selectivities",
]
