"""Attribute-selectivity measures (Section 4.1, Measures A1-A3).

An attribute-selectivity measure ``s_att : A -> R`` scores every attribute;
the tree levels are reordered by *descending* selectivity so that attributes
likely to reject non-matching events sit near the root ("the events relating
to the zero-subdomain have to be dismissed as early as possible").

* **A1** — ``s_att(a_j) = d_0(a_j) / d_j``: the relative size of the
  zero-subdomain, independent of the event distribution;
* **A2** — ``s_att(a_j) = d_0(a_j) * P_e(D_0(a_j)) / d_j``: additionally
  weights the zero-subdomain by the probability that an event value falls
  into it;
* **A3** — the conditional-distribution variant: the attribute order that
  maximises early rejection when the tree shape (conditional probabilities)
  is taken into account.  Exhaustive over the ``n!`` permutations, as the
  paper notes (``O(n! * (2p - 1))``); our implementation scores each
  permutation by the expected number of tree levels visited before a
  non-matching event is rejected (lower is better) or, when a cost function
  is supplied, by the full analytical expected operation count.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Mapping, Sequence

from repro.core.errors import SelectivityError
from repro.core.subranges import AttributePartition
from repro.distributions.base import SubrangeDistribution

__all__ = [
    "AttributeMeasure",
    "attribute_selectivities",
    "attribute_order_from_measure",
    "a3_order",
]


class AttributeMeasure(str, enum.Enum):
    """Identifier of an attribute-ordering strategy."""

    #: Natural schema order (no reordering).
    NATURAL = "natural"
    #: Measure A1: relative zero-subdomain size.
    A1_ZERO_FRACTION = "A1"
    #: Measure A2: zero-subdomain size weighted by event probability.
    A2_ZERO_PROBABILITY = "A2"
    #: Measure A3: conditional / exhaustive ordering.
    A3_CONDITIONAL = "A3"

    @classmethod
    def parse(cls, name: str) -> "AttributeMeasure":
        """Parse a measure from a string such as ``"A2"`` or ``"natural"``."""
        key = name.strip().lower()
        aliases = {
            "natural": cls.NATURAL,
            "a1": cls.A1_ZERO_FRACTION,
            "a2": cls.A2_ZERO_PROBABILITY,
            "a3": cls.A3_CONDITIONAL,
        }
        try:
            return aliases[key]
        except KeyError as exc:
            raise SelectivityError(f"unknown attribute measure {name!r}") from exc


def attribute_selectivities(
    measure: AttributeMeasure,
    partitions: Mapping[str, AttributePartition],
    event_distributions: Mapping[str, SubrangeDistribution] | None = None,
) -> dict[str, float]:
    """Return ``s_att`` for every attribute under Measure A1 or A2."""
    if measure is AttributeMeasure.NATURAL:
        return {name: 0.0 for name in partitions}
    if measure is AttributeMeasure.A1_ZERO_FRACTION:
        return {name: partition.zero_fraction for name, partition in partitions.items()}
    if measure is AttributeMeasure.A2_ZERO_PROBABILITY:
        if event_distributions is None:
            raise SelectivityError("Measure A2 needs the event distributions P_e")
        scores: dict[str, float] = {}
        for name, partition in partitions.items():
            try:
                distribution = event_distributions[name]
            except KeyError as exc:
                raise SelectivityError(f"no event distribution for attribute {name!r}") from exc
            scores[name] = partition.zero_fraction * distribution.zero_probability
        return scores
    raise SelectivityError(
        "Measure A3 has no per-attribute score; use a3_order() or "
        "attribute_order_from_measure()"
    )


def attribute_order_from_measure(
    measure: AttributeMeasure,
    partitions: Mapping[str, AttributePartition],
    event_distributions: Mapping[str, SubrangeDistribution] | None = None,
    *,
    natural_order: Sequence[str],
    descending: bool = True,
    cost_function: Callable[[Sequence[str]], float] | None = None,
) -> tuple[str, ...]:
    """Return the attribute (level) order implied by a measure.

    ``descending=True`` is the paper's reordering (most selective attribute
    at the root); ``descending=False`` gives the ascending order the paper
    uses as the worst-case comparison in the Fig. 6 experiments.  The
    ``natural_order`` breaks ties and is returned unchanged for
    :attr:`AttributeMeasure.NATURAL`.
    """
    names = list(natural_order)
    unknown = [n for n in names if n not in partitions]
    if unknown:
        raise SelectivityError(f"natural order references unknown attributes {unknown}")
    if measure is AttributeMeasure.NATURAL:
        return tuple(names) if descending else tuple(reversed(names))
    if measure is AttributeMeasure.A3_CONDITIONAL:
        order = a3_order(
            partitions,
            event_distributions,
            natural_order=names,
            cost_function=cost_function,
        )
        return order if descending else tuple(reversed(order))
    scores = attribute_selectivities(measure, partitions, event_distributions)
    position = {name: i for i, name in enumerate(names)}
    if descending:
        ranked = sorted(names, key=lambda n: (-scores[n], position[n]))
    else:
        ranked = sorted(names, key=lambda n: (scores[n], position[n]))
    return tuple(ranked)


def a3_order(
    partitions: Mapping[str, AttributePartition],
    event_distributions: Mapping[str, SubrangeDistribution] | None = None,
    *,
    natural_order: Sequence[str],
    cost_function: Callable[[Sequence[str]], float] | None = None,
) -> tuple[str, ...]:
    """Return the Measure-A3 attribute order.

    When ``cost_function`` is given (typically the analytical expected
    operation count of :mod:`repro.analysis.cost_model` for a candidate
    order), the permutation minimising it is returned.  Otherwise the
    permutations are scored by the expected number of levels a non-matching
    event traverses before rejection, assuming independent attributes:
    ``sum_k prod_{j<k} (1 - P_e(D_0(a_j)))`` — smaller means earlier
    rejection.  Ties fall back to the natural order.
    """
    names = list(natural_order)
    if len(names) > 8:
        raise SelectivityError(
            "Measure A3 is exhaustive over n! permutations; refusing n > 8 "
            f"(got n = {len(names)})"
        )

    def default_score(order: Sequence[str]) -> float:
        if event_distributions is None:
            raise SelectivityError("Measure A3 needs event distributions or a cost function")
        survival = 1.0
        expected_levels = 0.0
        for name in order:
            expected_levels += survival
            try:
                distribution = event_distributions[name]
            except KeyError as exc:
                raise SelectivityError(f"no event distribution for attribute {name!r}") from exc
            partition = partitions[name]
            # An event is only rejected at this level when its value lies
            # outside every defined sub-range *and* no profile ignores the
            # attribute (otherwise the * edge keeps it alive).
            rejection_probability = (
                0.0 if partition.dont_care_profile_ids else distribution.zero_probability
            )
            survival *= 1.0 - rejection_probability
        return expected_levels

    score = cost_function if cost_function is not None else default_score
    best_order: tuple[str, ...] | None = None
    best_score = float("inf")
    for permutation in itertools.permutations(names):
        value = float(score(permutation))
        if value < best_score - 1e-12:
            best_score = value
            best_order = permutation
    if best_order is None:  # pragma: no cover - names is never empty
        raise SelectivityError("no attribute permutation could be scored")
    return best_order
