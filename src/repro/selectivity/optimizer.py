"""The tree optimizer: turns measures + distributions into configurations.

This is the "adaptive filter component that optimizes the profile tree for
certain applications based on the data distributions" (Section 1): given the
profile set, the (known or estimated) per-attribute event distributions and
a choice of value/attribute measures, it produces the
:class:`~repro.matching.tree.config.TreeConfiguration` that the matcher is
rebuilt with.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.core.errors import SelectivityError
from repro.core.profiles import ProfileSet
from repro.core.subranges import AttributePartition, build_partitions
from repro.distributions.base import (
    Distribution,
    SubrangeDistribution,
    project_onto_partition,
)
from repro.distributions.estimation import estimate_profile_distribution
from repro.matching.tree.config import SearchStrategy, TreeConfiguration, ValueOrder
from repro.selectivity.attribute_measures import (
    AttributeMeasure,
    attribute_order_from_measure,
    attribute_selectivities,
)
from repro.selectivity.value_measures import ValueMeasure, value_order_from_measure

__all__ = ["TreeOptimizer"]


class TreeOptimizer:
    """Derives distribution-aware tree configurations for a profile set."""

    def __init__(
        self,
        profiles: ProfileSet,
        event_distributions: Mapping[str, Distribution],
        *,
        partitions: Mapping[str, AttributePartition] | None = None,
        profile_distributions: Mapping[str, SubrangeDistribution] | None = None,
    ) -> None:
        self._profiles = profiles
        self._schema = profiles.schema
        self._partitions = (
            dict(partitions) if partitions is not None else build_partitions(profiles)
        )
        missing = [name for name in self._schema.names if name not in event_distributions]
        if missing:
            raise SelectivityError(f"missing event distributions for attributes {missing}")
        self._event_distributions = dict(event_distributions)
        self._event_subrange: dict[str, SubrangeDistribution] = {
            name: project_onto_partition(self._event_distributions[name], self._partitions[name])
            for name in self._schema.names
        }
        if profile_distributions is None:
            self._profile_subrange = {
                name: estimate_profile_distribution(profiles, self._partitions[name])
                for name in self._schema.names
            }
        else:
            self._profile_subrange = dict(profile_distributions)

    # -- accessors -------------------------------------------------------------
    @property
    def partitions(self) -> Mapping[str, AttributePartition]:
        return self._partitions

    def event_subrange_distribution(self, attribute: str) -> SubrangeDistribution:
        """Return ``P_e`` projected on the attribute's sub-ranges."""
        return self._event_subrange[attribute]

    def profile_subrange_distribution(self, attribute: str) -> SubrangeDistribution:
        """Return the empirical profile distribution ``P_p`` of an attribute."""
        return self._profile_subrange[attribute]

    def attribute_scores(self, measure: AttributeMeasure) -> dict[str, float]:
        """Return the per-attribute selectivity scores (A1/A2 only)."""
        return attribute_selectivities(measure, self._partitions, self._event_subrange)

    # -- order derivation ---------------------------------------------------------
    def value_order(
        self,
        attribute: str,
        measure: ValueMeasure,
        *,
        descending: bool = True,
    ) -> ValueOrder:
        """Return the probe order of one attribute under a value measure."""
        return value_order_from_measure(
            measure,
            self._partitions[attribute],
            self._event_subrange[attribute],
            self._profile_subrange[attribute],
            descending=descending,
        )

    def attribute_order(
        self,
        measure: AttributeMeasure,
        *,
        descending: bool = True,
        cost_function: Callable[[Sequence[str]], float] | None = None,
    ) -> tuple[str, ...]:
        """Return the tree-level order under an attribute measure."""
        return attribute_order_from_measure(
            measure,
            self._partitions,
            self._event_subrange,
            natural_order=self._schema.names,
            descending=descending,
            cost_function=cost_function,
        )

    def configuration(
        self,
        *,
        value_measure: ValueMeasure = ValueMeasure.NATURAL,
        attribute_measure: AttributeMeasure = AttributeMeasure.NATURAL,
        search: SearchStrategy = SearchStrategy.LINEAR,
        value_descending: bool = True,
        attribute_descending: bool = True,
        cost_function: Callable[[Sequence[str]], float] | None = None,
        label: str | None = None,
    ) -> TreeConfiguration:
        """Return a complete tree configuration for the given measures.

        ``value_descending`` / ``attribute_descending`` select the paper's
        descending-selectivity reordering (default) or the ascending
        worst-case variant used for comparison in the Fig. 6 experiments.
        """
        attribute_order = self.attribute_order(
            attribute_measure,
            descending=attribute_descending,
            cost_function=cost_function,
        )
        value_orders: dict[str, ValueOrder] = {}
        if value_measure is not ValueMeasure.NATURAL or not value_descending:
            for name in attribute_order:
                value_orders[name] = self.value_order(
                    name, value_measure, descending=value_descending
                )
        if label is None:
            direction = "" if attribute_descending else " (ascending)"
            label = f"{value_measure.value} + {attribute_measure.value}{direction} [{search.value}]"
        return TreeConfiguration(
            attribute_order=attribute_order,
            value_orders=value_orders,
            search=search,
            label=label,
        )
