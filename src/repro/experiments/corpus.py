"""Corpus runner: drive declarative scenario profiles through the facade.

One :func:`run_profile` call executes a corpus profile through one
engine family end to end — build the workload, construct a
:class:`~repro.api.FilterService` from the profile's hints, publish the
event stream in the profile's batch shape while applying its churn
schedule — and returns a :class:`CorpusRecord` of deterministic metrics
(ops/event, matches/event; wall-clock only on explicit timing runs).

Determinism is the whole point: the workload seeds, the pinned
``shard_count`` and the pinned adaptation knobs make ``ops_per_event``
and ``matches_per_event`` bit-stable across machines, so the corpus can
gate engine-family wins in CI and the appended ``BENCH_history.jsonl``
records are comparable across commits.  The churn schedule is part of
that contract: replacement subscriptions come from a generator seeded
independently of the event stream, and the schedule depends only on the
profile — never on the family under test — so ``matches_per_event`` is
identical across families even mid-churn.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Iterator

from repro.workloads.generators import build_workload, generate_profiles
from repro.workloads.profiles import ScenarioProfile
from repro.distributions.library import make_distribution

__all__ = ["CorpusRecord", "append_history", "iter_history", "run_profile"]

#: Fields every BENCH_history.jsonl record must carry (well-formedness gate).
_HISTORY_FIELDS = (
    "profile",
    "family",
    "events",
    "profiles",
    "ops_per_event",
    "matches_per_event",
    "churn_ops",
)


@dataclass(frozen=True)
class CorpusRecord:
    """One profile x family corpus run, ready for ``BENCH_history.jsonl``.

    ``ops_per_event`` and ``matches_per_event`` are deterministic under
    the profile's seeds; ``wall_clock_seconds`` is present only on
    timing runs and never gated in CI.  ``timestamp`` (epoch seconds)
    and ``revision`` are stamped by the caller appending to history.
    """

    profile: str
    family: str
    events: int
    profiles: int
    ops_per_event: float
    matches_per_event: float
    churn_ops: int = 0
    wall_clock_seconds: float | None = None
    timestamp: float | None = None
    revision: str | None = None
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = asdict(self)
        extra = payload.pop("extra")
        payload.update(extra)
        return {key: value for key, value in payload.items() if value is not None}


def _churn_pool(profile: ScenarioProfile) -> Iterator:
    """Yield replacement subscriptions for the churn schedule, forever.

    The pool draws from the profile's own distributions but through an
    rng stream independent of the one that built the initial population
    and the events (``seed + 0x5EED``), and under a distinct spec name so
    replacement profile ids never collide with the initial ones.
    """
    spec = profile.spec
    rng = random.Random(spec.seed + 0x5EED)
    batch = 0
    while True:
        batch += 1
        pool_spec = replace(
            spec,
            name=f"{spec.name}-churn{batch}",
            profile_count=max(1, min(spec.profile_count, 256)),
        )
        distributions = {
            attribute.name: make_distribution(
                pool_spec.spec_for(attribute.name).profile_distribution, attribute.domain
            )
            for attribute in pool_spec.schema
        }
        yield from generate_profiles(pool_spec, rng, distributions)


def run_profile(
    profile: ScenarioProfile,
    family: str,
    *,
    event_count: int | None = None,
    timing: bool = False,
) -> CorpusRecord:
    """Run one corpus profile through one engine family via the facade.

    ``event_count`` caps the published stream (CI-sized runs); the full
    profile stream is used when omitted.  With ``timing=True`` the
    record additionally carries wall-clock seconds for the publish loop
    (never deterministic, never gated).
    """
    from repro.api import FilterService

    spec = profile.spec
    if event_count is not None:
        spec = spec.with_counts(event_count=min(event_count, spec.event_count))
    workload = build_workload(spec)
    events = list(workload.events)
    run = profile.run

    service = FilterService.from_profile(profile, engine=family)
    try:
        handles = service.subscribe_all(workload.profiles)
        active = list(handles)
        pool = _churn_pool(profile) if run.churn_rate > 0.0 else None
        churn_ops = 0
        churn_credit = 0.0
        started = time.perf_counter() if timing else 0.0
        for start in range(0, len(events), run.batch_size):
            batch = events[start : start + run.batch_size]
            if run.batch_size == 1:
                service.publish(batch[0])
            else:
                service.publish_batch(batch)
            if pool is not None:
                # One cancel + one replacement subscribe per two units of
                # churn credit; the oldest subscription leaves first.
                churn_credit += run.churn_rate * len(batch)
                while churn_credit >= 2.0 and active:
                    churn_credit -= 2.0
                    active.pop(0).cancel()
                    active.append(service.subscribe(next(pool)))
                    churn_ops += 2
        service.drain()
        elapsed = time.perf_counter() - started if timing else None
        stats = service.stats()
    finally:
        service.close()

    return CorpusRecord(
        profile=profile.name,
        family=family,
        events=len(events),
        profiles=spec.profile_count,
        ops_per_event=stats.average_operations_per_event,
        matches_per_event=stats.average_matches_per_event,
        churn_ops=churn_ops,
        wall_clock_seconds=elapsed,
    )


def append_history(records, path: str | Path, *, timestamp: float | None = None,
                   revision: str | None = None) -> int:
    """Append corpus records to a ``BENCH_history.jsonl`` file.

    Each record becomes one JSON line; ``timestamp``/``revision`` stamp
    every appended record (the runner CLI passes the current time and
    the git revision).  Returns the number of lines appended.
    """
    target = Path(path)
    count = 0
    with open(target, "a", encoding="utf-8") as handle:
        for record in records:
            stamped = replace(record, timestamp=timestamp, revision=revision)
            handle.write(json.dumps(stamped.to_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def iter_history(path: str | Path) -> Iterator[dict]:
    """Yield the records of a ``BENCH_history.jsonl`` file as dicts.

    Raises ``ValueError`` naming the line number when a line is not a
    JSON object or misses one of the required fields — the
    well-formedness contract the corpus bench gates.
    """
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{number}: invalid JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{number}: expected a JSON object")
            missing = [key for key in _HISTORY_FIELDS if key not in record]
            if missing:
                raise ValueError(f"{path}:{number}: missing fields {missing}")
            yield record
