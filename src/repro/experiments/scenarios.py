"""The paper's test scenarios TV1-TV4 and TA1-TA2 as runnable experiments.

Section 4.3 defines four value-reordering test scenarios:

* **TV1** — creation of the full profile tree (``n`` attributes, 10 000
  profiles drawn from a given distribution), then event tests until the
  average operation count is known with 95 % precision;
* **TV2** — full profile tree, event tests until 95 % precision;
* **TV3** — single-attribute profile tree, 4 000 events drawn from the given
  distribution;
* **TV4** — single-attribute profile tree, all possible events, average
  operation count computed analytically from Eq. 2;

and two attribute-reordering experiments **TA1** (widely differing attribute
selectivities) and **TA2** (small differences), reproduced in
:mod:`repro.experiments.figures.fig6`.

The scenario runners here return both the analytic and simulated metrics so
the integration tests can check that simulation (TV3) converges to the
analytical model (TV4) and that the 95 %-precision stopping rule behaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.errors import ExperimentError
from repro.experiments.harness import (
    OrderingStrategy,
    STRATEGY_BINARY,
    STRATEGY_EVENT,
    STRATEGY_NATURAL,
    StrategyEvaluation,
    evaluate_analytically,
    evaluate_by_simulation,
)
from repro.workloads.generators import Workload, build_workload
from repro.workloads.profiles import get_profile

__all__ = [
    "ScenarioResult",
    "DEFAULT_STRATEGIES",
    "run_tv1",
    "run_tv2",
    "run_tv3",
    "run_tv4",
]

#: Strategies evaluated by default in the TV scenarios.
DEFAULT_STRATEGIES = (STRATEGY_NATURAL, STRATEGY_EVENT, STRATEGY_BINARY)


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one test scenario."""

    scenario: str
    workload: Workload
    evaluations: tuple[StrategyEvaluation, ...]

    def by_strategy(self, name: str) -> StrategyEvaluation:
        """Return the evaluation of the strategy called ``name``."""
        for evaluation in self.evaluations:
            if evaluation.strategy.name == name:
                return evaluation
        raise ExperimentError(f"no evaluation for strategy {name!r}")

    def operations_per_event(self) -> Mapping[str, float]:
        """Return ``{strategy name: avg operations per event}``."""
        return {e.strategy.name: e.operations_per_event for e in self.evaluations}


def run_tv1(
    *,
    profile_count: int = 2000,
    events: str = "gauss",
    profiles: str = "95% high",
    precision_target: float = 0.05,
    max_events: int = 20_000,
    strategies: Sequence[OrderingStrategy] = DEFAULT_STRATEGIES,
    seed: int = 31,
) -> ScenarioResult:
    """Run scenario TV1: multi-attribute tree creation plus precision run.

    The paper uses 10 000 profiles; the default here is smaller so the
    scenario stays laptop-friendly, and the count is a parameter.
    """
    spec = (
        get_profile("environmental")
        .spec.with_counts(profile_count=profile_count, event_count=1)
        .with_seed(seed)
        .with_distributions(events=events, profiles=profiles)
    )
    workload = build_workload(spec)
    evaluations = evaluate_by_simulation(
        workload,
        strategies,
        precision_target=precision_target,
        max_events=max_events,
    )
    return ScenarioResult("TV1", workload, tuple(evaluations))


def run_tv2(
    *,
    profile_count: int = 500,
    events: str = "gauss",
    profiles: str = "95% high",
    precision_target: float = 0.05,
    max_events: int = 20_000,
    strategies: Sequence[OrderingStrategy] = DEFAULT_STRATEGIES,
    seed: int = 37,
) -> ScenarioResult:
    """Run scenario TV2: full profile tree, events until 95 % precision."""
    spec = (
        get_profile("environmental")
        .spec.with_counts(profile_count=profile_count, event_count=1)
        .with_seed(seed)
        .with_distributions(events=events, profiles=profiles)
    )
    workload = build_workload(spec)
    evaluations = evaluate_by_simulation(
        workload,
        strategies,
        precision_target=precision_target,
        max_events=max_events,
    )
    return ScenarioResult("TV2", workload, tuple(evaluations))


def run_tv3(
    *,
    events: str = "gauss",
    profiles: str = "95% high",
    profile_count: int = 60,
    event_count: int = 4000,
    strategies: Sequence[OrderingStrategy] = DEFAULT_STRATEGIES,
    seed: int = 41,
) -> ScenarioResult:
    """Run scenario TV3: single attribute, 4 000 sampled events."""
    spec = (
        get_profile("single-attribute")
        .spec.with_counts(profile_count=profile_count, event_count=event_count)
        .with_seed(seed)
        .with_distributions(events=events, profiles=profiles)
        .with_name("tv3")
    )
    workload = build_workload(spec)
    evaluations = evaluate_by_simulation(workload, strategies)
    return ScenarioResult("TV3", workload, tuple(evaluations))


def run_tv4(
    *,
    events: str = "gauss",
    profiles: str = "95% high",
    profile_count: int = 60,
    strategies: Sequence[OrderingStrategy] = DEFAULT_STRATEGIES,
    seed: int = 41,
) -> ScenarioResult:
    """Run scenario TV4: single attribute, analytical evaluation (Eq. 2)."""
    spec = (
        get_profile("single-attribute")
        .spec.with_counts(profile_count=profile_count, event_count=1)
        .with_seed(seed)
        .with_distributions(events=events, profiles=profiles)
        .with_name("tv4")
    )
    workload = build_workload(spec)
    evaluations = evaluate_analytically(workload, strategies)
    return ScenarioResult("TV4", workload, tuple(evaluations))
