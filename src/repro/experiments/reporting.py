"""Reporting helpers: figure tables as aligned text and CSV.

The paper presents its evaluation as bar charts; this reproduction prints
the same series as tables (one row per distribution combination, one column
per ordering strategy), which the benchmark harness writes to stdout and
``EXPERIMENTS.md`` quotes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import ExperimentError

__all__ = ["FigureRow", "FigureTable"]


@dataclass(frozen=True)
class FigureRow:
    """One x-axis group of a figure (e.g. one P_e/P_p combination)."""

    label: str
    values: Mapping[str, float]


@dataclass(frozen=True)
class FigureTable:
    """A reproduced figure: named series over labelled groups."""

    figure_id: str
    title: str
    metric: str
    series: tuple[str, ...]
    rows: tuple[FigureRow, ...]

    def value(self, row_label: str, series: str) -> float:
        """Return one cell of the table."""
        for row in self.rows:
            if row.label == row_label:
                try:
                    return row.values[series]
                except KeyError as exc:
                    raise ExperimentError(
                        f"series {series!r} missing in row {row_label!r}"
                    ) from exc
        raise ExperimentError(f"unknown row {row_label!r}")

    def winners(self) -> dict[str, str]:
        """Return, per row, the series with the lowest value (best strategy)."""
        result = {}
        for row in self.rows:
            result[row.label] = min(row.values, key=lambda s: row.values[s])
        return result

    # -- rendering ---------------------------------------------------------------
    def to_text(self, *, precision: int = 2) -> str:
        """Render the table as aligned monospaced text."""
        label_width = max([len("combination")] + [len(r.label) for r in self.rows])
        column_widths = [
            max(len(name), precision + 6) for name in self.series
        ]
        lines = [f"{self.figure_id}: {self.title}", f"metric: {self.metric}", ""]
        header = "combination".ljust(label_width) + " | " + " | ".join(
            name.rjust(width) for name, width in zip(self.series, column_widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            cells = []
            for name, width in zip(self.series, column_widths):
                value = row.values.get(name, float("nan"))
                cells.append(f"{value:.{precision}f}".rjust(width))
            lines.append(row.label.ljust(label_width) + " | " + " | ".join(cells))
        return "\n".join(lines)

    def to_csv(self, *, precision: int = 4) -> str:
        """Render the table as CSV text."""
        lines = ["combination," + ",".join(self.series)]
        for row in self.rows:
            cells = [f"{row.values.get(name, float('nan')):.{precision}f}" for name in self.series]
            lines.append(row.label + "," + ",".join(cells))
        return "\n".join(lines)

    def to_markdown(self, *, precision: int = 2) -> str:
        """Render the table as a GitHub-flavoured markdown table."""
        header = "| combination | " + " | ".join(self.series) + " |"
        divider = "|" + "---|" * (len(self.series) + 1)
        lines = [header, divider]
        for row in self.rows:
            cells = [f"{row.values.get(name, float('nan')):.{precision}f}" for name in self.series]
            lines.append("| " + row.label + " | " + " | ".join(cells) + " |")
        return "\n".join(lines)
