"""Evaluation harness: scenarios TV1-TV4, TA1-TA2 and all figure tables."""

from repro.experiments.harness import (
    OrderingStrategy,
    STRATEGY_BINARY,
    STRATEGY_COMBINED,
    STRATEGY_EVENT,
    STRATEGY_NATURAL,
    STRATEGY_PROFILE,
    StrategyEvaluation,
    configuration_for_strategy,
    evaluate_analytically,
    evaluate_by_simulation,
)
from repro.experiments.reporting import FigureRow, FigureTable
from repro.experiments.scenarios import (
    DEFAULT_STRATEGIES,
    ScenarioResult,
    run_tv1,
    run_tv2,
    run_tv3,
    run_tv4,
)
from repro.experiments.figures import (
    figure_3,
    figure_4a,
    figure_4b,
    figure_5a,
    figure_5b,
    figure_5c,
    figure_6a,
    figure_6b,
)

__all__ = [
    "DEFAULT_STRATEGIES",
    "FigureRow",
    "FigureTable",
    "OrderingStrategy",
    "STRATEGY_BINARY",
    "STRATEGY_COMBINED",
    "STRATEGY_EVENT",
    "STRATEGY_NATURAL",
    "STRATEGY_PROFILE",
    "ScenarioResult",
    "StrategyEvaluation",
    "configuration_for_strategy",
    "evaluate_analytically",
    "evaluate_by_simulation",
    "figure_3",
    "figure_4a",
    "figure_4b",
    "figure_5a",
    "figure_5b",
    "figure_5c",
    "figure_6a",
    "figure_6b",
    "run_tv1",
    "run_tv2",
    "run_tv3",
    "run_tv4",
]
