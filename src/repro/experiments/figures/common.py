"""Shared machinery for the figure reproductions.

Every value-reordering figure of the paper (Figs. 4 and 5) uses the same
experimental template: a single-attribute profile tree (test scenario TV4)
whose profiles are drawn from a named profile distribution ``P_p`` and whose
events follow a named event distribution ``P_e``; the plotted metric is the
expected number of comparison operations per event (or per profile) for a
set of ordering strategies.  The helpers here build those workloads and
tables so the individual figure modules only declare their distribution
combinations and strategy sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import ExperimentError
from repro.experiments.harness import (
    OrderingStrategy,
    evaluate_analytically,
    evaluate_by_simulation,
)
from repro.experiments.reporting import FigureRow, FigureTable
from repro.core.domains import IntegerDomain
from repro.workloads.generators import Workload, build_workload
from repro.workloads.profiles import get_profile

__all__ = [
    "DistributionCombination",
    "combination_workload",
    "value_reordering_table",
]


@dataclass(frozen=True)
class DistributionCombination:
    """One x-axis group: an event distribution paired with a profile one."""

    events: str
    profiles: str

    @property
    def label(self) -> str:
        """Return the figure label, e.g. ``"d39 / gauss"``."""
        return f"{self.events} / {self.profiles}"


def combination_workload(
    combination: DistributionCombination,
    *,
    domain_size: int = 100,
    profile_count: int = 60,
    seed: int = 5,
) -> Workload:
    """Build the single-attribute workload of one P_e/P_p combination."""
    spec = (
        get_profile("single-attribute")
        .spec.with_counts(profile_count=profile_count)
        .with_seed(seed)
        .with_distributions(events=combination.events, profiles=combination.profiles)
        .with_name(f"tv4-{combination.events}-{combination.profiles}".replace(" ", ""))
    )
    if domain_size != 100:
        spec = spec.with_domain("value", IntegerDomain(0, domain_size - 1))
    return build_workload(spec)


def value_reordering_table(
    figure_id: str,
    title: str,
    combinations: Sequence[DistributionCombination],
    strategies: Sequence[OrderingStrategy],
    *,
    metric: str = "operations_per_event",
    domain_size: int = 100,
    profile_count: int = 60,
    seed: int = 5,
    simulate: bool = False,
    event_count: int = 4000,
) -> FigureTable:
    """Reproduce one value-reordering figure as a :class:`FigureTable`.

    ``metric`` selects the plotted quantity: ``operations_per_event``
    (Figs. 4, 5(a)), ``operations_per_profile`` (Fig. 5(b)) or
    ``operations_per_event_and_profile`` (Fig. 5(c)).  ``simulate=True``
    switches from the analytical TV4 evaluation to the sampled TV3 one.
    """
    valid_metrics = {
        "operations_per_event",
        "operations_per_profile",
        "operations_per_event_and_profile",
    }
    if metric not in valid_metrics:
        raise ExperimentError(f"metric must be one of {sorted(valid_metrics)}")

    rows = []
    for combination in combinations:
        workload = combination_workload(
            combination,
            domain_size=domain_size,
            profile_count=profile_count,
            seed=seed,
        )
        if simulate:
            evaluations = evaluate_by_simulation(
                workload,
                strategies,
                events=workload.events[:event_count],
            )
        else:
            evaluations = evaluate_analytically(workload, strategies)
        rows.append(
            FigureRow(
                label=combination.label,
                values={e.strategy.name: getattr(e, metric) for e in evaluations},
            )
        )
    return FigureTable(
        figure_id=figure_id,
        title=title,
        metric=metric,
        series=tuple(s.name for s in strategies),
        rows=tuple(rows),
    )
