"""Figure 5: value reordering measured per event, per profile and per both.

The six distribution combinations mix uniform, falling and peaked event
distributions with peaked profile distributions ("the profiles are equally
distributed with a small peak, the number refers to the probability of the
peak-values; high and low refers to the location of the peak"):

    equal/90% high, equal/95% high, equal/95% low,
    falling/95% high, 95% high/95% low, 95% low/95% low

Fig. 5(a) plots average operations per event, Fig. 5(b) per profile and
Fig. 5(c) per event and profile.  The paper's conclusion checked here: the
profile-dependent reorderings (V2, V3) can cost a little on the per-event
average but improve the per-profile metric — they favour profiles over
frequently subscribed values.
"""

from __future__ import annotations

from repro.experiments.figures.common import (
    DistributionCombination,
    value_reordering_table,
)
from repro.experiments.harness import (
    STRATEGY_BINARY,
    STRATEGY_COMBINED,
    STRATEGY_EVENT,
    STRATEGY_PROFILE,
)
from repro.experiments.reporting import FigureTable

__all__ = ["FIG5_COMBINATIONS", "FIG5_STRATEGIES", "figure_5a", "figure_5b", "figure_5c"]

#: The event / profile distribution combinations of Fig. 5.
FIG5_COMBINATIONS = (
    DistributionCombination("equal", "90% high"),
    DistributionCombination("equal", "95% high"),
    DistributionCombination("equal", "95% low"),
    DistributionCombination("falling", "95% high"),
    DistributionCombination("95% high", "95% low"),
    DistributionCombination("95% low", "95% low"),
)

FIG5_STRATEGIES = (STRATEGY_PROFILE, STRATEGY_COMBINED, STRATEGY_EVENT, STRATEGY_BINARY)


def _figure5(metric: str, figure_id: str, title: str, **kwargs) -> FigureTable:
    return value_reordering_table(
        figure_id,
        title,
        FIG5_COMBINATIONS,
        FIG5_STRATEGIES,
        metric=metric,
        **kwargs,
    )


def figure_5a(
    *, profile_count: int = 60, domain_size: int = 100, seed: int = 5, simulate: bool = False
) -> FigureTable:
    """Reproduce Fig. 5(a): average filter operations per event."""
    return _figure5(
        "operations_per_event",
        "fig5a",
        "Value reordering: average operations per event (TV4)",
        profile_count=profile_count,
        domain_size=domain_size,
        seed=seed,
        simulate=simulate,
    )


def figure_5b(
    *, profile_count: int = 60, domain_size: int = 100, seed: int = 5, simulate: bool = False
) -> FigureTable:
    """Reproduce Fig. 5(b): average filter operations per profile."""
    return _figure5(
        "operations_per_profile",
        "fig5b",
        "Value reordering: average operations per profile (TV4)",
        profile_count=profile_count,
        domain_size=domain_size,
        seed=seed,
        simulate=simulate,
    )


def figure_5c(
    *, profile_count: int = 60, domain_size: int = 100, seed: int = 5, simulate: bool = False
) -> FigureTable:
    """Reproduce Fig. 5(c): average operations per event and profile."""
    return _figure5(
        "operations_per_event_and_profile",
        "fig5c",
        "Value reordering: average operations per event and profile (TV4)",
        profile_count=profile_count,
        domain_size=domain_size,
        seed=seed,
        simulate=simulate,
    )
