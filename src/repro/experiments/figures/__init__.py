"""Reproductions of every figure in the paper's evaluation section."""

from repro.experiments.figures.common import (
    DistributionCombination,
    combination_workload,
    value_reordering_table,
)
from repro.experiments.figures.fig3 import FIG3_DISTRIBUTIONS, distribution_profile, figure_3
from repro.experiments.figures.fig4 import (
    FIG4A_COMBINATIONS,
    FIG4A_STRATEGIES,
    FIG4B_COMBINATIONS,
    FIG4B_STRATEGIES,
    figure_4a,
    figure_4b,
)
from repro.experiments.figures.fig5 import (
    FIG5_COMBINATIONS,
    FIG5_STRATEGIES,
    figure_5a,
    figure_5b,
    figure_5c,
)
from repro.experiments.figures.fig6 import (
    FIG6_EVENT_DISTRIBUTIONS,
    FIG6_ORDERINGS,
    TA1_COVERAGE_FRACTIONS,
    TA2_COVERAGE_FRACTIONS,
    attribute_reordering_profiles,
    figure_6a,
    figure_6b,
)

__all__ = [
    "DistributionCombination",
    "FIG3_DISTRIBUTIONS",
    "FIG4A_COMBINATIONS",
    "FIG4A_STRATEGIES",
    "FIG4B_COMBINATIONS",
    "FIG4B_STRATEGIES",
    "FIG5_COMBINATIONS",
    "FIG5_STRATEGIES",
    "FIG6_EVENT_DISTRIBUTIONS",
    "FIG6_ORDERINGS",
    "TA1_COVERAGE_FRACTIONS",
    "TA2_COVERAGE_FRACTIONS",
    "attribute_reordering_profiles",
    "combination_workload",
    "distribution_profile",
    "figure_3",
    "figure_4a",
    "figure_4b",
    "figure_5a",
    "figure_5b",
    "figure_5c",
    "figure_6a",
    "figure_6b",
    "value_reordering_table",
]
