"""Figure 6: influence of attribute reordering (experiments TA1 and TA2).

Both experiments use a profile tree over five attributes whose selectivities
(Measures A1/A2) differ — widely in TA1 ("distributions with peaks of width
from 10 %-80 %") and only slightly in TA2.  Three event distributions are
applied (equal, Gauss, relocated Gauss) and the tree levels are ordered
naturally, ascending or descending by attribute selectivity; the plotted
series are the event-descending (V1) linear search and binary search.

Reproduced qualitative findings:

* descending selectivity order rejects non-matching events earlier and is
  never worse than the ascending (worst-case) order;
* the benefit of the reordering grows when the event distribution puts much
  mass on the zero-subdomains (the relocated Gauss case), where the
  selectivity-ordered linear search also overtakes binary search;
* with only small selectivity differences (TA2) the effect shrinks.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from repro.core.domains import IntegerDomain
from repro.core.predicates import Equals
from repro.core.profiles import Profile, ProfileSet
from repro.core.schema import Attribute, Schema
from repro.distributions.base import Distribution
from repro.distributions.library import make_distribution
from repro.experiments.harness import (
    OrderingStrategy,
    STRATEGY_BINARY,
    configuration_for_strategy,
)
from repro.analysis.cost_model import expected_tree_cost
from repro.experiments.reporting import FigureRow, FigureTable
from repro.matching.tree.builder import build_tree
from repro.selectivity.attribute_measures import AttributeMeasure
from repro.selectivity.optimizer import TreeOptimizer
from repro.selectivity.value_measures import ValueMeasure

__all__ = [
    "TA1_COVERAGE_FRACTIONS",
    "TA2_COVERAGE_FRACTIONS",
    "FIG6_EVENT_DISTRIBUTIONS",
    "FIG6_ORDERINGS",
    "attribute_reordering_profiles",
    "figure_6a",
    "figure_6b",
]

#: Fraction of each attribute's domain covered by profile values in TA1
#: (wide differences, "peaks of width from 10 %-80 %").  The fractions are
#: deliberately not monotone in the attribute index so the natural order is
#: neither the best nor the worst level order.
TA1_COVERAGE_FRACTIONS = (0.40, 0.10, 0.80, 0.25, 0.60)

#: Coverage fractions in TA2 (distributions that "only lightly vary").
TA2_COVERAGE_FRACTIONS = (0.45, 0.35, 0.55, 0.40, 0.50)

#: The event distributions applied in Fig. 6 (x-axis groups).
FIG6_EVENT_DISTRIBUTIONS = ("equal", "gauss", "relocated gauss low")

#: The three tree-level orderings compared per event distribution.
FIG6_ORDERINGS = ("natur.", "asc.", "desc.")

#: Series plotted in Fig. 6.
_FIG6_STRATEGIES = (
    OrderingStrategy("event desc order search", value_measure=ValueMeasure.V1_EVENT),
    STRATEGY_BINARY,
)


def attribute_reordering_profiles(
    coverage_fractions: Sequence[float],
    *,
    domain_size: int = 100,
    profile_count: int = 100,
    seed: int = 23,
) -> ProfileSet:
    """Build the TA1/TA2 profile set.

    The schema has one integer attribute per coverage fraction; every profile
    constrains every attribute with an equality predicate (the paper's
    prototype supports equality tests) whose value lies inside the top
    ``coverage_fraction`` share of the domain.  The zero-subdomain of
    attribute ``j`` therefore occupies at least ``1 - coverage_fractions[j]``
    of its domain, giving the attributes widely (TA1) or slightly (TA2)
    differing selectivities.
    """
    rng = random.Random(seed)
    attributes = [
        Attribute(f"a{j + 1}", IntegerDomain(0, domain_size - 1))
        for j in range(len(coverage_fractions))
    ]
    schema = Schema(attributes)
    profiles = ProfileSet(schema)
    for index in range(profile_count):
        predicates = {}
        for attribute, coverage in zip(attributes, coverage_fractions):
            covered_low = int(round((1.0 - coverage) * (domain_size - 1)))
            value = rng.randint(covered_low, domain_size - 1)
            predicates[attribute.name] = Equals(value)
        profiles.add(Profile(f"TA-P{index + 1}", predicates))
    return profiles


def _event_distributions(
    schema: Schema, name: str
) -> Mapping[str, Distribution]:
    return {
        attribute.name: make_distribution(name, attribute.domain) for attribute in schema
    }


def _attribute_reordering_table(
    figure_id: str,
    title: str,
    coverage_fractions: Sequence[float],
    *,
    domain_size: int = 100,
    profile_count: int = 100,
    seed: int = 23,
) -> FigureTable:
    profiles = attribute_reordering_profiles(
        coverage_fractions,
        domain_size=domain_size,
        profile_count=profile_count,
        seed=seed,
    )
    schema = profiles.schema
    rows = []
    for distribution_name in FIG6_EVENT_DISTRIBUTIONS:
        event_distributions = _event_distributions(schema, distribution_name)
        optimizer = TreeOptimizer(profiles, event_distributions)
        descending = optimizer.attribute_order(
            AttributeMeasure.A2_ZERO_PROBABILITY, descending=True
        )
        orders = {
            "natur.": tuple(schema.names),
            "asc.": tuple(reversed(descending)),
            "desc.": descending,
        }
        for ordering_name in FIG6_ORDERINGS:
            values = {}
            for strategy in _FIG6_STRATEGIES:
                configuration = configuration_for_strategy(strategy, optimizer)
                configuration = configuration.with_attribute_order(
                    orders[ordering_name], label=f"{strategy.name} / {ordering_name}"
                )
                tree = build_tree(
                    profiles, configuration, partitions=dict(optimizer.partitions)
                )
                cost = expected_tree_cost(tree, event_distributions)
                values[strategy.name] = cost.operations_per_event
            rows.append(
                FigureRow(
                    label=f"{distribution_name} · {ordering_name}",
                    values=values,
                )
            )
    return FigureTable(
        figure_id=figure_id,
        title=title,
        metric="operations_per_event",
        series=tuple(s.name for s in _FIG6_STRATEGIES),
        rows=tuple(rows),
    )


def figure_6a(
    *, domain_size: int = 100, profile_count: int = 100, seed: int = 23
) -> FigureTable:
    """Reproduce Fig. 6(a): attribute reordering with wide selectivity
    differences (experiment TA1)."""
    return _attribute_reordering_table(
        "fig6a",
        "Attribute reordering, wide differences in attribute distributions (TA1)",
        TA1_COVERAGE_FRACTIONS,
        domain_size=domain_size,
        profile_count=profile_count,
        seed=seed,
    )


def figure_6b(
    *, domain_size: int = 100, profile_count: int = 100, seed: int = 23
) -> FigureTable:
    """Reproduce Fig. 6(b): attribute reordering with small selectivity
    differences (experiment TA2)."""
    return _attribute_reordering_table(
        "fig6b",
        "Attribute reordering, small differences in attribute distributions (TA2)",
        TA2_COVERAGE_FRACTIONS,
        domain_size=domain_size,
        profile_count=profile_count,
        seed=seed,
    )
