"""Figure 3: exemplary event/profile distributions.

The paper sketches a selection of the 60 hand-defined distributions used in
the evaluation ("the graphs do not precisely describe each function, but
give an impression of the distribution").  Our reproduction provides the
synthetic ``defined N`` family (see
:mod:`repro.distributions.library`); this module samples every distribution
referenced by Figs. 3-4 over a normalised domain so the shapes can be
inspected, plotted or regression-tested.
"""

from __future__ import annotations

from repro.core.domains import IntegerDomain
from repro.distributions.library import make_distribution
from repro.experiments.reporting import FigureRow, FigureTable

__all__ = ["FIG3_DISTRIBUTIONS", "figure_3", "distribution_profile"]

#: The distributions named in Fig. 3 and used across Figs. 4-5.
FIG3_DISTRIBUTIONS = (
    "d1",
    "d2",
    "d3",
    "d4",
    "d5",
    "d9",
    "d14",
    "d16",
    "d17",
    "d18",
    "d34",
    "d37",
    "d39",
    "d40",
    "d41",
    "d42",
    "equal",
    "gauss",
)


def distribution_profile(
    name: str, *, domain_size: int = 100, buckets: int = 10
) -> list[float]:
    """Return the probability mass of ``name`` aggregated into ``buckets``
    equal slices of a normalised integer domain (0 .. domain_size - 1)."""
    domain = IntegerDomain(0, domain_size - 1)
    distribution = make_distribution(name, domain)
    per_bucket = domain_size // buckets
    masses = []
    for bucket in range(buckets):
        low = bucket * per_bucket
        high = domain_size - 1 if bucket == buckets - 1 else (bucket + 1) * per_bucket - 1
        masses.append(
            sum(distribution.probability_of_value(v) for v in range(low, high + 1))
        )
    return masses


def figure_3(*, domain_size: int = 100, buckets: int = 10) -> FigureTable:
    """Reproduce Fig. 3 as a table: one row per distribution, one column per
    decile of the normalised attribute domain."""
    series = tuple(
        f"{int(100 * b / buckets)}-{int(100 * (b + 1) / buckets)}%" for b in range(buckets)
    )
    rows = []
    for name in FIG3_DISTRIBUTIONS:
        masses = distribution_profile(name, domain_size=domain_size, buckets=buckets)
        rows.append(FigureRow(label=name, values=dict(zip(series, masses))))
    return FigureTable(
        figure_id="fig3",
        title="Exemplary distributions (probability mass per domain decile)",
        metric="probability mass",
        series=series,
        rows=tuple(rows),
    )
