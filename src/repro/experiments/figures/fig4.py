"""Figure 4: influence of value reordering (test scenario TV4).

* Fig. 4(a) compares natural order, event-based order (Measure V1) and
  binary search over seven combinations of event/profile distributions
  (``d37/equal``, ``d5/d41``, ``d3/d39``, ``d39/d18``, ``d40/d17``,
  ``d42/d1``, ``d39/d1``).
* Fig. 4(b) compares the profile order (V2), the combined order (V3), the
  event order (V1) and binary search over eight combinations
  (``d14/gauss`` ... ``d17/d34``).

The paper's qualitative findings that our reproduction checks:

* natural and event-based orderings oscillate across combinations while
  binary search is balanced — there is no universally best strategy;
* the event-based order wins for peaked event distributions (the
  catastrophe-warning scenario), formally when ``E(X) < log2(2p - 1)``.
"""

from __future__ import annotations

from repro.experiments.figures.common import (
    DistributionCombination,
    value_reordering_table,
)
from repro.experiments.harness import (
    STRATEGY_BINARY,
    STRATEGY_COMBINED,
    STRATEGY_EVENT,
    STRATEGY_NATURAL,
    STRATEGY_PROFILE,
)
from repro.experiments.reporting import FigureTable

__all__ = [
    "FIG4A_COMBINATIONS",
    "FIG4B_COMBINATIONS",
    "FIG4A_STRATEGIES",
    "FIG4B_STRATEGIES",
    "figure_4a",
    "figure_4b",
]

#: The P_e / P_p combinations on the x-axis of Fig. 4(a).
FIG4A_COMBINATIONS = (
    DistributionCombination("d37", "equal"),
    DistributionCombination("d5", "d41"),
    DistributionCombination("d3", "d39"),
    DistributionCombination("d39", "d18"),
    DistributionCombination("d40", "d17"),
    DistributionCombination("d42", "d1"),
    DistributionCombination("d39", "d1"),
)

#: The P_e / P_p combinations on the x-axis of Fig. 4(b).
FIG4B_COMBINATIONS = (
    DistributionCombination("d14", "gauss"),
    DistributionCombination("d2", "gauss"),
    DistributionCombination("d4", "gauss"),
    DistributionCombination("d16", "d39"),
    DistributionCombination("d9", "gauss"),
    DistributionCombination("d39", "gauss"),
    DistributionCombination("d4", "d37"),
    DistributionCombination("d17", "d34"),
)

FIG4A_STRATEGIES = (STRATEGY_NATURAL, STRATEGY_EVENT, STRATEGY_BINARY)
FIG4B_STRATEGIES = (STRATEGY_PROFILE, STRATEGY_COMBINED, STRATEGY_EVENT, STRATEGY_BINARY)


def figure_4a(
    *, profile_count: int = 60, domain_size: int = 100, seed: int = 5, simulate: bool = False
) -> FigureTable:
    """Reproduce Fig. 4(a): Measure V1 vs natural order vs binary search."""
    return value_reordering_table(
        "fig4a",
        "Influence of value reordering (Measure V1), scenario TV4",
        FIG4A_COMBINATIONS,
        FIG4A_STRATEGIES,
        profile_count=profile_count,
        domain_size=domain_size,
        seed=seed,
        simulate=simulate,
    )


def figure_4b(
    *, profile_count: int = 60, domain_size: int = 100, seed: int = 5, simulate: bool = False
) -> FigureTable:
    """Reproduce Fig. 4(b): Measures V1-V3 vs binary search."""
    return value_reordering_table(
        "fig4b",
        "Influence of value reordering (Measures V1-V3), scenario TV4",
        FIG4B_COMBINATIONS,
        FIG4B_STRATEGIES,
        profile_count=profile_count,
        domain_size=domain_size,
        seed=seed,
        simulate=simulate,
    )
