"""Experiment harness.

Common machinery shared by the figure reproductions and the TV/TA test
scenarios: build a workload, derive the tree configuration for each ordering
strategy, and evaluate it either *analytically* (the paper's scenario TV4,
via the expected-cost model) or *by simulation* (scenarios TV1-TV3, via the
runtime matcher and sampled events).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.cost_model import TreeCost, expected_tree_cost
from repro.core.errors import ExperimentError
from repro.core.events import Event
from repro.matching.statistics import FilterStatistics
from repro.matching.tree.builder import build_tree
from repro.matching.tree.config import SearchStrategy, TreeConfiguration
from repro.matching.tree.matcher import TreeMatcher
from repro.selectivity.attribute_measures import AttributeMeasure
from repro.selectivity.optimizer import TreeOptimizer
from repro.selectivity.value_measures import ValueMeasure
from repro.workloads.generators import Workload

__all__ = [
    "OrderingStrategy",
    "StrategyEvaluation",
    "STRATEGY_NATURAL",
    "STRATEGY_EVENT",
    "STRATEGY_PROFILE",
    "STRATEGY_COMBINED",
    "STRATEGY_BINARY",
    "evaluate_analytically",
    "evaluate_by_simulation",
    "configuration_for_strategy",
]


@dataclass(frozen=True)
class OrderingStrategy:
    """One ordering strategy as plotted in the paper's figures."""

    #: Display name used in figure legends (matches the paper's wording).
    name: str
    value_measure: ValueMeasure = ValueMeasure.NATURAL
    attribute_measure: AttributeMeasure = AttributeMeasure.NATURAL
    search: SearchStrategy = SearchStrategy.LINEAR
    #: Descending selectivity order (the paper's reordering) or ascending
    #: (its worst-case comparison in Fig. 6).
    attribute_descending: bool = True


#: The strategies appearing across Figs. 4-6.
STRATEGY_NATURAL = OrderingStrategy("natural order search")
STRATEGY_EVENT = OrderingStrategy("event order search", value_measure=ValueMeasure.V1_EVENT)
STRATEGY_PROFILE = OrderingStrategy("profile order search", value_measure=ValueMeasure.V2_PROFILE)
STRATEGY_COMBINED = OrderingStrategy(
    "event * profile order search", value_measure=ValueMeasure.V3_COMBINED
)
STRATEGY_BINARY = OrderingStrategy("binary search", search=SearchStrategy.BINARY)


@dataclass(frozen=True)
class StrategyEvaluation:
    """Metrics of one strategy on one workload."""

    strategy: OrderingStrategy
    operations_per_event: float
    operations_per_profile: float
    operations_per_event_and_profile: float
    match_probability: float
    #: Analytic evaluations carry the full cost breakdown; simulations None.
    cost: TreeCost | None = None
    #: Simulated evaluations carry the filter statistics; analytic None.
    statistics: FilterStatistics | None = None
    #: Wall-clock seconds spent building the tree (simulation only).
    build_seconds: float = 0.0
    tree_nodes: int = 0


def configuration_for_strategy(
    strategy: OrderingStrategy,
    optimizer: TreeOptimizer,
) -> TreeConfiguration:
    """Derive the tree configuration of one strategy via the optimizer."""
    return optimizer.configuration(
        value_measure=strategy.value_measure,
        attribute_measure=strategy.attribute_measure,
        search=strategy.search,
        attribute_descending=strategy.attribute_descending,
        label=strategy.name,
    )


def _build_optimizer(workload: Workload) -> TreeOptimizer:
    return TreeOptimizer(workload.profiles, dict(workload.event_distributions))


def evaluate_analytically(
    workload: Workload,
    strategies: Sequence[OrderingStrategy],
    *,
    attribute_order_override: Sequence[str] | None = None,
) -> list[StrategyEvaluation]:
    """Evaluate strategies with the expected-cost model (scenario TV4)."""
    if not strategies:
        raise ExperimentError("at least one strategy is required")
    optimizer = _build_optimizer(workload)
    evaluations = []
    for strategy in strategies:
        configuration = configuration_for_strategy(strategy, optimizer)
        if attribute_order_override is not None:
            configuration = configuration.with_attribute_order(
                attribute_order_override, label=configuration.label
            )
        tree = build_tree(
            workload.profiles, configuration, partitions=dict(optimizer.partitions)
        )
        cost = expected_tree_cost(tree, dict(workload.event_distributions))
        per_profile = cost.operations_per_profile if cost.per_profile else float("nan")
        per_pair = (
            cost.operations_per_event_and_profile
            if cost.expected_notifications > 0
            else float("nan")
        )
        evaluations.append(
            StrategyEvaluation(
                strategy=strategy,
                operations_per_event=cost.operations_per_event,
                operations_per_profile=per_profile,
                operations_per_event_and_profile=per_pair,
                match_probability=cost.match_probability,
                cost=cost,
                tree_nodes=tree.node_count(),
            )
        )
    return evaluations


def evaluate_by_simulation(
    workload: Workload,
    strategies: Sequence[OrderingStrategy],
    *,
    events: Sequence[Event] | None = None,
    precision_target: float | None = None,
    max_events: int | None = None,
    attribute_order_override: Sequence[str] | None = None,
) -> list[StrategyEvaluation]:
    """Evaluate strategies by filtering sampled events (scenarios TV1-TV3).

    ``precision_target`` activates the paper's 95 %-precision stopping rule:
    events are drawn from the workload's joint distribution until the mean
    operation count is estimated to the requested relative precision (or
    ``max_events`` is reached).
    """
    if not strategies:
        raise ExperimentError("at least one strategy is required")
    optimizer = _build_optimizer(workload)
    evaluations = []
    for strategy in strategies:
        configuration = configuration_for_strategy(strategy, optimizer)
        if attribute_order_override is not None:
            configuration = configuration.with_attribute_order(
                attribute_order_override, label=configuration.label
            )
        started = time.perf_counter()
        matcher = TreeMatcher(workload.profiles, configuration)
        build_seconds = time.perf_counter() - started

        statistics = FilterStatistics()
        if precision_target is None:
            event_stream: Sequence[Event] = (
                events if events is not None else workload.events
            )
            for event in event_stream:
                statistics.record(matcher.match(event))
        else:
            rng = random.Random(workload.spec.seed + 99)
            joint = workload.joint_event_distribution()
            limit = max_events if max_events is not None else 100_000
            while statistics.events < limit:
                statistics.record(matcher.match(joint.sample_event(rng)))
                if statistics.precision_reached(precision_target):
                    break

        per_profile = (
            statistics.average_operations_over_profiles()
            if statistics.total_notifications
            else float("nan")
        )
        per_pair = (
            statistics.average_operations_per_event_and_profile()
            if statistics.total_notifications
            else float("nan")
        )
        evaluations.append(
            StrategyEvaluation(
                strategy=strategy,
                operations_per_event=statistics.average_operations_per_event(),
                operations_per_profile=per_profile,
                operations_per_event_and_profile=per_pair,
                match_probability=statistics.match_rate(),
                statistics=statistics,
                build_seconds=build_seconds,
                tree_nodes=matcher.tree.node_count(),
            )
        )
    return evaluations
