"""Per-attribute sub-range decomposition.

Section 3 of the paper: *"Considering profiles for value or range tests,
each attribute's domain ``D`` is divided in, at the most, ``(2p - 1)``
subsets (referred to in the profiles) and an additional subset ``D_0`` which
is not referred to in any profile."*

This module computes that decomposition for one attribute from the profile
set.  The result is the list of *defined sub-ranges* in natural ascending
order — these become the edges of the profile-tree nodes for the attribute —
plus the zero-subdomain ``D_0`` with its size ``d_0`` (the quantity used by
the attribute-selectivity measures A1 and A2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.domains import DiscreteDomain, Domain, IntegerDomain
from repro.core.errors import PredicateError, ProfileError
from repro.core.intervals import Interval, decompose_intervals
from repro.core.profiles import Profile, ProfileSet
from repro.core.schema import Attribute

__all__ = ["Subrange", "AttributePartition", "build_partition", "build_partitions"]


@dataclass(frozen=True)
class Subrange:
    """One of the at most ``2p - 1`` defined subsets of an attribute domain.

    For ordered domains the subset is an interval; for unordered discrete
    domains it is a single value.  ``profile_ids`` lists the profiles whose
    predicate on the attribute accepts every value of the subset (profiles
    that don't care about the attribute are *not* listed — the tree builder
    adds them to every edge).
    """

    index: int
    interval: Interval | None
    value: object | None
    profile_ids: frozenset[str]
    measure: float

    def contains(self, event_value: object, domain: Domain) -> bool:
        """Return ``True`` when ``event_value`` falls inside this subset."""
        if self.value is not None or (self.interval is None):
            return event_value == self.value
        if isinstance(domain, DiscreteDomain):
            return self.interval.contains(domain.index_of(event_value))
        if not isinstance(event_value, (int, float)) or isinstance(event_value, bool):
            return False
        return self.interval.contains(float(event_value))

    def label(self) -> str:
        """Return the display label used when printing trees (Fig. 1 style)."""
        if self.value is not None:
            return repr(self.value)
        if self.interval is not None and self.interval.is_point:
            return repr(self.interval.low)
        return str(self.interval)

    def sort_key(self) -> tuple:
        """Natural ascending order key."""
        if self.interval is not None:
            return self.interval.sort_key()
        return (self.value,)  # type: ignore[return-value]


@dataclass(frozen=True)
class AttributePartition:
    """The full decomposition of one attribute's domain for a profile set."""

    attribute: Attribute
    subranges: tuple[Subrange, ...]
    domain_size: float
    zero_size: float
    #: Profiles that do not constrain the attribute (don't-care).
    dont_care_profile_ids: frozenset[str]

    @property
    def covered_size(self) -> float:
        """Return the measure of the union of defined sub-ranges."""
        return self.domain_size - self.zero_size

    @property
    def zero_fraction(self) -> float:
        """Return ``d_0 / d`` — the paper's attribute-selectivity Measure A1."""
        if self.domain_size == 0:
            return 0.0
        return self.zero_size / self.domain_size

    def locate(self, event_value: object) -> Subrange | None:
        """Return the sub-range containing ``event_value`` or ``None`` (D_0)."""
        for subrange in self.subranges:
            if subrange.contains(event_value, self.attribute.domain):
                return subrange
        return None

    def natural_rank(self, event_value: object) -> int:
        """Return the value's rank within the natural sub-range order.

        For values inside a defined sub-range this is the sub-range index;
        for values in the zero-subdomain it is the number of defined
        sub-ranges lying entirely below the value.  The rank feeds the
        early-termination rejection cost of linear node search.
        """
        located = self.locate(event_value)
        if located is not None:
            return located.index
        domain = self.attribute.domain
        if isinstance(domain, DiscreteDomain):
            try:
                comparable: float | object = domain.index_of(event_value)
            except Exception:
                return len(self.subranges)
        else:
            comparable = event_value
        rank = 0
        for subrange in self.subranges:
            if subrange.value is not None:
                if isinstance(domain, DiscreteDomain):
                    boundary: object = domain.index_of(subrange.value)
                else:
                    boundary = subrange.value
                try:
                    below = boundary < comparable  # type: ignore[operator]
                except TypeError:
                    below = False
                if below:
                    rank += 1
                else:
                    break
            elif subrange.interval is not None:
                if not isinstance(comparable, (int, float)) or isinstance(comparable, bool):
                    break
                upper = subrange.interval.high
                if upper < comparable or (
                    upper == comparable and not subrange.interval.high_closed
                ):
                    rank += 1
                else:
                    break
            else:  # pragma: no cover - defensive
                break
        return rank

    def subrange_count(self) -> int:
        return len(self.subranges)

    def profiles_accepting(self, subrange: Subrange) -> frozenset[str]:
        """Return ids of profiles whose predicate accepts the sub-range."""
        return subrange.profile_ids


def _discrete_partition(
    attribute: Attribute,
    constraining: Sequence[Profile],
    dont_care_ids: frozenset[str],
) -> AttributePartition:
    domain = attribute.domain
    value_to_profiles: dict[object, set[str]] = {}
    for prof in constraining:
        predicate = prof.predicate(attribute.name)
        try:
            accepted = predicate.accepted_values(domain)
        except PredicateError as exc:
            raise ProfileError(
                f"profile {prof.profile_id!r}: predicate {predicate.describe()} is "
                f"incompatible with discrete attribute {attribute.name!r}"
            ) from exc
        for value in accepted:
            value_to_profiles.setdefault(value, set()).add(prof.profile_id)

    if isinstance(domain, DiscreteDomain):
        ordered_values = [v for v in domain.values() if v in value_to_profiles]
    else:
        ordered_values = sorted(value_to_profiles)

    subranges = tuple(
        Subrange(
            index=i,
            interval=None,
            value=value,
            profile_ids=frozenset(value_to_profiles[value]),
            measure=1.0,
        )
        for i, value in enumerate(ordered_values)
    )
    # Values never referenced by a constraining profile form the
    # zero-subdomain D_0 — unless some profile leaves the attribute
    # unconstrained, in which case every value can still contribute to a
    # match and D_0 is empty (the paper's Example 3: d_0 = 0 for radiation).
    zero_size = 0.0 if dont_care_ids else domain.size - len(subranges)
    return AttributePartition(
        attribute=attribute,
        subranges=subranges,
        domain_size=domain.size,
        zero_size=zero_size,
        dont_care_profile_ids=dont_care_ids,
    )


def _ordered_partition(
    attribute: Attribute,
    constraining: Sequence[Profile],
    dont_care_ids: frozenset[str],
) -> AttributePartition:
    domain = attribute.domain
    profile_intervals: list[tuple[str, Interval]] = []
    for prof in constraining:
        predicate = prof.predicate(attribute.name)
        for interval in predicate.accepted_intervals(domain):
            clamped = domain.clamp(interval)
            if clamped is not None:
                profile_intervals.append((prof.profile_id, clamped))

    elementary = decompose_intervals([iv for _, iv in profile_intervals])
    subranges: list[Subrange] = []
    for i, piece in enumerate(elementary):
        probe = piece.midpoint()
        owners = frozenset(
            pid for pid, iv in profile_intervals if iv.contains(probe)
        )
        subranges.append(
            Subrange(
                index=i,
                interval=piece,
                value=None,
                profile_ids=owners,
                measure=domain.measure(piece),
            )
        )

    covered = sum(s.measure for s in subranges)
    # See the discrete case above: don't-care profiles make D_0 empty.
    zero_size = 0.0 if dont_care_ids else max(0.0, domain.size - covered)
    return AttributePartition(
        attribute=attribute,
        subranges=tuple(subranges),
        domain_size=domain.size,
        zero_size=zero_size,
        dont_care_profile_ids=dont_care_ids,
    )


def build_partition(profiles: ProfileSet, attribute_name: str) -> AttributePartition:
    """Build the sub-range decomposition of one attribute for ``profiles``."""
    attribute = profiles.schema.attribute(attribute_name)
    constraining = [p for p in profiles if p.constrains(attribute_name)]
    dont_care_ids = frozenset(
        p.profile_id for p in profiles if not p.constrains(attribute_name)
    )
    if isinstance(attribute.domain, DiscreteDomain):
        return _discrete_partition(attribute, constraining, dont_care_ids)
    # Integer domains with only equality/one-of constraints partition into
    # discrete values; with any range constraint they partition into
    # intervals.  Using intervals uniformly keeps the natural order exact,
    # but single-value partitions print more readably, so prefer the discrete
    # decomposition when no range predicate is present.
    if isinstance(attribute.domain, IntegerDomain):
        from repro.core.predicates import RangePredicate

        has_range = any(
            isinstance(p.predicate(attribute_name), RangePredicate) for p in constraining
        )
        if not has_range:
            return _discrete_partition(attribute, constraining, dont_care_ids)
    return _ordered_partition(attribute, constraining, dont_care_ids)


def build_partitions(profiles: ProfileSet) -> dict[str, AttributePartition]:
    """Build partitions for every schema attribute, keyed by attribute name."""
    return {
        attribute.name: build_partition(profiles, attribute.name)
        for attribute in profiles.schema
    }
