"""Attribute domains.

The paper considers a firm set ``A`` of attributes ``a_j`` whose values
belong to given domains ``D_j`` with a *domain size* ``d_j``.  Two kinds of
domains appear in the paper's scenarios:

* continuous real intervals (temperature in ``[-30, 50]`` degrees Celsius,
  humidity in ``[0, 100]`` percent, ...), and
* finite discrete domains (stock symbols, integer sensor ids, the small
  alphabetic domain of the paper's Example 5).

Both are modelled here behind the common :class:`Domain` interface.  The
domain size is the interval length for continuous domains and the number of
elements for discrete domains; it feeds the attribute-selectivity measures
A1 and A2 of the paper (``s_att = d_0 / d`` and ``s_att = d_0 * P_e(D_0) / d``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.errors import DomainError
from repro.core.intervals import Interval

__all__ = [
    "Domain",
    "ContinuousDomain",
    "IntegerDomain",
    "DiscreteDomain",
]


class Domain:
    """Abstract base class for attribute domains.

    A domain knows three things:

    * membership (``value in domain``),
    * its *size* ``d`` (a measure used by the selectivity measures), and
    * how to measure the size of a sub-interval or subset of itself.
    """

    #: ``True`` when the domain consists of finitely many enumerable values.
    is_discrete: bool = False

    @property
    def size(self) -> float:
        """Return the domain size ``d_j`` used by the selectivity measures."""
        raise NotImplementedError

    def __contains__(self, value: object) -> bool:
        raise NotImplementedError

    def full_interval(self) -> Interval:
        """Return an interval covering the whole domain."""
        raise NotImplementedError

    def measure(self, interval: Interval) -> float:
        """Return the size of ``interval`` restricted to this domain."""
        raise NotImplementedError

    def clamp(self, interval: Interval) -> Interval | None:
        """Intersect ``interval`` with the domain, or ``None`` when empty."""
        return self.full_interval().intersect(interval)

    def validate_value(self, value: object) -> None:
        """Raise :class:`DomainError` when ``value`` is not in the domain."""
        if value not in self:
            raise DomainError(f"value {value!r} is outside domain {self!r}")


@dataclass(frozen=True)
class ContinuousDomain(Domain):
    """A closed real interval ``[low, high]``.

    The domain size is the interval length ``high - low``, which matches the
    paper's Example 3 where the temperature domain ``[-30, 50]`` has size 80.
    """

    low: float
    high: float

    is_discrete = False

    def __post_init__(self) -> None:
        if not (math.isfinite(self.low) and math.isfinite(self.high)):
            raise DomainError("continuous domain bounds must be finite")
        if self.low >= self.high:
            raise DomainError(
                f"continuous domain requires low < high, got [{self.low}, {self.high}]"
            )

    @property
    def size(self) -> float:
        return float(self.high - self.low)

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        return self.low <= float(value) <= self.high

    def full_interval(self) -> Interval:
        return Interval.closed(self.low, self.high)

    def measure(self, interval: Interval) -> float:
        clipped = self.full_interval().intersect(interval)
        if clipped is None:
            return 0.0
        return float(clipped.high - clipped.low)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ContinuousDomain([{self.low}, {self.high}])"


@dataclass(frozen=True)
class IntegerDomain(Domain):
    """A finite set of consecutive integers ``{low, low + 1, ..., high}``."""

    low: int
    high: int

    is_discrete = True

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise DomainError(
                f"integer domain requires low <= high, got [{self.low}, {self.high}]"
            )

    @property
    def size(self) -> float:
        return float(self.high - self.low + 1)

    def __contains__(self, value: object) -> bool:
        if isinstance(value, bool) or not isinstance(value, int):
            return False
        return self.low <= value <= self.high

    def full_interval(self) -> Interval:
        return Interval.closed(self.low, self.high)

    def values(self) -> range:
        """Return the domain values in their natural ascending order."""
        return range(self.low, self.high + 1)

    def measure(self, interval: Interval) -> float:
        clipped = self.full_interval().intersect(interval)
        if clipped is None:
            return 0.0
        lo = math.ceil(clipped.low) if clipped.low_closed else math.floor(clipped.low) + 1
        hi = math.floor(clipped.high) if clipped.high_closed else math.ceil(clipped.high) - 1
        return float(max(0, hi - lo + 1))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"IntegerDomain([{self.low}, {self.high}])"


@dataclass(frozen=True)
class DiscreteDomain(Domain):
    """A finite, explicitly ordered set of values.

    The order of ``ordered_values`` defines the *natural order* of the domain
    used by natural-order search; the paper's Example 5 uses the alphabetic
    domain ``{a, b, c, d, e, f}``.  Values may be any hashable, comparable
    objects (strings, numbers, tuples).
    """

    ordered_values: tuple = field(default_factory=tuple)

    is_discrete = True

    def __init__(self, values: Iterable) -> None:
        ordered = tuple(values)
        if not ordered:
            raise DomainError("discrete domain needs at least one value")
        if len(set(ordered)) != len(ordered):
            raise DomainError("discrete domain values must be unique")
        object.__setattr__(self, "ordered_values", ordered)
        object.__setattr__(self, "_index", {v: i for i, v in enumerate(ordered)})

    @property
    def size(self) -> float:
        return float(len(self.ordered_values))

    def __contains__(self, value: object) -> bool:
        return value in self._index  # type: ignore[attr-defined]

    def index_of(self, value: object) -> int:
        """Return the position of ``value`` in the natural order."""
        try:
            return self._index[value]  # type: ignore[attr-defined]
        except KeyError as exc:
            raise DomainError(f"value {value!r} is outside domain {self!r}") from exc

    def values(self) -> Sequence:
        return self.ordered_values

    def full_interval(self) -> Interval:
        return Interval.closed(0, len(self.ordered_values) - 1)

    def measure(self, interval: Interval) -> float:
        """Measure an interval of *indexes* into the natural order."""
        clipped = self.full_interval().intersect(interval)
        if clipped is None:
            return 0.0
        lo = math.ceil(clipped.low) if clipped.low_closed else math.floor(clipped.low) + 1
        hi = math.floor(clipped.high) if clipped.high_closed else math.ceil(clipped.high) - 1
        return float(max(0, hi - lo + 1))

    def measure_values(self, values: Iterable) -> float:
        """Return the number of ``values`` that belong to the domain."""
        return float(sum(1 for v in values if v in self))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        preview = ", ".join(repr(v) for v in self.ordered_values[:4])
        if len(self.ordered_values) > 4:
            preview += ", ..."
        return f"DiscreteDomain({{{preview}}}, size={len(self.ordered_values)})"
