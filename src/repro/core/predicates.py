"""Predicate algebra for profiles.

A profile is a set of predicates over attributes (Section 3 of the paper).
The paper's prototype supports equality tests and don't-care values; range
and inequality tests are part of the general model ("inequality tests can be
translated to range tests").  This module provides the full predicate
algebra used by the library:

* :class:`Equals` — ``attribute = value``;
* :class:`RangePredicate` — ``attribute in [low, high]`` with open or closed
  endpoints, covering ``<``, ``<=``, ``>`` and ``>=`` via the convenience
  constructors;
* :class:`OneOf` — set containment over discrete domains;
* :class:`NotEquals` — inequality, represented for continuous domains as the
  complement range pair;
* :class:`DontCare` — the ``*`` of the paper: the attribute is not
  constrained.

Every predicate can report the subset of the attribute domain it accepts as
a list of :class:`~repro.core.intervals.Interval` (for ordered domains) or a
set of values (for discrete domains); the profile-tree builder uses this to
derive the at most ``2p - 1`` sub-ranges per attribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.domains import DiscreteDomain, Domain, IntegerDomain
from repro.core.errors import PredicateError
from repro.core.intervals import Interval

__all__ = [
    "Predicate",
    "Equals",
    "RangePredicate",
    "OneOf",
    "NotEquals",
    "DontCare",
    "DONT_CARE",
]


class Predicate:
    """Abstract base class of all predicates."""

    #: ``True`` for the don't-care predicate only.
    is_dont_care: bool = False

    def matches(self, value: object) -> bool:
        """Return ``True`` when the event ``value`` satisfies the predicate."""
        raise NotImplementedError

    def accepted_intervals(self, domain: Domain) -> list[Interval]:
        """Return the accepted subset of an ordered ``domain`` as intervals.

        For :class:`DiscreteDomain` attributes the intervals refer to indexes
        into the domain's natural order.
        """
        raise NotImplementedError

    def accepted_values(self, domain: Domain) -> list:
        """Return accepted values for a finite ``domain`` (discrete/integer)."""
        raise NotImplementedError

    def validate(self, domain: Domain) -> None:
        """Raise :class:`PredicateError` if incompatible with ``domain``."""

    def describe(self) -> str:
        """Return a short human-readable description."""
        raise NotImplementedError


@dataclass(frozen=True)
class Equals(Predicate):
    """Equality test ``attribute = value``."""

    value: object

    def matches(self, value: object) -> bool:
        return value == self.value

    def accepted_intervals(self, domain: Domain) -> list[Interval]:
        if isinstance(domain, DiscreteDomain):
            return [Interval.point(domain.index_of(self.value))]
        return [Interval.point(float(self.value))]  # type: ignore[arg-type]

    def accepted_values(self, domain: Domain) -> list:
        if isinstance(domain, DiscreteDomain):
            return [self.value] if self.value in domain else []
        if isinstance(domain, IntegerDomain):
            return [self.value] if self.value in domain else []
        raise PredicateError("accepted_values requires a finite domain")

    def validate(self, domain: Domain) -> None:
        if self.value not in domain:
            raise PredicateError(
                f"equality value {self.value!r} is outside the attribute domain"
            )

    def describe(self) -> str:
        return f"= {self.value!r}"


@dataclass(frozen=True)
class RangePredicate(Predicate):
    """Range test ``attribute in <interval>``.

    The convenience constructors cover the comparison operators the paper
    mentions (``<=``, ``>=``, ``<``, ``>``) by clamping the open side to the
    attribute domain when the predicate is attached to a profile.
    """

    interval: Interval

    # Sentinels for "unbounded" sides, resolved against the domain on use.
    _UNBOUNDED_LOW = float("-inf")
    _UNBOUNDED_HIGH = float("inf")

    @classmethod
    def between(
        cls,
        low: float,
        high: float,
        *,
        low_closed: bool = True,
        high_closed: bool = True,
    ) -> "RangePredicate":
        """Return the predicate ``low <op> attribute <op> high``."""
        return cls(Interval(low, high, low_closed, high_closed))

    @classmethod
    def at_least(cls, low: float) -> "RangePredicate":
        """Return ``attribute >= low`` (upper bound clamped to the domain)."""
        return cls(Interval(low, cls._UNBOUNDED_HIGH, True, True))

    @classmethod
    def greater_than(cls, low: float) -> "RangePredicate":
        """Return ``attribute > low``."""
        return cls(Interval(low, cls._UNBOUNDED_HIGH, False, True))

    @classmethod
    def at_most(cls, high: float) -> "RangePredicate":
        """Return ``attribute <= high`` (lower bound clamped to the domain)."""
        return cls(Interval(cls._UNBOUNDED_LOW, high, True, True))

    @classmethod
    def less_than(cls, high: float) -> "RangePredicate":
        """Return ``attribute < high``."""
        return cls(Interval(cls._UNBOUNDED_LOW, high, True, False))

    def matches(self, value: object) -> bool:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        return self.interval.contains(float(value))

    def _clamped(self, domain: Domain) -> Interval | None:
        if isinstance(domain, DiscreteDomain):
            raise PredicateError("range predicates require an ordered domain")
        return domain.full_interval().intersect(self.interval)

    def accepted_intervals(self, domain: Domain) -> list[Interval]:
        clamped = self._clamped(domain)
        return [clamped] if clamped is not None else []

    def accepted_values(self, domain: Domain) -> list:
        if not isinstance(domain, IntegerDomain):
            raise PredicateError("accepted_values requires a finite domain")
        clamped = self._clamped(domain)
        if clamped is None:
            return []
        return [v for v in domain.values() if clamped.contains(v)]

    def validate(self, domain: Domain) -> None:
        if isinstance(domain, DiscreteDomain):
            raise PredicateError(
                "range predicates are not supported on unordered discrete domains"
            )
        if self._clamped(domain) is None:
            raise PredicateError(
                f"range {self.interval} does not intersect the attribute domain"
            )

    def describe(self) -> str:
        return f"in {self.interval}"


@dataclass(frozen=True)
class OneOf(Predicate):
    """Set containment ``attribute in {v1, v2, ...}`` over finite domains."""

    values: tuple

    def __init__(self, values: Iterable) -> None:
        object.__setattr__(self, "values", tuple(dict.fromkeys(values)))
        if not self.values:
            raise PredicateError("OneOf needs at least one value")

    def matches(self, value: object) -> bool:
        return value in self.values

    def accepted_intervals(self, domain: Domain) -> list[Interval]:
        if isinstance(domain, DiscreteDomain):
            return [Interval.point(domain.index_of(v)) for v in self.values if v in domain]
        return [Interval.point(float(v)) for v in self.values]

    def accepted_values(self, domain: Domain) -> list:
        return [v for v in self.values if v in domain]

    def validate(self, domain: Domain) -> None:
        missing = [v for v in self.values if v not in domain]
        if missing:
            raise PredicateError(f"values {missing!r} are outside the attribute domain")

    def describe(self) -> str:
        return "in {" + ", ".join(repr(v) for v in self.values) + "}"


@dataclass(frozen=True)
class NotEquals(Predicate):
    """Inequality test ``attribute != value``.

    As the paper notes, inequality tests translate to range tests; the
    accepted set is the complement of the excluded point within the domain.
    """

    value: object

    def matches(self, value: object) -> bool:
        return value != self.value

    def accepted_intervals(self, domain: Domain) -> list[Interval]:
        if isinstance(domain, DiscreteDomain):
            return [
                Interval.point(i)
                for i, v in enumerate(domain.values())
                if v != self.value
            ]
        full = domain.full_interval()
        point = float(self.value)  # type: ignore[arg-type]
        pieces: list[Interval] = []
        if point > full.low:
            pieces.append(Interval(full.low, point, full.low_closed, False))
        if point < full.high:
            pieces.append(Interval(point, full.high, False, full.high_closed))
        if not pieces:
            # Domain is the single excluded point: nothing is accepted.
            return []
        return pieces

    def accepted_values(self, domain: Domain) -> list:
        if isinstance(domain, DiscreteDomain):
            return [v for v in domain.values() if v != self.value]
        if isinstance(domain, IntegerDomain):
            return [v for v in domain.values() if v != self.value]
        raise PredicateError("accepted_values requires a finite domain")

    def validate(self, domain: Domain) -> None:
        if self.value not in domain:
            raise PredicateError(
                f"inequality value {self.value!r} is outside the attribute domain"
            )

    def describe(self) -> str:
        return f"!= {self.value!r}"


class DontCare(Predicate):
    """The ``*`` predicate: the profile does not constrain the attribute."""

    is_dont_care = True

    def matches(self, value: object) -> bool:
        return True

    def accepted_intervals(self, domain: Domain) -> list[Interval]:
        return [domain.full_interval()]

    def accepted_values(self, domain: Domain) -> list:
        if isinstance(domain, DiscreteDomain):
            return list(domain.values())
        if isinstance(domain, IntegerDomain):
            return list(domain.values())
        raise PredicateError("accepted_values requires a finite domain")

    def describe(self) -> str:
        return "*"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "DontCare()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DontCare)

    def __hash__(self) -> int:
        return hash("DontCare")


#: Shared singleton instance for convenience.
DONT_CARE = DontCare()
