"""Fluent profile builder.

Profiles are conjunctions of per-attribute predicates (Section 3 of the
paper); hand-building them means spelling out a predicate mapping::

    Profile("P1", {"symbol": Equals("MSFT"),
                   "price": RangePredicate.between(10, 20)})

:func:`where` offers the same thing as a readable chain::

    where("symbol").eq("MSFT") & where("price").between(10, 20)

Each comparison method returns a :class:`ProfileBuilder`; builders
conjoin with ``&`` (or by chaining ``.where(...)``) and compile with
:meth:`ProfileBuilder.build` into a plain
:class:`~repro.core.profiles.Profile`.  Compilation is **bit-identical**
to the hand-built mapping: the builder stores the very predicate objects
the comparison methods create, in chain order, so the compiled profile's
``predicates`` mapping — and therefore every matcher's
:class:`~repro.matching.interfaces.MatchResult`, including operation
accounting — is indistinguishable from a hand-built profile (the test
suite locks this property with hypothesis across the tree, index and
auto engines).

A profile is a conjunction with at most one predicate per attribute, so
constraining the same attribute twice raises
:class:`~repro.core.errors.ProfileError` at build time rather than
silently overwriting.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.errors import ProfileError
from repro.core.predicates import (
    DONT_CARE,
    Equals,
    NotEquals,
    OneOf,
    Predicate,
    RangePredicate,
)
from repro.core.profiles import Profile

__all__ = ["AttributeClause", "ProfileBuilder", "build_profiles", "where"]


def where(attribute: str) -> "AttributeClause":
    """Start a fluent profile: ``where("price").between(10, 20)``."""
    return AttributeClause(attribute)


class AttributeClause:
    """One attribute awaiting its comparison (returned by :func:`where`).

    Every comparison method returns a :class:`ProfileBuilder` holding the
    accumulated predicates, so clauses chain and conjoin freely.
    """

    __slots__ = ("_attribute", "_base")

    def __init__(self, attribute: str, base: "ProfileBuilder | None" = None) -> None:
        if not attribute:
            raise ProfileError("attribute name must be a non-empty string")
        self._attribute = attribute
        self._base = base

    def _bind(self, predicate: Predicate) -> "ProfileBuilder":
        base = self._base if self._base is not None else ProfileBuilder()
        return base._with(self._attribute, predicate)

    # -- comparisons -----------------------------------------------------------
    def eq(self, value: object) -> "ProfileBuilder":
        """Equality: ``attribute = value``."""
        return self._bind(Equals(value))

    def ne(self, value: object) -> "ProfileBuilder":
        """Inequality: ``attribute != value``."""
        return self._bind(NotEquals(value))

    def one_of(self, *values: object) -> "ProfileBuilder":
        """Set containment: ``one_of("A", "B")`` or ``one_of(["A", "B"])``."""
        if len(values) == 1 and not isinstance(values[0], (str, bytes)):
            try:
                values = tuple(values[0])  # type: ignore[arg-type]
            except TypeError:
                pass
        return self._bind(OneOf(values))

    def between(
        self,
        low: float,
        high: float,
        *,
        low_closed: bool = True,
        high_closed: bool = True,
    ) -> "ProfileBuilder":
        """Range: ``low <= attribute <= high`` (open bounds via keywords)."""
        return self._bind(
            RangePredicate.between(low, high, low_closed=low_closed, high_closed=high_closed)
        )

    def at_least(self, low: float) -> "ProfileBuilder":
        """``attribute >= low``."""
        return self._bind(RangePredicate.at_least(low))

    def at_most(self, high: float) -> "ProfileBuilder":
        """``attribute <= high``."""
        return self._bind(RangePredicate.at_most(high))

    def greater_than(self, low: float) -> "ProfileBuilder":
        """``attribute > low``."""
        return self._bind(RangePredicate.greater_than(low))

    def less_than(self, high: float) -> "ProfileBuilder":
        """``attribute < high``."""
        return self._bind(RangePredicate.less_than(high))

    def any_value(self) -> "ProfileBuilder":
        """Explicit don't-care (the paper's ``*``) — documents intent."""
        return self._bind(DONT_CARE)

    def satisfies(self, predicate: Predicate) -> "ProfileBuilder":
        """Attach a ready-made :class:`Predicate` (escape hatch)."""
        if not isinstance(predicate, Predicate):
            raise ProfileError(
                f"satisfies() needs a Predicate, got {type(predicate).__name__}"
            )
        return self._bind(predicate)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"where({self._attribute!r})"


class ProfileBuilder:
    """Accumulated conjunction of per-attribute predicates."""

    __slots__ = ("_predicates",)

    def __init__(self, predicates: Mapping[str, Predicate] | None = None) -> None:
        self._predicates: dict[str, Predicate] = dict(predicates or {})

    def _with(self, attribute: str, predicate: Predicate) -> "ProfileBuilder":
        if attribute in self._predicates:
            raise ProfileError(
                f"attribute {attribute!r} is already constrained; a profile is a "
                "conjunction with at most one predicate per attribute"
            )
        merged = dict(self._predicates)
        merged[attribute] = predicate
        return ProfileBuilder(merged)

    def where(self, attribute: str) -> AttributeClause:
        """Continue the chain: ``where("a").eq(1).where("b").between(2, 3)``."""
        return AttributeClause(attribute, base=self)

    def __and__(self, other: "ProfileBuilder") -> "ProfileBuilder":
        """Conjoin two builders; overlapping attributes raise."""
        if not isinstance(other, ProfileBuilder):
            return NotImplemented
        merged = self
        for attribute, predicate in other._predicates.items():
            merged = merged._with(attribute, predicate)
        return merged

    # -- inspection ------------------------------------------------------------
    def predicates(self) -> dict[str, Predicate]:
        """Return a copy of the accumulated predicate mapping."""
        return dict(self._predicates)

    def constrained_attributes(self) -> list[str]:
        """Return the constrained attribute names, in chain order."""
        return [
            name
            for name, predicate in self._predicates.items()
            if not predicate.is_dont_care
        ]

    def __len__(self) -> int:
        return len(self._predicates)

    # -- compilation -----------------------------------------------------------
    def build(
        self,
        profile_id: str,
        *,
        subscriber: str | None = None,
        priority: int = 0,
    ) -> Profile:
        """Compile to a :class:`~repro.core.profiles.Profile`.

        The result is bit-identical to hand-building the profile with the
        same predicate mapping: the builder hands over its own predicate
        objects in chain order.
        """
        return Profile(
            profile_id,
            dict(self._predicates),
            subscriber=subscriber,
            priority=priority,
        )

    def __repr__(self) -> str:  # pragma: no cover - display helper
        parts = " & ".join(
            f"{name} {predicate.describe()}" for name, predicate in self._predicates.items()
        )
        return f"ProfileBuilder({parts or '*'})"


def build_profiles(
    builders: Iterable[ProfileBuilder],
    *,
    id_prefix: str = "profile",
    subscriber: str | None = None,
) -> list[Profile]:
    """Compile many builders with generated ids (``profile-1``, ...)."""
    return [
        builder.build(f"{id_prefix}-{index}", subscriber=subscriber)
        for index, builder in enumerate(builders, start=1)
    ]
