"""Attribute schemas.

The paper assumes a *firm set* ``A`` of attributes ``a_j`` (``j in [1, n]``)
with values in domains ``D_j``.  A :class:`Schema` captures this set with a
defined natural order of the attributes (the order used by the "natural"
attribute ordering baseline of the evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.domains import Domain
from repro.core.errors import SchemaError

__all__ = ["Attribute", "Schema"]


@dataclass(frozen=True)
class Attribute:
    """A named attribute with its value domain and optional unit.

    Example 1 of the paper defines ``a1: temperature`` with domain
    ``[-30, 50]`` in degrees Celsius.
    """

    name: str
    domain: Domain
    unit: str | None = None
    description: str | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError("attribute name must be a non-empty string")

    def __str__(self) -> str:  # pragma: no cover - display helper
        unit = f" [{self.unit}]" if self.unit else ""
        return f"{self.name}{unit}"


class Schema:
    """An ordered collection of attributes shared by events and profiles."""

    def __init__(self, attributes: Iterable[Attribute]) -> None:
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("a schema needs at least one attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        self._attributes: tuple[Attribute, ...] = attrs
        self._by_name: dict[str, Attribute] = {a.name: a for a in attrs}
        self._positions: dict[str, int] = {a.name: i for i, a in enumerate(attrs)}

    # -- container protocol --------------------------------------------------
    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, key: int | str) -> Attribute:
        if isinstance(key, int):
            return self._attributes[key]
        return self.attribute(key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    # -- accessors -------------------------------------------------------------
    @property
    def attributes(self) -> Sequence[Attribute]:
        """Return the attributes in their natural (schema) order."""
        return self._attributes

    @property
    def names(self) -> list[str]:
        """Return attribute names in natural order."""
        return [a.name for a in self._attributes]

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name``.

        Raises :class:`SchemaError` for unknown names so mistakes surface at
        the call site rather than as a ``KeyError`` deep inside the matcher.
        """
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise SchemaError(f"unknown attribute {name!r}; schema has {self.names}") from exc

    def domain(self, name: str) -> Domain:
        """Return the domain of attribute ``name``."""
        return self.attribute(name).domain

    def position(self, name: str) -> int:
        """Return the 0-based natural position of attribute ``name``."""
        self.attribute(name)
        return self._positions[name]

    def validate_assignment(self, values: Mapping[str, object]) -> None:
        """Check that ``values`` only uses known attributes with legal values."""
        for name, value in values.items():
            attribute = self.attribute(name)
            attribute.domain.validate_value(value)

    def reordered(self, names: Sequence[str]) -> "Schema":
        """Return a new schema with attributes permuted into ``names`` order."""
        if sorted(names) != sorted(self.names):
            raise SchemaError(
                f"reordering must be a permutation of {self.names}, got {list(names)}"
            )
        return Schema(self.attribute(name) for name in names)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Schema({', '.join(self.names)})"
