"""Once-per-process deprecation warnings.

The API redesign keeps the pre-facade entry points working behind thin
shims (:data:`repro.service.adaptive.ENGINES`, ``Broker(engine="...")``).
Each shim warns through :func:`warn_once`, so a process that still uses a
legacy entry point sees exactly one :class:`DeprecationWarning` per shim
instead of one per call — heavy-traffic pipelines must not pay a warning
(or a warning-registry lookup churn) per published event.

Tests reset the bookkeeping via :func:`reset_warnings` to assert the
exactly-once contract.
"""

from __future__ import annotations

import warnings

__all__ = ["reset_warnings", "warn_once", "warned_keys"]

_WARNED: set[str] = set()


def warn_once(key: str, message: str, *, stacklevel: int = 3) -> bool:
    """Emit ``message`` as a :class:`DeprecationWarning` once per process.

    ``key`` identifies the shim (e.g. ``"repro.service.adaptive.ENGINES"``);
    later calls with the same key are silent.  Returns ``True`` when the
    warning was actually emitted.
    """
    if key in _WARNED:
        return False
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True


def warned_keys() -> frozenset[str]:
    """Return the shim keys that have warned so far (for diagnostics)."""
    return frozenset(_WARNED)


def reset_warnings(*keys: str) -> None:
    """Forget emitted warnings (all of them, or just ``keys``) — test hook."""
    if keys:
        _WARNED.difference_update(keys)
    else:
        _WARNED.clear()
