"""Core data model: schemas, domains, events, predicates, profiles, sub-ranges.

This package implements the event/profile model of Section 3 of the paper:
events and profiles are collections of ``(attribute, value)`` pairs over a
firm attribute set, and each attribute's domain is decomposed into the at
most ``2p - 1`` sub-ranges referred to by the ``p`` profiles plus the
zero-subdomain ``D_0``.
"""

from repro.core.builder import AttributeClause, ProfileBuilder, build_profiles, where
from repro.core.domains import ContinuousDomain, DiscreteDomain, Domain, IntegerDomain
from repro.core.errors import (
    DistributionError,
    DomainError,
    EventError,
    ExperimentError,
    MatchingError,
    PredicateError,
    ProfileError,
    ReproError,
    RoutingError,
    SchemaError,
    SelectivityError,
    ServiceError,
    SimulationError,
    SubscriptionError,
    TreeConstructionError,
    WorkloadError,
)
from repro.core.events import Event
from repro.core.intervals import Interval, decompose_intervals
from repro.core.predicates import (
    DONT_CARE,
    DontCare,
    Equals,
    NotEquals,
    OneOf,
    Predicate,
    RangePredicate,
)
from repro.core.profiles import Profile, ProfileSet, profile
from repro.core.schema import Attribute, Schema
from repro.core.subranges import (
    AttributePartition,
    Subrange,
    build_partition,
    build_partitions,
)

__all__ = [
    "Attribute",
    "AttributeClause",
    "AttributePartition",
    "ContinuousDomain",
    "DiscreteDomain",
    "Domain",
    "DomainError",
    "DONT_CARE",
    "DontCare",
    "DistributionError",
    "Equals",
    "Event",
    "EventError",
    "ExperimentError",
    "IntegerDomain",
    "Interval",
    "MatchingError",
    "NotEquals",
    "OneOf",
    "Predicate",
    "PredicateError",
    "Profile",
    "ProfileBuilder",
    "ProfileError",
    "ProfileSet",
    "RangePredicate",
    "ReproError",
    "RoutingError",
    "Schema",
    "SchemaError",
    "SelectivityError",
    "ServiceError",
    "SimulationError",
    "Subrange",
    "SubscriptionError",
    "TreeConstructionError",
    "WorkloadError",
    "build_partition",
    "build_partitions",
    "build_profiles",
    "decompose_intervals",
    "profile",
    "where",
]
