"""Half-open/closed interval arithmetic.

Profile predicates over continuous and integer attributes are range tests.
Building the profile tree requires decomposing a set of (possibly
overlapping) ranges into the at most ``2p - 1`` disjoint sub-ranges the
paper describes, which in turn needs exact interval intersection, union
boundaries and containment with mixed open/closed endpoints (the paper's
Fig. 1 contains both ``[30, 35)`` and ``[35, 50]``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import DomainError

__all__ = ["Interval", "decompose_intervals"]


@dataclass(frozen=True, order=False)
class Interval:
    """A real interval with independently open or closed endpoints."""

    low: float
    high: float
    low_closed: bool = True
    high_closed: bool = True

    def __post_init__(self) -> None:
        if math.isnan(self.low) or math.isnan(self.high):
            raise DomainError("interval bounds must not be NaN")
        if self.low > self.high:
            raise DomainError(f"interval low {self.low} exceeds high {self.high}")
        if self.low == self.high and not (self.low_closed and self.high_closed):
            raise DomainError("degenerate interval must be closed on both sides")

    # -- constructors ------------------------------------------------------
    @classmethod
    def closed(cls, low: float, high: float) -> "Interval":
        """Return ``[low, high]``."""
        return cls(low, high, True, True)

    @classmethod
    def open(cls, low: float, high: float) -> "Interval":
        """Return ``(low, high)``."""
        return cls(low, high, False, False)

    @classmethod
    def closed_open(cls, low: float, high: float) -> "Interval":
        """Return ``[low, high)`` as used by the paper's Fig. 1 edges."""
        return cls(low, high, True, False)

    @classmethod
    def open_closed(cls, low: float, high: float) -> "Interval":
        """Return ``(low, high]``."""
        return cls(low, high, False, True)

    @classmethod
    def point(cls, value: float) -> "Interval":
        """Return the degenerate interval ``[value, value]``."""
        return cls(value, value, True, True)

    # -- predicates --------------------------------------------------------
    @property
    def is_point(self) -> bool:
        return self.low == self.high

    @property
    def length(self) -> float:
        return float(self.high - self.low)

    def contains(self, value: float) -> bool:
        """Return ``True`` when ``value`` lies inside the interval."""
        if value < self.low or value > self.high:
            return False
        if value == self.low and not self.low_closed:
            return False
        if value == self.high and not self.high_closed:
            return False
        return True

    __contains__ = contains

    def contains_interval(self, other: "Interval") -> bool:
        """Return ``True`` when ``other`` is entirely inside ``self``."""
        if other.low < self.low or other.high > self.high:
            return False
        if other.low == self.low and other.low_closed and not self.low_closed:
            return False
        if other.high == self.high and other.high_closed and not self.high_closed:
            return False
        return True

    def overlaps(self, other: "Interval") -> bool:
        """Return ``True`` when the two intervals share at least one point."""
        return self.intersect(other) is not None

    # -- set operations ----------------------------------------------------
    def intersect(self, other: "Interval") -> "Interval | None":
        """Return the intersection of two intervals, or ``None`` when empty."""
        if self.low > other.low or (self.low == other.low and not self.low_closed):
            low, low_closed = self.low, self.low_closed
        else:
            low, low_closed = other.low, other.low_closed
        if self.high < other.high or (self.high == other.high and not self.high_closed):
            high, high_closed = self.high, self.high_closed
        else:
            high, high_closed = other.high, other.high_closed
        if low > high:
            return None
        if low == high and not (low_closed and high_closed):
            return None
        return Interval(low, high, low_closed, high_closed)

    def midpoint(self) -> float:
        """Return a representative value inside the interval."""
        if self.is_point:
            return self.low
        return (self.low + self.high) / 2.0

    # -- ordering and display ----------------------------------------------
    def sort_key(self) -> tuple:
        """Natural ascending order key (by lower bound, closed before open)."""
        return (self.low, 0 if self.low_closed else 1, self.high, 0 if self.high_closed else 1)

    def __str__(self) -> str:
        left = "[" if self.low_closed else "("
        right = "]" if self.high_closed else ")"
        return f"{left}{_fmt(self.low)}, {_fmt(self.high)}{right}"

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Interval({self})"


def _fmt(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:g}"


def decompose_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Decompose overlapping intervals into disjoint elementary sub-ranges.

    Given the at most ``p`` ranges a profile set defines for one attribute,
    this returns the at most ``2p - 1`` non-overlapping sub-ranges that cover
    exactly the union of the inputs, such that each input interval equals a
    union of returned sub-ranges.  The result is ordered naturally
    (ascending lower bounds).

    This is the sub-range construction used by the tree algorithm of the
    paper (Section 3): e.g. profiles with ranges ``a1 >= 35`` and
    ``a1 >= 30`` produce the sub-ranges ``[30, 35)`` and ``[35, 50]`` seen in
    Fig. 1.
    """
    inputs = [iv for iv in intervals]
    if not inputs:
        return []

    # Collect boundary positions between elementary regions.  Each boundary
    # is a (value, offset) pair where offset 0 means "just before value" and
    # offset 1 means "just after value"; this keeps the open/closed endpoint
    # bookkeeping exact without epsilon arithmetic.
    points: set[tuple[float, int]] = set()
    for iv in inputs:
        points.add((iv.low, 0 if iv.low_closed else 1))
        points.add((iv.high, 1 if iv.high_closed else 0))
    boundaries = sorted(points)

    # Build elementary intervals spanning consecutive boundaries and keep
    # only those covered by at least one input interval.
    result: list[Interval] = []
    for (lo_v, lo_off), (hi_v, hi_off) in zip(boundaries, boundaries[1:]):
        low_closed = lo_off == 0
        high_closed = hi_off == 1
        if lo_v == hi_v:
            if low_closed and high_closed:
                candidate = Interval.point(lo_v)
            else:
                continue
        else:
            candidate = Interval(lo_v, hi_v, low_closed, high_closed)
        if any(iv.contains(candidate.midpoint()) for iv in inputs):
            result.append(candidate)

    # Handle single-boundary degenerate case (all inputs are the same point).
    if not result:
        only = boundaries[0][0]
        if any(iv.contains(only) for iv in inputs):
            result.append(Interval.point(only))

    # The elementary decomposition above can split the space more finely than
    # necessary (e.g. a closed endpoint introduces a point interval even when
    # no input distinguishes it).  Merge adjacent sub-ranges that are covered
    # by exactly the same set of inputs, which restores the minimal
    # ``<= 2p - 1`` decomposition.
    def cover_signature(iv: Interval) -> tuple[int, ...]:
        probe = iv.midpoint()
        return tuple(i for i, src in enumerate(inputs) if src.contains(probe))

    merged: list[Interval] = []
    for iv in sorted(result, key=Interval.sort_key):
        if merged:
            prev = merged[-1]
            adjacent = prev.high == iv.low and (prev.high_closed != iv.low_closed)
            if adjacent and cover_signature(prev) == cover_signature(iv):
                merged[-1] = Interval(prev.low, iv.high, prev.low_closed, iv.high_closed)
                continue
        merged.append(iv)
    return merged
