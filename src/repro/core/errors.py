"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "DomainError",
    "PredicateError",
    "ProfileError",
    "EventError",
    "DistributionError",
    "MatchingError",
    "TreeConstructionError",
    "SelectivityError",
    "ServiceError",
    "SubscriptionError",
    "DeliveryError",
    "DeliveryOverflowError",
    "StoreError",
    "StoreCorruptionError",
    "RoutingError",
    "SimulationError",
    "WorkloadError",
    "WorkloadSpecError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class SchemaError(ReproError):
    """A schema is malformed (duplicate attributes, unknown attribute, ...)."""


class DomainError(ReproError):
    """A value does not belong to an attribute domain, or a domain is invalid."""


class PredicateError(ReproError):
    """A predicate is malformed or incompatible with its attribute domain."""


class ProfileError(ReproError):
    """A profile is malformed (unknown attribute, conflicting predicates, ...)."""


class EventError(ReproError):
    """An event is malformed (missing attribute, value outside the domain, ...)."""


class DistributionError(ReproError):
    """A probability distribution is malformed or used incorrectly."""


class MatchingError(ReproError):
    """A matcher was used incorrectly (unbuilt index, unknown profile id, ...)."""


class TreeConstructionError(MatchingError):
    """The profile tree could not be constructed."""


class SelectivityError(ReproError):
    """A selectivity measure could not be evaluated."""


class ServiceError(ReproError):
    """Generic failure inside the event notification service layer."""


class SubscriptionError(ServiceError):
    """A subscription operation failed (duplicate id, unknown id, ...)."""


class DeliveryError(ServiceError):
    """A notification-delivery operation failed (closed executor, ...)."""


class DeliveryOverflowError(DeliveryError):
    """A bounded delivery queue overflowed under the ``"raise"`` policy."""


class StoreError(ServiceError):
    """A durable subscription-store operation failed (closed store, ...)."""


class StoreCorruptionError(StoreError):
    """A subscription store's journal or snapshot is corrupt beyond repair.

    A *torn tail* — the final record truncated by a crash mid-write — is
    not corruption: stores repair it silently on open.  This error means
    damage in the interior of the log, which replay cannot skip safely.
    """


class RoutingError(ServiceError):
    """A broker-network routing operation failed."""


class SimulationError(ReproError):
    """The discrete-event simulation was driven incorrectly."""


class WorkloadError(ReproError):
    """A workload specification is invalid."""


class WorkloadSpecError(WorkloadError):
    """A declarative scenario-profile file is invalid.

    ``key`` names the offending location as a dotted path into the file
    (e.g. ``"attributes.price.event_distribution"``), so a loader failure
    points at the exact table entry to fix.  The path is always part of
    ``str(error)`` too.
    """

    def __init__(self, key: str, message: str) -> None:
        super().__init__(f"{key}: {message}")
        self.key = key


class ExperimentError(ReproError):
    """An experiment definition or run is invalid."""
