"""Events.

An event is "the occurrence of a state transition at a certain point in
time", described as a collection of ``(attribute, value)`` pairs (Section 3
of the paper).  Events are immutable value objects; the optional timestamp
and source fields support the service and simulation layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.core.errors import EventError
from repro.core.schema import Schema

__all__ = ["Event"]


@dataclass(frozen=True)
class Event:
    """An immutable primitive event.

    Parameters
    ----------
    values:
        Mapping of attribute name to value, e.g.
        ``{"temperature": 30, "humidity": 90, "radiation": 2}`` (the event of
        Eq. (1) in the paper).
    timestamp:
        Logical or simulated occurrence time; ``0.0`` when not relevant.
    source:
        Identifier of the producing publisher or sensor, if any.
    """

    values: Mapping[str, object]
    timestamp: float = 0.0
    source: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", dict(self.values))
        if not self.values:
            raise EventError("an event needs at least one (attribute, value) pair")

    # -- mapping-style access ------------------------------------------------
    def __getitem__(self, attribute: str) -> object:
        try:
            return self.values[attribute]
        except KeyError as exc:
            raise EventError(
                f"event does not carry attribute {attribute!r}; it has {sorted(self.values)}"
            ) from exc

    def get(self, attribute: str, default: object = None) -> object:
        """Return the value of ``attribute`` or ``default`` when absent."""
        return self.values.get(attribute, default)

    def __contains__(self, attribute: object) -> bool:
        return attribute in self.values

    def __iter__(self) -> Iterator[str]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def attributes(self) -> list[str]:
        """Return the attribute names carried by the event."""
        return list(self.values)

    # -- validation ------------------------------------------------------------
    def validate(self, schema: Schema, *, require_all: bool = True) -> None:
        """Validate the event against ``schema``.

        Raises :class:`EventError` when the event uses unknown attributes,
        carries values outside their domains, or (with ``require_all``) omits
        a schema attribute.  The tree matcher requires complete events — every
        level of the profile tree probes one attribute — so ``require_all``
        defaults to ``True``.
        """
        for name, value in self.values.items():
            if name not in schema:
                raise EventError(f"event attribute {name!r} is not part of the schema")
            if value not in schema.domain(name):
                raise EventError(
                    f"event value {value!r} is outside the domain of attribute {name!r}"
                )
        if require_all:
            missing = [name for name in schema.names if name not in self.values]
            if missing:
                raise EventError(f"event is missing schema attributes {missing}")

    def restricted_to(self, names: list[str]) -> "Event":
        """Return a copy carrying only the attributes in ``names``."""
        kept = {n: v for n, v in self.values.items() if n in names}
        return Event(kept, timestamp=self.timestamp, source=self.source)

    def __str__(self) -> str:  # pragma: no cover - display helper
        pairs = ", ".join(f"{k}={v!r}" for k, v in self.values.items())
        return f"event({pairs})"
