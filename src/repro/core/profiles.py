"""Profiles (subscriptions) and profile sets.

A profile is a set of predicates over ``(attribute, value)`` pairs; a
profile matches an event when every specified predicate is satisfied
(attributes not mentioned are don't-care, written ``*`` in the paper).  The
set of profiles registered with an ENS is denoted ``P`` with ``|P| = p``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.errors import ProfileError
from repro.core.events import Event
from repro.core.predicates import DONT_CARE, Equals, Predicate
from repro.core.schema import Schema

__all__ = ["Profile", "ProfileSet", "profile"]


@dataclass(frozen=True)
class Profile:
    """A single user profile (subscription).

    Parameters
    ----------
    profile_id:
        Unique identifier within a :class:`ProfileSet` (e.g. ``"P1"``).
    predicates:
        Mapping of attribute name to :class:`~repro.core.predicates.Predicate`.
        Attributes absent from the mapping (or mapped to
        :data:`~repro.core.predicates.DONT_CARE`) are unconstrained.
    subscriber:
        Optional identifier of the subscribing user; used by the service
        layer for notification delivery and per-profile statistics.
    priority:
        Optional user-assigned priority; the paper's user-centric measures
        (V2/V3) favour "profiles with high priority", which in our workloads
        corresponds to profiles over frequent profile values.
    """

    profile_id: str
    predicates: Mapping[str, Predicate]
    subscriber: str | None = None
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.profile_id:
            raise ProfileError("profile_id must be a non-empty string")
        cleaned: dict[str, Predicate] = {}
        for name, predicate in dict(self.predicates).items():
            if not isinstance(predicate, Predicate):
                raise ProfileError(
                    f"predicate for attribute {name!r} must be a Predicate, "
                    f"got {type(predicate).__name__}"
                )
            cleaned[name] = predicate
        object.__setattr__(self, "predicates", cleaned)

    # -- predicate access -----------------------------------------------------
    def predicate(self, attribute: str) -> Predicate:
        """Return the predicate for ``attribute`` (don't-care when absent)."""
        return self.predicates.get(attribute, DONT_CARE)

    def constrains(self, attribute: str) -> bool:
        """Return ``True`` when the profile constrains ``attribute``."""
        pred = self.predicates.get(attribute)
        return pred is not None and not pred.is_dont_care

    def constrained_attributes(self) -> list[str]:
        """Return the names of all constrained attributes."""
        return [name for name in self.predicates if self.constrains(name)]

    # -- matching -------------------------------------------------------------
    def matches(self, event: Event) -> bool:
        """Return ``True`` when the event satisfies every predicate.

        This is the reference (oracle) semantics used by the naive matcher
        and by the test suite to validate the tree matcher.
        """
        for name, predicate in self.predicates.items():
            if predicate.is_dont_care:
                continue
            if name not in event:
                return False
            if not predicate.matches(event[name]):
                return False
        return True

    # -- validation -------------------------------------------------------------
    def validate(self, schema: Schema) -> None:
        """Validate all predicates against ``schema``."""
        for name, predicate in self.predicates.items():
            if name not in schema:
                raise ProfileError(
                    f"profile {self.profile_id!r} constrains unknown attribute {name!r}"
                )
            if not predicate.is_dont_care:
                try:
                    predicate.validate(schema.domain(name))
                except Exception as exc:
                    raise ProfileError(
                        f"profile {self.profile_id!r}, attribute {name!r}: {exc}"
                    ) from exc

    def __str__(self) -> str:  # pragma: no cover - display helper
        parts = []
        for name, predicate in self.predicates.items():
            parts.append(f"{name} {predicate.describe()}")
        body = "; ".join(parts) if parts else "*"
        return f"profile[{self.profile_id}]({body})"


def profile(
    profile_id: str,
    subscriber: str | None = None,
    priority: int = 0,
    **constraints: object,
) -> Profile:
    """Convenience constructor turning plain values into predicates.

    ``profile("P1", temperature=RangePredicate.at_least(35), humidity=90)``
    builds a profile where plain (non-:class:`Predicate`) values become
    equality tests and ``None`` becomes don't-care, mirroring the terse
    notation of the paper's examples.
    """
    predicates: dict[str, Predicate] = {}
    for name, value in constraints.items():
        if value is None:
            predicates[name] = DONT_CARE
        elif isinstance(value, Predicate):
            predicates[name] = value
        else:
            predicates[name] = Equals(value)
    return Profile(profile_id, predicates, subscriber=subscriber, priority=priority)


class ProfileSet:
    """The set ``P`` of profiles registered with the service.

    Profile ids are unique; insertion order is preserved (it defines the
    natural per-profile reporting order used by Fig. 5(b)).
    """

    def __init__(self, schema: Schema, profiles: Iterable[Profile] = ()) -> None:
        self._schema = schema
        self._profiles: dict[str, Profile] = {}
        for item in profiles:
            self.add(item)

    # -- mutation ---------------------------------------------------------------
    def add(self, item: Profile) -> None:
        """Add a profile, validating it against the schema."""
        if item.profile_id in self._profiles:
            raise ProfileError(f"duplicate profile id {item.profile_id!r}")
        item.validate(self._schema)
        self._profiles[item.profile_id] = item

    def remove(self, profile_id: str) -> Profile:
        """Remove and return the profile with ``profile_id``."""
        try:
            return self._profiles.pop(profile_id)
        except KeyError as exc:
            raise ProfileError(f"unknown profile id {profile_id!r}") from exc

    # -- access -----------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> Iterator[Profile]:
        return iter(self._profiles.values())

    def __contains__(self, profile_id: object) -> bool:
        return profile_id in self._profiles

    def get(self, profile_id: str) -> Profile:
        try:
            return self._profiles[profile_id]
        except KeyError as exc:
            raise ProfileError(f"unknown profile id {profile_id!r}") from exc

    def ids(self) -> list[str]:
        """Return all profile ids in insertion order."""
        return list(self._profiles)

    def profiles(self) -> Sequence[Profile]:
        """Return all profiles in insertion order."""
        return list(self._profiles.values())

    # -- reference matching -------------------------------------------------------
    def matching(self, event: Event) -> list[Profile]:
        """Return all profiles matching ``event`` (oracle semantics)."""
        return [p for p in self if p.matches(event)]

    def constrained_by_attribute(self, attribute: str) -> list[Profile]:
        """Return the profiles that constrain ``attribute``."""
        return [p for p in self if p.constrains(attribute)]

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"ProfileSet(p={len(self)}, schema={self._schema!r})"
