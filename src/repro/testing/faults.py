"""Deterministic fault injectors for crash-recovery and delivery tests.

Everything here is seeded or counted — never wall-clock or entropy
driven — so a failing test replays identically.  Three fault families:

* **Process kill between WAL records** — :class:`CrashingStore` wraps
  any :class:`~repro.service.durability.SubscriptionStore` and raises
  :class:`InjectedCrash` *before* the Nth journal write reaches the
  backend, exactly as a ``kill -9`` between two appends would look on
  disk; :func:`tear_wal_tail` additionally truncates a JSONL journal
  mid-record, the torn-tail shape a crash *during* an append leaves.
* **Sink faults** — :class:`FlakySink` fails its first N deliveries
  (optionally per notification), then heals; exercises the executors'
  retry budgets.
* **Endpoint faults** — :func:`flaky_transport` /
  :func:`dead_transport` / :func:`slow_transport` are drop-in
  ``WebhookConfig.transport`` callables simulating flaky-then-healthy,
  permanently dark and latency-injecting endpoints.
"""

from __future__ import annotations

import os
import threading
from collections import defaultdict
from pathlib import Path
from typing import Callable

from repro.service.durability.store import (
    DurabilityStats,
    RecoveredState,
    StoreRecord,
    SubscriptionStore,
)

__all__ = [
    "CrashingStore",
    "FlakySink",
    "InjectedCrash",
    "InjectedFault",
    "dead_transport",
    "flaky_transport",
    "slow_transport",
    "tear_wal_tail",
]


class InjectedFault(Exception):
    """A deliberately injected failure (sink or transport)."""


class InjectedCrash(InjectedFault):
    """A simulated process kill (raised instead of dying for real)."""


class CrashingStore:
    """Kill the process between two WAL records, deterministically.

    Wraps a real store and raises :class:`InjectedCrash` on the
    ``crash_after``-th append, *before* the record reaches the backend —
    the store then holds exactly the prefix a killed process would have
    journaled.  Reopen the **inner** store (or a fresh store over the
    same path) to recover, exactly like a restarted process would.

    The wrapper proxies the full :class:`SubscriptionStore` API, so a
    broker accepts it anywhere a store goes.
    """

    def __init__(self, inner: SubscriptionStore, *, crash_after: int) -> None:
        if crash_after < 1:
            raise ValueError("crash_after must be at least 1")
        self._inner = inner
        self._crash_after = crash_after
        self._appends = 0
        self.crashed = False

    @property
    def inner(self) -> SubscriptionStore:
        """The wrapped store (reopen it to simulate the restart)."""
        return self._inner

    # -- proxied store API ------------------------------------------------------
    @property
    def backend(self) -> str:
        return self._inner.backend

    @property
    def closed(self) -> bool:
        return self._inner.closed

    def open(self) -> RecoveredState:
        return self._inner.open()

    def append(self, op: str, subscription_id: str, **fields) -> StoreRecord:
        self._appends += 1
        if self._appends >= self._crash_after:
            self.crashed = True
            raise InjectedCrash(
                f"process killed before journal append #{self._appends}"
            )
        return self._inner.append(op, subscription_id, **fields)

    def flush(self) -> None:
        self._inner.flush()

    def compact(self) -> None:
        self._inner.compact()

    def close(self) -> None:
        if self.crashed:
            return  # a killed process never runs its close path
        self._inner.close()

    def entries(self):
        return self._inner.entries()

    def stats(self) -> DurabilityStats:
        return self._inner.stats()


def tear_wal_tail(path: str | os.PathLike, *, drop_bytes: int) -> int:
    """Truncate a JSONL WAL's final bytes (a crash mid-append).

    ``path`` is the store *directory* (as passed to ``JsonlWalStore``)
    or the ``wal.jsonl`` file itself.  Returns the resulting file size.
    """
    wal = Path(path)
    if wal.is_dir():
        wal = wal / "wal.jsonl"
    size = wal.stat().st_size
    if drop_bytes < 1 or drop_bytes >= size:
        raise ValueError(f"drop_bytes must be in [1, {size - 1}] for {wal}")
    with open(wal, "r+b") as handle:
        handle.truncate(size - drop_bytes)
    return size - drop_bytes


class FlakySink:
    """A sink failing its first ``failures`` calls, then delivering.

    ``per_notification=True`` scopes the failure count to each distinct
    notification (keyed by profile id + event values), which is what a
    retrying executor sees from a transiently failing subscriber.
    Thread-safe; records the successfully delivered notifications.
    """

    def __init__(self, *, failures: int, per_notification: bool = False) -> None:
        self._failures = failures
        self._per_notification = per_notification
        self._lock = threading.Lock()
        self._calls = 0
        self._per_key: dict[object, int] = defaultdict(int)
        self.delivered: list[object] = []

    @property
    def calls(self) -> int:
        with self._lock:
            return self._calls

    def __call__(self, notification) -> None:
        with self._lock:
            self._calls += 1
            if self._per_notification:
                key = (notification.profile_id, tuple(sorted(notification.event.values.items())))
                self._per_key[key] += 1
                seen = self._per_key[key]
            else:
                seen = self._calls
            if seen <= self._failures:
                raise InjectedFault(f"flaky sink failure #{seen}")
            self.delivered.append(notification)


def flaky_transport(
    *, failures_per_endpoint: int, record: list | None = None
) -> Callable[[str, bytes, float], None]:
    """A webhook transport failing each endpoint's first N posts.

    The flaky-then-healthy endpoint: deterministic, per endpoint.
    ``record`` (optional) collects ``(endpoint, payload)`` tuples of the
    successful posts.
    """
    lock = threading.Lock()
    seen: dict[str, int] = defaultdict(int)

    def transport(endpoint: str, payload: bytes, timeout: float) -> None:
        with lock:
            seen[endpoint] += 1
            count = seen[endpoint]
        if count <= failures_per_endpoint:
            raise InjectedFault(f"flaky endpoint {endpoint} failure #{count}")
        if record is not None:
            record.append((endpoint, payload))

    return transport


def dead_transport(
    *, dead_endpoints: set[str] | frozenset[str], record: list | None = None
) -> Callable[[str, bytes, float], None]:
    """A webhook transport where some endpoints never answer.

    Posts to ``dead_endpoints`` always raise; every other endpoint
    succeeds (collected into ``record`` when given).
    """
    lock = threading.Lock()

    def transport(endpoint: str, payload: bytes, timeout: float) -> None:
        if endpoint in dead_endpoints:
            raise InjectedFault(f"endpoint {endpoint} is dark")
        if record is not None:
            with lock:
                record.append((endpoint, payload))

    return transport


def slow_transport(
    *, delay: float, inner: Callable[[str, bytes, float], None] | None = None
) -> Callable[[str, bytes, float], None]:
    """A webhook transport adding a fixed real-time delay per post.

    Use sparingly (it really sleeps); pair with small delays to assert
    that slow endpoints stall only their own lane.
    """
    import time

    def transport(endpoint: str, payload: bytes, timeout: float) -> None:
        time.sleep(delay)
        if inner is not None:
            inner(endpoint, payload, timeout)

    return transport
