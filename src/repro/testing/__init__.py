"""``repro.testing`` — deterministic fault injection for robustness tests.

Seeded, counted injectors for the failure modes a production broker
meets: process kills between WAL records, torn journal tails, transient
sink exceptions, flaky or dark webhook endpoints.  Used by the
crash-recovery suite (``tests/service/test_crash_recovery.py``) and
available to downstream users testing their own deployments.
"""

from repro.testing.faults import (
    CrashingStore,
    FlakySink,
    InjectedCrash,
    InjectedFault,
    dead_transport,
    flaky_transport,
    slow_transport,
    tear_wal_tail,
)

__all__ = [
    "CrashingStore",
    "FlakySink",
    "InjectedCrash",
    "InjectedFault",
    "dead_transport",
    "flaky_transport",
    "slow_transport",
    "tear_wal_tail",
]
