"""Quenching (after the Elvin notification service).

The related work section cites Elvin's "quenching mechanism that discards
unneeded information without consuming resources": publishers are told which
events *cannot possibly* match any subscription, so they need not even be
sent to the broker.  In the vocabulary of this paper, an event is quenchable
when, for at least one attribute without don't-care subscribers, its value
falls into the zero-subdomain ``D_0`` — exactly the early-rejection
criterion that the attribute-selectivity measures exploit inside the tree,
applied here *before* filtering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.events import Event
from repro.core.profiles import ProfileSet
from repro.core.subranges import AttributePartition, build_partitions

__all__ = ["QuenchDecision", "Quencher"]


@dataclass(frozen=True)
class QuenchDecision:
    """Outcome of a quench test for one event."""

    quenched: bool
    #: The attribute that proved no profile can match, if any.
    rejecting_attribute: str | None = None


class Quencher:
    """Publisher-side filter suppressing events no subscription can match."""

    def __init__(self, profiles: ProfileSet) -> None:
        self._profiles = profiles
        self._partitions: Mapping[str, AttributePartition] = build_partitions(profiles)

    def refresh(self) -> None:
        """Recompute the coverage after subscriptions changed."""
        self._partitions = build_partitions(self._profiles)

    def partitions(self) -> Mapping[str, AttributePartition]:
        """Return the per-attribute coverage used by the quench test."""
        return dict(self._partitions)

    def decide(self, event: Event) -> QuenchDecision:
        """Return whether ``event`` can be dropped at the publisher.

        The event is quenchable when some attribute it carries has no
        don't-care subscriber and the event value lies on none of the
        defined sub-ranges (so every profile fails on that attribute).
        An empty profile set quenches everything.
        """
        if len(self._profiles) == 0:
            return QuenchDecision(True, None)
        for name, value in event.values.items():
            partition = self._partitions.get(name)
            if partition is None:
                continue
            if partition.dont_care_profile_ids:
                continue
            if partition.locate(value) is None:
                return QuenchDecision(True, name)
        return QuenchDecision(False, None)

    def quench(self, event: Event) -> bool:
        """Return ``True`` when the event should be suppressed."""
        return self.decide(event).quenched
