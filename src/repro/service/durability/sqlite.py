"""SQLite-backed subscription store.

Schema: a ``log`` table keyed by the journal sequence number and a
single-row ``snapshot`` table.  SQLite's own WAL journal mode gives the
crash-atomicity (a torn OS-level write never surfaces as a torn row),
so unlike the JSONL backend there is no tail repair to do — recovery
either sees a committed record or doesn't.  Record payloads reuse the
same JSON codec as the JSONL WAL so the two backends are
byte-comparable in tests.
"""

from __future__ import annotations

import json
import os
import sqlite3

from repro.core.errors import StoreCorruptionError
from repro.service.durability.store import (
    StoreRecord,
    SubscriptionEntry,
    SubscriptionStore,
)

__all__ = ["SqliteSubscriptionStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS log (
    seq INTEGER PRIMARY KEY,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS snapshot (
    id INTEGER PRIMARY KEY CHECK (id = 1),
    last_seq INTEGER NOT NULL,
    payload TEXT NOT NULL
);
"""


class SqliteSubscriptionStore(SubscriptionStore):
    """Durable subscription store backed by a single SQLite file."""

    backend = "sqlite"

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        snapshot_every: int | None = 1000,
    ) -> None:
        super().__init__(snapshot_every=snapshot_every)
        self._path = os.fspath(path)
        self._conn: sqlite3.Connection | None = None

    @property
    def path(self) -> str:
        """The store's database file."""
        return self._path

    def _ensure_conn(self) -> sqlite3.Connection:
        if self._conn is None:
            conn = sqlite3.connect(self._path)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            conn.commit()
            self._conn = conn
        return self._conn

    # -- backend hooks ----------------------------------------------------------
    def _write_record(self, record: StoreRecord) -> None:
        conn = self._ensure_conn()
        payload = json.dumps(
            record.to_payload(), sort_keys=True, separators=(",", ":")
        )
        conn.execute(
            "INSERT INTO log (seq, payload) VALUES (?, ?)", (record.seq, payload)
        )
        conn.commit()

    def _write_snapshot(self, entries: list[SubscriptionEntry], last_seq: int) -> None:
        conn = self._ensure_conn()
        payload = json.dumps(
            [entry.to_payload() for entry in entries],
            sort_keys=True,
            separators=(",", ":"),
        )
        with conn:  # one transaction: snapshot replace + log truncation
            conn.execute(
                "INSERT INTO snapshot (id, last_seq, payload) VALUES (1, ?, ?) "
                "ON CONFLICT (id) DO UPDATE SET last_seq = excluded.last_seq, "
                "payload = excluded.payload",
                (last_seq, payload),
            )
            conn.execute("DELETE FROM log WHERE seq <= ?", (last_seq,))

    def _load_raw(self):
        conn = self._ensure_conn()
        snapshot_entries: list[SubscriptionEntry] = []
        snapshot_seq = 0
        row = conn.execute(
            "SELECT last_seq, payload FROM snapshot WHERE id = 1"
        ).fetchone()
        if row is not None:
            try:
                snapshot_seq = int(row[0])
                snapshot_entries = [
                    SubscriptionEntry.from_payload(entry)
                    for entry in json.loads(row[1])
                ]
            except (ValueError, KeyError, TypeError) as exc:
                raise StoreCorruptionError(
                    f"snapshot in {self._path} is unreadable: {exc}"
                ) from exc
        tail: list[StoreRecord] = []
        for seq, payload in conn.execute(
            "SELECT seq, payload FROM log ORDER BY seq"
        ):
            try:
                record = StoreRecord.from_payload(json.loads(payload))
            except (ValueError, KeyError, TypeError) as exc:
                raise StoreCorruptionError(
                    f"journal row seq={seq} in {self._path} is unreadable: {exc}"
                ) from exc
            tail.append(record)
        return snapshot_entries, snapshot_seq, tail, 0

    def _sync(self) -> None:
        if self._conn is not None:
            self._conn.commit()
            # NORMAL synchronous + WAL checkpoints on demand: force one so
            # close()/flush() are real durability points.
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def _close_backend(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
