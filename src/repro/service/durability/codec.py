"""JSON codec for the durable subscription store.

Everything a broker must remember across a restart — profiles (with
their full predicate algebra), subscription metadata and journal records
— round-trips through plain JSON here, so every store backend (JSONL
WAL, SQLite, in-memory) shares one wire format and one integrity check.

Sinks are Python callables and therefore *not* durable, with one
deliberate exception: a :class:`~repro.service.delivery.webhook.WebhookSink`
is just an endpoint URL, so its endpoint is journaled and the sink is
reconstructed on replay.  All other sinks must be re-attached after
recovery via ``handle.deliver_to(...)``.

Integrity: every journal line carries a CRC-32 of its canonical JSON
encoding.  A record that fails the check at the *tail* of a log is a
torn write (crash mid-append) and is repaired by truncation; a failure
in the interior is :class:`~repro.core.errors.StoreCorruptionError`.
"""

from __future__ import annotations

import json
import zlib
from typing import Mapping

from repro.core.errors import StoreCorruptionError
from repro.core.intervals import Interval
from repro.core.predicates import (
    DONT_CARE,
    Equals,
    NotEquals,
    OneOf,
    Predicate,
    RangePredicate,
)
from repro.core.profiles import Profile

__all__ = [
    "decode_predicate",
    "decode_profile",
    "decode_record_line",
    "encode_predicate",
    "encode_profile",
    "encode_record_line",
]


# -- predicates ---------------------------------------------------------------
def encode_predicate(predicate: Predicate) -> dict:
    """Return a JSON-safe dict uniquely describing ``predicate``."""
    if predicate.is_dont_care:
        return {"kind": "dont_care"}
    if isinstance(predicate, Equals):
        return {"kind": "equals", "value": predicate.value}
    if isinstance(predicate, NotEquals):
        return {"kind": "not_equals", "value": predicate.value}
    if isinstance(predicate, OneOf):
        return {"kind": "one_of", "values": list(predicate.values)}
    if isinstance(predicate, RangePredicate):
        interval = predicate.interval
        return {
            "kind": "range",
            # JSON has no infinity literal; encode unbounded sides as null.
            "low": None if interval.low == float("-inf") else interval.low,
            "high": None if interval.high == float("inf") else interval.high,
            "low_closed": interval.low_closed,
            "high_closed": interval.high_closed,
        }
    raise StoreCorruptionError(
        f"predicate type {type(predicate).__name__} has no durable encoding; "
        "register a codec before persisting it"
    )


def decode_predicate(payload: Mapping) -> Predicate:
    """Rebuild a predicate from :func:`encode_predicate` output."""
    kind = payload.get("kind")
    if kind == "dont_care":
        return DONT_CARE
    if kind == "equals":
        return Equals(payload["value"])
    if kind == "not_equals":
        return NotEquals(payload["value"])
    if kind == "one_of":
        return OneOf(payload["values"])
    if kind == "range":
        low = payload["low"] if payload["low"] is not None else float("-inf")
        high = payload["high"] if payload["high"] is not None else float("inf")
        return RangePredicate(
            Interval(low, high, payload["low_closed"], payload["high_closed"])
        )
    raise StoreCorruptionError(f"unknown predicate kind {kind!r} in the store")


# -- profiles -----------------------------------------------------------------
def encode_profile(profile: Profile) -> dict:
    """Return a JSON-safe dict round-tripping ``profile`` exactly."""
    return {
        "profile_id": profile.profile_id,
        "predicates": {
            name: encode_predicate(predicate)
            for name, predicate in profile.predicates.items()
        },
        "subscriber": profile.subscriber,
        "priority": profile.priority,
    }


def decode_profile(payload: Mapping) -> Profile:
    """Rebuild a profile from :func:`encode_profile` output."""
    return Profile(
        payload["profile_id"],
        {
            name: decode_predicate(predicate)
            for name, predicate in payload["predicates"].items()
        },
        subscriber=payload.get("subscriber"),
        priority=payload.get("priority", 0),
    )


# -- journal framing ----------------------------------------------------------
def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def encode_record_line(payload: dict) -> str:
    """Frame one journal record: canonical JSON + CRC-32, one line."""
    body = _canonical(payload)
    crc = zlib.crc32(body.encode("utf-8"))
    return _canonical({"crc": crc, "record": payload}) + "\n"


def decode_record_line(line: str) -> dict | None:
    """Parse one journal line; ``None`` signals a torn (unverifiable) line.

    The caller decides whether ``None`` is a repairable torn tail (last
    line of the file) or interior corruption.
    """
    line = line.strip()
    if not line:
        return None
    try:
        framed = json.loads(line)
    except ValueError:
        return None
    if not isinstance(framed, dict) or "record" not in framed or "crc" not in framed:
        return None
    body = _canonical(framed["record"])
    if zlib.crc32(body.encode("utf-8")) != framed["crc"]:
        return None
    return framed["record"]
