"""Durable subscription state: journaling stores, snapshots, replay.

See :mod:`repro.service.durability.store` for the protocol and
``docs/durability.md`` for the recovery guarantees.
"""

from repro.service.durability.codec import (
    decode_predicate,
    decode_profile,
    decode_record_line,
    encode_predicate,
    encode_profile,
    encode_record_line,
)
from repro.service.durability.sqlite import SqliteSubscriptionStore
from repro.service.durability.store import (
    STORE_OPS,
    DurabilityStats,
    InMemorySubscriptionStore,
    RecoveredState,
    StoreRecord,
    SubscriptionEntry,
    SubscriptionStore,
    materialize,
)
from repro.service.durability.wal import JsonlWalStore

__all__ = [
    "STORE_OPS",
    "DurabilityStats",
    "InMemorySubscriptionStore",
    "JsonlWalStore",
    "RecoveredState",
    "SqliteSubscriptionStore",
    "StoreRecord",
    "SubscriptionEntry",
    "SubscriptionStore",
    "decode_predicate",
    "decode_profile",
    "decode_record_line",
    "encode_predicate",
    "encode_profile",
    "encode_record_line",
    "materialize",
]
