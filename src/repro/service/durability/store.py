"""The pluggable subscription store: journal, snapshot, replay.

A :class:`SubscriptionStore` makes a broker's subscription state durable
by journaling every life-cycle operation — subscribe, modify, pause,
resume, retarget, cancel — as an append-only sequence of
:class:`StoreRecord`\\ s, periodically folding the journal into a
snapshot (log compaction) so recovery never replays unbounded history.

The write path rides the broker's existing incremental-maintenance
seam: the broker applies the operation to its live engine first and
journals it before returning, so **an operation is durable exactly when
its call returns** (subject to the backend's sync policy; ``flush()``
and ``close()`` are always durable points).  Recovery materialises
snapshot + tail into an ordered list of :class:`SubscriptionEntry`
objects that ``FilterService(store=...)`` replays into any engine
family through the registry, resuming durable handles by id.

Three backends ship: :class:`InMemorySubscriptionStore` (tests, and the
protocol's reference semantics), the crash-safe JSONL write-ahead log
(:class:`~repro.service.durability.wal.JsonlWalStore`) and SQLite
(:class:`~repro.service.durability.sqlite.SqliteSubscriptionStore`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.errors import StoreCorruptionError, StoreError
from repro.core.profiles import Profile
from repro.service.durability.codec import decode_profile, encode_profile

__all__ = [
    "STORE_OPS",
    "DurabilityStats",
    "InMemorySubscriptionStore",
    "RecoveredState",
    "StoreRecord",
    "SubscriptionEntry",
    "SubscriptionStore",
]

#: Journaled subscription life-cycle operations.
STORE_OPS = ("subscribe", "modify", "pause", "resume", "retarget", "cancel")


@dataclass(frozen=True)
class StoreRecord:
    """One journaled subscription operation (the unit of the WAL)."""

    seq: int
    op: str
    subscription_id: str
    profile: Profile | None = None
    subscriber: str | None = None
    delivery: str | None = None
    #: Endpoint URL of a durable webhook sink (``None`` for in-process
    #: sinks, which cannot be persisted).
    endpoint: str | None = None

    def to_payload(self) -> dict:
        """Return the JSON-safe journal payload of this record."""
        payload: dict = {"seq": self.seq, "op": self.op, "sub": self.subscription_id}
        if self.profile is not None:
            payload["profile"] = encode_profile(self.profile)
        if self.subscriber is not None:
            payload["subscriber"] = self.subscriber
        if self.delivery is not None or self.op == "retarget":
            payload["delivery"] = self.delivery
        if self.endpoint is not None or self.op == "retarget":
            payload["endpoint"] = self.endpoint
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping) -> "StoreRecord":
        """Rebuild a record from :meth:`to_payload` output."""
        op = payload.get("op")
        if op not in STORE_OPS:
            raise StoreCorruptionError(f"unknown journal operation {op!r}")
        profile = payload.get("profile")
        return cls(
            seq=int(payload["seq"]),
            op=op,
            subscription_id=payload["sub"],
            profile=decode_profile(profile) if profile is not None else None,
            subscriber=payload.get("subscriber"),
            delivery=payload.get("delivery"),
            endpoint=payload.get("endpoint"),
        )


@dataclass(frozen=True)
class SubscriptionEntry:
    """The materialised durable state of one subscription."""

    subscription_id: str
    profile: Profile
    subscriber: str
    delivery: str | None = None
    endpoint: str | None = None
    paused: bool = False

    def to_payload(self) -> dict:
        payload: dict = {
            "sub": self.subscription_id,
            "profile": encode_profile(self.profile),
            "subscriber": self.subscriber,
            "paused": self.paused,
        }
        if self.delivery is not None:
            payload["delivery"] = self.delivery
        if self.endpoint is not None:
            payload["endpoint"] = self.endpoint
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SubscriptionEntry":
        return cls(
            subscription_id=payload["sub"],
            profile=decode_profile(payload["profile"]),
            subscriber=payload["subscriber"],
            delivery=payload.get("delivery"),
            endpoint=payload.get("endpoint"),
            paused=bool(payload.get("paused", False)),
        )


@dataclass(frozen=True)
class RecoveredState:
    """What :meth:`SubscriptionStore.open` hands the boot path."""

    #: Live subscriptions in original subscription order.
    entries: tuple[SubscriptionEntry, ...]
    #: Highest journal sequence number recovered (0 for a fresh store).
    last_seq: int
    #: Tail records replayed on top of the snapshot.
    replayed_records: int
    #: Torn tail records discarded during repair (crash mid-append).
    discarded_records: int


@dataclass(frozen=True)
class DurabilityStats:
    """One snapshot of a store's accounting, surfaced on ``ServiceStats``."""

    #: Backend name (``"memory"``, ``"jsonl"``, ``"sqlite"``).
    backend: str = "none"
    #: Highest journal sequence number ever assigned.
    last_seq: int = 0
    #: Records journaled by this process (excludes recovered history).
    appended: int = 0
    #: Journal records sitting after the snapshot (replayed on recovery).
    tail_records: int = 0
    #: Snapshot + log-compaction cycles taken by this process.
    snapshots: int = 0
    #: Records replayed from the store at boot.
    replayed_records: int = 0
    #: Subscriptions recovered at boot.
    recovered_subscriptions: int = 0
    #: Torn tail records discarded during open-time repair.
    discarded_records: int = 0


def materialize(
    snapshot_entries: list[SubscriptionEntry],
    snapshot_seq: int,
    tail: list[StoreRecord],
) -> tuple[dict[str, SubscriptionEntry], int]:
    """Fold tail records onto a snapshot, idempotently.

    Records at or below the snapshot's sequence number — or replayed
    twice (duplicate ``seq``) — are skipped, so feeding the same journal
    through twice converges on the same state.  Returns the entries (in
    subscription order) and the highest sequence number applied.
    """
    entries: dict[str, SubscriptionEntry] = {
        entry.subscription_id: entry for entry in snapshot_entries
    }
    applied_seq = snapshot_seq
    for record in tail:
        if record.seq <= applied_seq:
            continue  # duplicate or pre-snapshot record: replay is idempotent
        applied_seq = record.seq
        sid = record.subscription_id
        if record.op == "subscribe":
            entries[sid] = SubscriptionEntry(
                subscription_id=sid,
                profile=record.profile,
                subscriber=record.subscriber or "anonymous",
                delivery=record.delivery,
                endpoint=record.endpoint,
                paused=False,
            )
        elif record.op == "cancel":
            entries.pop(sid, None)
        else:
            current = entries.get(sid)
            if current is None:
                raise StoreCorruptionError(
                    f"journal applies {record.op!r} to unknown subscription {sid!r}"
                )
            if record.op == "modify":
                updated = SubscriptionEntry(
                    subscription_id=sid,
                    profile=record.profile,
                    subscriber=current.subscriber,
                    delivery=current.delivery,
                    endpoint=current.endpoint,
                    paused=current.paused,
                )
            elif record.op == "pause":
                updated = SubscriptionEntry(
                    **{**_entry_fields(current), "paused": True}
                )
            elif record.op == "resume":
                updated = SubscriptionEntry(
                    **{**_entry_fields(current), "paused": False}
                )
            else:  # retarget: re-pin delivery mode and/or webhook endpoint
                updated = SubscriptionEntry(
                    **{
                        **_entry_fields(current),
                        "delivery": record.delivery,
                        "endpoint": record.endpoint,
                    }
                )
            entries[sid] = updated
    return entries, applied_seq


def _entry_fields(entry: SubscriptionEntry) -> dict:
    return {
        "subscription_id": entry.subscription_id,
        "profile": entry.profile,
        "subscriber": entry.subscriber,
        "delivery": entry.delivery,
        "endpoint": entry.endpoint,
        "paused": entry.paused,
    }


class SubscriptionStore:
    """Base class of every durable subscription store.

    Subclasses implement the raw persistence hooks (``_write_record``,
    ``_write_snapshot``, ``_load_raw``, ``_sync``, ``_close_backend``);
    the sequencing, in-memory state mirror, auto-compaction policy and
    accounting live here so all backends behave identically.
    """

    backend = "abstract"

    def __init__(self, *, snapshot_every: int | None = 1000) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise StoreError("snapshot_every must be at least 1 (or None)")
        self._snapshot_every = snapshot_every
        self._entries: dict[str, SubscriptionEntry] = {}
        self._last_seq = 0
        self._snapshot_seq = 0
        self._tail_records = 0
        self._appended = 0
        self._snapshots = 0
        self._replayed_records = 0
        self._recovered = 0
        self._discarded = 0
        self._opened = False
        self._closed = False

    # -- backend hooks ----------------------------------------------------------
    def _write_record(self, record: StoreRecord) -> None:
        raise NotImplementedError

    def _write_snapshot(
        self, entries: list[SubscriptionEntry], last_seq: int
    ) -> None:
        """Persist the snapshot and truncate the journal atomically."""
        raise NotImplementedError

    def _load_raw(
        self,
    ) -> tuple[list[SubscriptionEntry], int, list[StoreRecord], int]:
        """Return (snapshot entries, snapshot seq, tail records, discarded)."""
        raise NotImplementedError

    def _sync(self) -> None:
        """Make everything written so far durable (fsync or equivalent)."""

    def _close_backend(self) -> None:
        """Release backend resources (file handles, connections)."""

    # -- life-cycle -------------------------------------------------------------
    def open(self) -> RecoveredState:
        """Load (repairing a torn tail) and return the recovered state."""
        if self._closed:
            raise StoreError("the subscription store is closed")
        if self._opened:
            raise StoreError("the subscription store is already open")
        snapshot_entries, snapshot_seq, tail, discarded = self._load_raw()
        entries, last_seq = materialize(snapshot_entries, snapshot_seq, tail)
        self._entries = entries
        self._last_seq = last_seq
        self._snapshot_seq = snapshot_seq
        self._tail_records = len(tail)
        self._replayed_records = len(tail)
        self._recovered = len(entries)
        self._discarded = discarded
        self._opened = True
        return RecoveredState(
            entries=tuple(entries.values()),
            last_seq=last_seq,
            replayed_records=len(tail),
            discarded_records=discarded,
        )

    def append(
        self,
        op: str,
        subscription_id: str,
        *,
        profile: Profile | None = None,
        subscriber: str | None = None,
        delivery: str | None = None,
        endpoint: str | None = None,
    ) -> StoreRecord:
        """Journal one operation; returns the sequenced record."""
        self._require_open()
        if op not in STORE_OPS:
            raise StoreError(
                f"unknown store operation {op!r}; expected one of {STORE_OPS}"
            )
        self._last_seq += 1
        record = StoreRecord(
            seq=self._last_seq,
            op=op,
            subscription_id=subscription_id,
            profile=profile,
            subscriber=subscriber,
            delivery=delivery,
            endpoint=endpoint,
        )
        self._write_record(record)
        self._entries, _ = materialize(
            list(self._entries.values()), record.seq - 1, [record]
        )
        self._appended += 1
        self._tail_records += 1
        if self._snapshot_every is not None and self._tail_records >= self._snapshot_every:
            self.compact()
        return record

    def compact(self) -> None:
        """Snapshot the current state and truncate the journal."""
        self._require_open()
        self._write_snapshot(list(self._entries.values()), self._last_seq)
        self._snapshot_seq = self._last_seq
        self._tail_records = 0
        self._snapshots += 1

    def flush(self) -> None:
        """Force everything journaled so far to durable storage."""
        self._require_open()
        self._sync()

    def close(self) -> None:
        """Flush and release the store (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._opened:
            self._sync()
        self._close_backend()

    # -- introspection ----------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def entries(self) -> tuple[SubscriptionEntry, ...]:
        """Return the store's materialised view (subscription order)."""
        return tuple(self._entries.values())

    def stats(self) -> DurabilityStats:
        """Return one snapshot of the store's accounting."""
        return DurabilityStats(
            backend=self.backend,
            last_seq=self._last_seq,
            appended=self._appended,
            tail_records=self._tail_records,
            snapshots=self._snapshots,
            replayed_records=self._replayed_records,
            recovered_subscriptions=self._recovered,
            discarded_records=self._discarded,
        )

    def _require_open(self) -> None:
        if self._closed:
            raise StoreError("the subscription store is closed")
        if not self._opened:
            raise StoreError("the subscription store is not open; call open() first")


class InMemorySubscriptionStore(SubscriptionStore):
    """Reference store: full journal semantics, no persistence.

    Useful in tests (exact protocol semantics without touching disk) and
    as the default when durability is not required but the journaling
    accounting is.  ``reopen()`` returns a fresh store sharing this
    store's buffers — the in-memory analogue of restarting a process on
    the same files — which is what the crash-recovery tests simulate.
    """

    backend = "memory"

    def __init__(self, *, snapshot_every: int | None = 1000) -> None:
        super().__init__(snapshot_every=snapshot_every)
        self._log: list[StoreRecord] = []
        self._snapshot: tuple[list[SubscriptionEntry], int] = ([], 0)

    def _write_record(self, record: StoreRecord) -> None:
        self._log.append(record)

    def _write_snapshot(self, entries: list[SubscriptionEntry], last_seq: int) -> None:
        self._snapshot = (list(entries), last_seq)
        self._log = [r for r in self._log if r.seq > last_seq]

    def _load_raw(self):
        entries, seq = self._snapshot
        return list(entries), seq, list(self._log), 0

    def reopen(self) -> "InMemorySubscriptionStore":
        """Return a fresh (unopened) store over the same buffers."""
        clone = InMemorySubscriptionStore(snapshot_every=self._snapshot_every)
        clone._log = self._log
        clone._snapshot = self._snapshot
        return clone
