"""Append-only JSONL write-ahead log with snapshot + compaction.

Layout: a directory holding ``wal.jsonl`` (one CRC-framed JSON record
per line, see :mod:`repro.service.durability.codec`) and
``snapshot.json`` (the folded subscription state up to some sequence
number).  Snapshots are written atomically — temp file, fsync, rename —
so a crash during compaction leaves either the old snapshot or the new
one, never a partial file.

Crash-safety of the journal itself: a process killed mid-append leaves
a *torn tail* — a final line that is incomplete or fails its CRC.
:meth:`JsonlWalStore.open` repairs this by truncating the file back to
the end of the last valid record (counted in
``DurabilityStats.discarded_records``).  A bad line *followed by valid
ones* cannot be a torn write and raises
:class:`~repro.core.errors.StoreCorruptionError`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.errors import StoreCorruptionError
from repro.service.durability.codec import (
    decode_record_line,
    encode_record_line,
)
from repro.service.durability.store import (
    StoreRecord,
    SubscriptionEntry,
    SubscriptionStore,
)

__all__ = ["JsonlWalStore"]

_WAL_NAME = "wal.jsonl"
_SNAPSHOT_NAME = "snapshot.json"


class JsonlWalStore(SubscriptionStore):
    """Durable subscription store backed by a JSONL WAL directory.

    ``fsync_on_append=True`` makes every :meth:`append` a durable point
    at the cost of one fsync per operation; the default syncs only on
    ``flush()``, ``compact()`` and ``close()``, trading a bounded window
    of recent operations for throughput (the classic group-commit
    trade-off).
    """

    backend = "jsonl"

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        snapshot_every: int | None = 1000,
        fsync_on_append: bool = False,
    ) -> None:
        super().__init__(snapshot_every=snapshot_every)
        self._dir = Path(path)
        self._fsync_on_append = fsync_on_append
        self._wal_file = None

    @property
    def path(self) -> Path:
        """The store's directory."""
        return self._dir

    # -- backend hooks ----------------------------------------------------------
    def _wal_path(self) -> Path:
        return self._dir / _WAL_NAME

    def _snapshot_path(self) -> Path:
        return self._dir / _SNAPSHOT_NAME

    def _ensure_wal_open(self):
        if self._wal_file is None:
            self._dir.mkdir(parents=True, exist_ok=True)
            self._wal_file = open(self._wal_path(), "a", encoding="utf-8")
        return self._wal_file

    def _write_record(self, record: StoreRecord) -> None:
        handle = self._ensure_wal_open()
        handle.write(encode_record_line(record.to_payload()))
        if self._fsync_on_append:
            handle.flush()
            os.fsync(handle.fileno())

    def _write_snapshot(self, entries: list[SubscriptionEntry], last_seq: int) -> None:
        # Flush the journal first so the snapshot never claims records
        # that a crash could make vanish from the log.
        if self._wal_file is not None:
            self._wal_file.flush()
            os.fsync(self._wal_file.fileno())
        self._dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "last_seq": last_seq,
            "entries": [entry.to_payload() for entry in entries],
        }
        tmp_path = self._snapshot_path().with_suffix(".json.tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self._snapshot_path())
        # The snapshot now covers every journaled record: restart the log.
        if self._wal_file is not None:
            self._wal_file.close()
        self._wal_file = open(self._wal_path(), "w", encoding="utf-8")
        self._wal_file.flush()
        os.fsync(self._wal_file.fileno())

    def _load_raw(self):
        snapshot_entries: list[SubscriptionEntry] = []
        snapshot_seq = 0
        snapshot_path = self._snapshot_path()
        if snapshot_path.exists():
            try:
                with open(snapshot_path, encoding="utf-8") as handle:
                    payload = json.load(handle)
                snapshot_seq = int(payload["last_seq"])
                snapshot_entries = [
                    SubscriptionEntry.from_payload(entry)
                    for entry in payload["entries"]
                ]
            except (ValueError, KeyError, TypeError) as exc:
                raise StoreCorruptionError(
                    f"snapshot {snapshot_path} is unreadable: {exc}"
                ) from exc

        tail: list[StoreRecord] = []
        discarded = 0
        wal_path = self._wal_path()
        if wal_path.exists():
            raw = wal_path.read_bytes()
            lines = raw.decode("utf-8", errors="replace").splitlines(keepends=True)
            valid_bytes = 0
            bad_interior = False
            for index, line in enumerate(lines):
                record_payload = decode_record_line(line)
                if record_payload is None:
                    # Only the *final* region of the file may be torn.
                    if any(
                        decode_record_line(later) is not None
                        for later in lines[index + 1 :]
                    ):
                        bad_interior = True
                    break
                tail.append(StoreRecord.from_payload(record_payload))
                valid_bytes += len(line.encode("utf-8"))
            if bad_interior:
                raise StoreCorruptionError(
                    f"journal {wal_path} has a corrupt interior record; "
                    "a torn tail would be repairable, this is not"
                )
            if valid_bytes < len(raw):
                discarded = len(lines) - len(tail)
                with open(wal_path, "r+b") as handle:
                    handle.truncate(valid_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
        return snapshot_entries, snapshot_seq, tail, discarded

    def _sync(self) -> None:
        if self._wal_file is not None:
            self._wal_file.flush()
            os.fsync(self._wal_file.fileno())

    def _close_backend(self) -> None:
        if self._wal_file is not None:
            self._wal_file.close()
            self._wal_file = None
