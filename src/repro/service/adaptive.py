"""The adaptive filter component.

Section 4 of the paper: the distribution-based algorithm "can either work
based on predefined distributions for the observed events, or it has to
maintain a history of events in order to determine the event distribution";
Section 1 promises "an adaptive filter component that optimizes the profile
tree for certain applications based on the data distributions".

:class:`AdaptiveFilterEngine` drives one matcher from the **engine
registry** (:mod:`repro.matching.registry`; the built-in families are
``tree`` and ``index``, ``"auto"`` arbitrates between every registered
family) and

* records every filtered event in a bounded
  :class:`~repro.distributions.estimation.EventHistory`,
* periodically (every ``reoptimize_interval`` events) estimates the current
  per-attribute event distributions from the history,
* asks the engine's :class:`~repro.matching.registry.EngineSpec` for a
  candidate — a restructured tree, a replanned index, or (``auto``) the
  cheapest candidate of *any* registered family under the shared
  comparison-count cost currency — and
* restructures/replans/switches when the analytical model predicts at
  least ``improvement_threshold`` relative improvement over the current
  matcher (restructuring has a cost, so marginal gains are ignored — the
  paper recommends reordering only "for systems with stable
  distributions").

Profile maintenance delegates to the wrapped matcher's incremental
``add_profile`` / ``remove_profile``, so subscription churn keeps the
history and adaptation state alive (the broker relies on this).

The pre-registry roster tuple ``ENGINES`` remains importable as a
deprecation shim; new code asks
:func:`repro.matching.registry.default_registry` (or the policy's own
registry) for :meth:`~repro.matching.registry.EngineRegistry.engine_names`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.deprecation import warn_once
from repro.core.errors import MatchingError, ServiceError
from repro.core.events import Event
from repro.core.profiles import Profile, ProfileSet
from repro.distributions.base import Distribution
from repro.distributions.estimation import EventHistory
from repro.matching.index.kernel import KernelStats
from repro.matching.interfaces import Matcher, MatchResult
from repro.matching.registry import (
    AUTO_ENGINE,
    EngineContext,
    EngineRegistry,
    EngineSpec,
    default_registry,
)
from repro.matching.tree.config import SearchStrategy, TreeConfiguration
from repro.matching.tree.matcher import TreeMatcher
from repro.selectivity.attribute_measures import AttributeMeasure
from repro.selectivity.value_measures import ValueMeasure

__all__ = [
    "AdaptationPolicy",
    "AdaptationRecord",
    "AdaptiveFilterEngine",
    "resolve_policy_engine",
]


def __getattr__(name: str):
    if name == "ENGINES":
        # Deprecation shim: the hard-coded roster tuple became the engine
        # registry.  Computed on access so third-party registrations show.
        warn_once(
            "repro.service.adaptive.ENGINES",
            "repro.service.adaptive.ENGINES is deprecated; use "
            "repro.matching.registry.default_registry().engine_names()",
        )
        return default_registry().engine_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class AdaptationPolicy:
    """Tuning knobs of the adaptive filter component."""

    #: Value-selectivity measure used when re-optimising (tree engine only).
    value_measure: ValueMeasure = ValueMeasure.V1_EVENT
    #: Attribute-selectivity measure used when re-optimising.  The tree
    #: engine accepts any measure; the index engine ranks its probe order
    #: with it and supports NATURAL/A1/A2 (A3 is a whole-tree measure) —
    #: each family declares its supported measures on its registry spec.
    attribute_measure: AttributeMeasure = AttributeMeasure.A2_ZERO_PROBABILITY
    #: Node search strategy of the rebuilt tree (tree engine only).
    search: SearchStrategy = SearchStrategy.LINEAR
    #: Re-optimisation is considered every this many filtered events.
    reoptimize_interval: int = 1000
    #: Minimum number of observed events before the first re-optimisation.
    warmup_events: int = 200
    #: Minimum relative improvement (predicted) required to restructure.
    improvement_threshold: float = 0.05
    #: Length of the sliding event history window.
    history_length: int = 10_000
    #: Which matcher the engine drives: the name of any family registered
    #: with the engine registry (built-ins: ``"tree"``, the paper's
    #: profile tree restructured via the TreeOptimizer, and ``"index"``,
    #: the predicate-index matcher replanned via the IndexPlanner) or
    #: ``"auto"`` (starts on the registry's preferred family and, at every
    #: re-optimisation, switches to whichever registered family the cost
    #: models predict to be cheaper under the current history
    #: distributions).
    engine: str = "tree"
    #: Hysteresis of the ``auto`` arbitration: after an applied
    #: family switch, further switches are suppressed for
    #: this many re-optimisation checks, so an alternating workload does
    #: not thrash expensive family rebuilds every interval.  Suppressed
    #: decisions are still recorded (``AdaptationRecord.suppressed``);
    #: same-family restructures/replans are never held back.  ``0``
    #: disables the cooldown.
    switch_cooldown_intervals: int = 2
    #: Columnar batch-kernel cutover for families with a batch kernel
    #: (today: the index family).  ``None`` defers to the registry
    #: entry's default and ultimately to
    #: :data:`repro.matching.index.kernel.MIN_COLUMNAR_BATCH`; smaller
    #: values push smaller batches into the columnar kernel.
    min_columnar_batch: int | None = None
    #: Shard count for partition-parallel families (today: the
    #: ``sharded`` family, which partitions the profile population over
    #: this many predicate-index shards).  ``None`` leaves the family on
    #: its cores-based default
    #: (:func:`repro.matching.sharded.default_shard_count`); ignored by
    #: unsharded families.
    shard_count: int | None = None
    #: Engine roster consulted for validation, construction and the
    #: ``auto`` arbitration.  ``None`` uses the process-wide
    #: :func:`~repro.matching.registry.default_registry`; passing a
    #: custom :class:`~repro.matching.registry.EngineRegistry` keeps
    #: experiment-local engines out of the global roster.
    registry: EngineRegistry | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        roster = self.engine_registry
        try:
            roster.validate_engine(self.engine)
        except MatchingError as exc:
            raise ServiceError(str(exc)) from exc
        for spec in self._selected_specs():
            if (
                spec.supported_measures is not None
                and self.attribute_measure not in spec.supported_measures
            ):
                raise ServiceError(
                    f"the {self.engine} engine cannot rank by measure "
                    f"{self.attribute_measure.value!r}; the {spec.name} family "
                    f"supports: {[m.value for m in spec.supported_measures]}"
                )
        if self.reoptimize_interval <= 0:
            raise ServiceError("reoptimize_interval must be positive")
        if self.warmup_events < 0:
            raise ServiceError("warmup_events must be non-negative")
        if not 0.0 <= self.improvement_threshold < 1.0:
            raise ServiceError("improvement_threshold must lie in [0, 1)")
        if self.history_length <= 0:
            raise ServiceError("history_length must be positive")
        if self.switch_cooldown_intervals < 0:
            raise ServiceError("switch_cooldown_intervals must be non-negative")
        if self.min_columnar_batch is not None and self.min_columnar_batch < 0:
            raise ServiceError("min_columnar_batch must be non-negative")
        if self.shard_count is not None and self.shard_count < 1:
            raise ServiceError("shard_count must be at least 1")

    @property
    def engine_registry(self) -> EngineRegistry:
        """Return the roster this policy resolves engine names against."""
        return self.registry if self.registry is not None else default_registry()

    def _selected_specs(self) -> list[EngineSpec]:
        """Return the specs the chosen engine may drive (all, for auto)."""
        roster = self.engine_registry
        if self.engine == AUTO_ENGINE:
            return roster.arbitrating_specs()
        return [roster.spec(self.engine)]


@dataclass(frozen=True)
class AdaptationRecord:
    """One re-optimisation decision (for observability and tests)."""

    event_count: int
    predicted_current: float
    predicted_candidate: float
    applied: bool
    configuration_label: str
    #: Matcher family the decision selected (a registry name, e.g.
    #: ``"tree"`` or ``"index"``).  For the fixed engines this is simply
    #: the engine itself; for ``engine="auto"`` it exposes which family
    #: the arbitration chose (``applied`` says whether a
    #: switch/restructure actually happened).
    engine: str = ""
    #: ``True`` when the arbitration *wanted* to switch matcher families
    #: but the switch cooldown held it back (``applied`` is then False);
    #: see :attr:`AdaptationPolicy.switch_cooldown_intervals`.
    suppressed: bool = False

    @property
    def predicted_improvement(self) -> float:
        """Return the predicted relative improvement of the candidate."""
        if self.predicted_current <= 0:
            return 0.0
        return 1.0 - self.predicted_candidate / self.predicted_current


class AdaptiveFilterEngine:
    """A registry-driven matcher that restructures itself from history."""

    def __init__(
        self,
        profiles: ProfileSet,
        *,
        policy: AdaptationPolicy | None = None,
        initial_configuration: TreeConfiguration | None = None,
    ) -> None:
        self.policy = policy or AdaptationPolicy()
        self.profiles = profiles
        self._registry = self.policy.engine_registry
        self._initial_configuration = initial_configuration
        if self.policy.engine == AUTO_ENGINE:
            # ``auto`` starts on the registry's preferred family (the
            # cheaper build; the built-in roster starts on the index
            # matcher) and lets the first re-optimisation arbitrate the
            # families from history.
            spec = self._registry.auto_start()
        else:
            spec = self._registry.spec(self.policy.engine)
        self._matcher: Matcher = spec.factory(self._context_for(spec))
        self._history = EventHistory(profiles.schema, max_length=self.policy.history_length)
        self._events_filtered = 0
        self._events_at_last_check = 0
        self._adaptations: list[AdaptationRecord] = []
        #: Re-optimisation checks left before the auto arbitration may
        #: switch matcher families again (hysteresis).
        self._switch_cooldown = 0
        #: Kernel stats of matcher instances retired by replans/switches;
        #: :meth:`kernel_stats` folds the live matcher's stats on top.
        self._retired_kernel_stats = KernelStats()

    def _context_for(self, spec: EngineSpec) -> EngineContext:
        """Build the spec-callback context, resolving per-spec defaults."""
        min_columnar = self.policy.min_columnar_batch
        if min_columnar is None:
            min_columnar = spec.min_columnar_batch
        return EngineContext(
            profiles=self.profiles,
            attribute_measure=self.policy.attribute_measure,
            value_measure=self.policy.value_measure,
            search=self.policy.search,
            initial_configuration=self._initial_configuration,
            min_columnar_batch=min_columnar,
            shard_count=self.policy.shard_count,
        )

    def _adopt_matcher(self, matcher: Matcher) -> None:
        """Install a (possibly new) matcher, preserving kernel accounting."""
        if matcher is not self._matcher:
            stats = getattr(self._matcher, "kernel_stats", None)
            if stats is not None:
                self._retired_kernel_stats.merge(stats)
            self._matcher = matcher

    # -- delegation ---------------------------------------------------------------
    @property
    def matcher(self) -> Matcher:
        """Return the wrapped matcher (whatever family is running)."""
        return self._matcher

    @property
    def registry(self) -> EngineRegistry:
        """Return the engine roster this engine resolves families against."""
        return self._registry

    @property
    def engine_family(self) -> str | None:
        """Return the registry name of the running matcher's family."""
        spec = self._registry.owner_of(self._matcher)
        return spec.name if spec is not None else None

    @property
    def history(self) -> EventHistory:
        """Return the sliding event history."""
        return self._history

    @property
    def configuration(self) -> TreeConfiguration:
        if not isinstance(self._matcher, TreeMatcher):
            raise ServiceError("the index engine has no tree configuration")
        return self._matcher.configuration

    def adaptations(self) -> list[AdaptationRecord]:
        """Return every re-optimisation decision taken so far."""
        return list(self._adaptations)

    def kernel_stats(self) -> KernelStats:
        """Return executed-work batch-kernel accounting across the engine's
        whole life, including matcher instances retired by replanning."""
        total = KernelStats().merge(self._retired_kernel_stats)
        live = getattr(self._matcher, "kernel_stats", None)
        if live is not None:
            total.merge(live)
        return total

    def add_profile(self, profile: Profile) -> None:
        """Register a profile (delegates to the matcher)."""
        self._matcher.add_profile(profile)

    def add_profiles(self, profiles: Iterable[Profile]) -> None:
        """Register a batch of profiles via the matcher's batch path.

        One structure rebuild for the rebuild-style families (tree,
        counting) instead of one per profile; the index family applies its
        per-profile postings deltas either way.
        """
        self._matcher.add_profiles(profiles)

    def remove_profile(self, profile_id: str) -> None:
        """Unregister a profile (delegates to the matcher)."""
        self._matcher.remove_profile(profile_id)

    # -- filtering ----------------------------------------------------------------
    def match(self, event: Event) -> MatchResult:
        """Filter one event, record it, and re-optimise when due."""
        result = self._matcher.match(event)
        self._history.observe(event)
        self._events_filtered += 1
        if self._reoptimisation_due():
            self._consider_reoptimisation()
        return result

    def match_batch(self, events: Iterable[Event]) -> list[MatchResult]:
        """Filter a sequence of events with the same re-optimisation cadence.

        Equivalent to calling :meth:`match` per event — re-optimisation may
        restructure the matcher mid-batch, exactly as in the sequential
        path — but the events *between* two re-optimisation points are
        forwarded in one :meth:`Matcher.match_batch` call, so large batches
        (e.g. from :meth:`repro.service.broker.Broker.publish_batch`) reach
        the index family's columnar kernel
        (:mod:`repro.matching.index.kernel`) instead of degrading to the
        per-event loop.  Chunking at the next due re-optimisation keeps
        the cadence exact: within a chunk no check could fire anyway.
        """
        events = events if isinstance(events, list) else list(events)
        results: list[MatchResult] = []
        position = 0
        while position < len(events):
            # The next check can only fire once the filtered-event count
            # reaches both the warmup and the interval since the last
            # check, so everything before that point is one safe chunk.
            next_due = max(
                self.policy.warmup_events,
                self._events_at_last_check + self.policy.reoptimize_interval,
            )
            take = max(1, next_due - self._events_filtered)
            chunk = events[position : position + take]
            results.extend(self._matcher.match_batch(chunk))
            observe = self._history.observe
            for event in chunk:
                observe(event)
            self._events_filtered += len(chunk)
            if self._reoptimisation_due():
                self._consider_reoptimisation()
            position += len(chunk)
        return results

    def _reoptimisation_due(self) -> bool:
        if self._events_filtered < self.policy.warmup_events:
            return False
        return (
            self._events_filtered - self._events_at_last_check
            >= self.policy.reoptimize_interval
        )

    # -- re-optimisation ---------------------------------------------------------------
    def estimated_event_distributions(self) -> Mapping[str, Distribution]:
        """Return per-attribute distributions estimated from the history."""
        distributions: dict[str, Distribution] = {}
        for attribute in self.profiles.schema:
            counter = self._history.counter(attribute.name)
            if counter.total == 0:
                raise ServiceError(
                    f"no observations recorded for attribute {attribute.name!r}"
                )
            distributions[attribute.name] = counter.to_distribution()
        return distributions

    def _consider_reoptimisation(self) -> None:
        self._events_at_last_check = self._events_filtered
        if len(self.profiles) == 0:
            # Nothing to optimise (every subscription is paused); the
            # engine keeps filtering and recording history.
            return
        try:
            distributions = self.estimated_event_distributions()
        except ServiceError:
            return
        if self.policy.engine == AUTO_ENGINE:
            self._consider_auto(distributions)
            return
        spec = self._registry.spec(self.policy.engine)
        if spec.reoptimize is None:
            # The family opted out of periodic restructuring (common for
            # third-party engines); the engine just keeps filtering.
            return
        proposal = spec.reoptimize(self._context_for(spec), self._matcher, distributions)
        if proposal is None:
            return
        improvement = (
            1.0 - proposal.predicted_candidate / proposal.predicted_current
            if proposal.predicted_current > 0
            else 0.0
        )
        applied = improvement >= self.policy.improvement_threshold
        if applied:
            self._adopt_matcher(proposal.install())
        self._adaptations.append(
            AdaptationRecord(
                event_count=self._events_filtered,
                predicted_current=proposal.predicted_current,
                predicted_candidate=proposal.predicted_candidate,
                applied=applied,
                configuration_label=proposal.label,
                engine=spec.name,
            )
        )

    def _consider_auto(self, distributions: Mapping[str, Distribution]) -> None:
        """Arbitrate between the registered families (``engine="auto"``).

        The decision rule: ask every registry spec with a cost estimator
        for its best candidate in the paper's common currency (expected
        comparison operations per event) under the current history
        distributions — the built-in index side through the
        :class:`~repro.matching.index.planner.IndexPlanner` estimate, the
        tree side through
        :func:`repro.analysis.cost_model.expected_tree_cost` of the
        :class:`~repro.selectivity.optimizer.TreeOptimizer`'s candidate
        configuration — and adopt the cheapest family when it improves on
        the current matcher's predicted cost by at least
        ``improvement_threshold``.  Ties fall to the lower
        :attr:`~repro.matching.registry.EngineSpec.auto_rank` (the index
        family, on the built-in roster).  The chosen family is exposed as
        :attr:`AdaptationRecord.engine`.

        Caveat inherited from the cost models: both built-in sides count
        comparison steps, but the counting family charges nothing for its
        counter bookkeeping (see the baselines benchmark), so the
        arbitration is biased the same way the paper's operation metric
        is.

        **Hysteresis.**  An applied family switch arms a cooldown of
        :attr:`AdaptationPolicy.switch_cooldown_intervals` further checks
        during which another switch is suppressed (recorded with
        ``suppressed=True``), so a workload oscillating around the
        cost-model break-even point does not rebuild a family per
        interval.  Same-family improvements (an index replan or a tree
        restructure) stay available throughout.
        """
        matcher = self._matcher
        cooldown_active = self._switch_cooldown > 0
        if cooldown_active:
            # This check elapses one cooldown interval (but is itself
            # still suppressed: arming N suppresses exactly N checks).
            self._switch_cooldown -= 1

        current_spec = self._registry.owner_of(matcher)
        best = None
        best_spec = None
        for spec in self._registry.arbitrating_specs():
            candidate = spec.candidate(self._context_for(spec), matcher, distributions)
            if candidate is None:
                continue
            if best is None or candidate.cost < best.cost:
                best, best_spec = candidate, spec
        if best is None:
            return

        if current_spec is not None and current_spec.current_cost is not None:
            predicted_current = current_spec.current_cost(matcher, distributions)
        else:
            # An unknown (or cost-less) family cannot be compared, so any
            # finite candidate is treated as an improvement.
            predicted_current = float("inf")
        improvement = (
            1.0 - best.cost / predicted_current if predicted_current > 0 else 0.0
        )
        applied = improvement >= self.policy.improvement_threshold
        is_switch = current_spec is None or best_spec.name != current_spec.name
        suppressed = False
        if applied and is_switch and cooldown_active:
            applied = False
            suppressed = True
        if applied:
            self._adopt_matcher(best.install())
            if is_switch:
                self._switch_cooldown = self.policy.switch_cooldown_intervals
        self._adaptations.append(
            AdaptationRecord(
                event_count=self._events_filtered,
                predicted_current=predicted_current,
                predicted_candidate=best.cost,
                applied=applied,
                configuration_label=f"auto:{best.label}",
                engine=best.family,
                suppressed=suppressed,
            )
        )


def resolve_policy_engine(
    policy: AdaptationPolicy | None, engine: str | None
) -> AdaptationPolicy:
    """Resolve an ``engine=`` name against an optional policy.

    The single site reconciling the two ways of choosing an engine
    (used by :class:`~repro.service.broker.Broker` and
    :class:`repro.api.FilterService`): raises on a conflict, otherwise
    returns a policy whose ``engine`` is the requested one — validation
    happens in the policy's ``__post_init__`` (the single registry
    lookup).
    """
    if engine is not None and policy is not None and policy.engine != engine:
        raise ServiceError(
            f"conflicting engine choice: engine={engine!r} but the adaptation "
            f"policy selects {policy.engine!r}; set one or the other"
        )
    if policy is None:
        policy = AdaptationPolicy() if engine is None else AdaptationPolicy(engine=engine)
    return policy
