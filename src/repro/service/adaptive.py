"""The adaptive filter component.

Section 4 of the paper: the distribution-based algorithm "can either work
based on predefined distributions for the observed events, or it has to
maintain a history of events in order to determine the event distribution";
Section 1 promises "an adaptive filter component that optimizes the profile
tree for certain applications based on the data distributions".

:class:`AdaptiveFilterEngine` wraps one matcher from its roster (``tree``,
``index`` or ``auto`` — see :data:`ENGINES`) and

* records every filtered event in a bounded
  :class:`~repro.distributions.estimation.EventHistory`,
* periodically (every ``reoptimize_interval`` events) estimates the current
  per-attribute event distributions from the history,
* derives a candidate from the configured value/attribute measures — a
  tree configuration via the
  :class:`~repro.selectivity.optimizer.TreeOptimizer`, an index plan via
  the :class:`~repro.matching.index.planner.IndexPlanner`, or (``auto``)
  the cheaper of both families under the shared comparison-count cost
  currency, and
* restructures/replans/switches when the analytical model predicts at
  least ``improvement_threshold`` relative improvement over the current
  matcher (restructuring has a cost, so marginal gains are ignored — the
  paper recommends reordering only "for systems with stable
  distributions").

Profile maintenance delegates to the wrapped matcher's incremental
``add_profile`` / ``remove_profile``, so subscription churn keeps the
history and adaptation state alive (the broker relies on this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.analysis.cost_model import expected_tree_cost
from repro.core.errors import ReproError, ServiceError
from repro.core.events import Event
from repro.core.subranges import build_partitions
from repro.core.profiles import Profile, ProfileSet
from repro.distributions.base import Distribution
from repro.distributions.estimation import EventHistory
from repro.matching.index.matcher import PredicateIndexMatcher
from repro.matching.index.planner import IndexPlanner
from repro.matching.interfaces import MatchResult
from repro.matching.tree.builder import build_tree
from repro.matching.tree.config import SearchStrategy, TreeConfiguration
from repro.matching.tree.matcher import TreeMatcher
from repro.selectivity.attribute_measures import AttributeMeasure
from repro.selectivity.optimizer import TreeOptimizer
from repro.selectivity.value_measures import ValueMeasure

__all__ = ["AdaptationPolicy", "AdaptationRecord", "AdaptiveFilterEngine"]

#: Matcher roster of the adaptive engine: policy.engine selects one.
#: ``"auto"`` arbitrates between the tree and index families at every
#: re-optimisation (see :meth:`AdaptiveFilterEngine._consider_auto`).
ENGINES = ("tree", "index", "auto")


@dataclass(frozen=True)
class AdaptationPolicy:
    """Tuning knobs of the adaptive filter component."""

    #: Value-selectivity measure used when re-optimising (tree engine only).
    value_measure: ValueMeasure = ValueMeasure.V1_EVENT
    #: Attribute-selectivity measure used when re-optimising.  The tree
    #: engine accepts any measure; the index engine ranks its probe order
    #: with it and supports NATURAL/A1/A2 (A3 is a whole-tree measure).
    attribute_measure: AttributeMeasure = AttributeMeasure.A2_ZERO_PROBABILITY
    #: Node search strategy of the rebuilt tree (tree engine only).
    search: SearchStrategy = SearchStrategy.LINEAR
    #: Re-optimisation is considered every this many filtered events.
    reoptimize_interval: int = 1000
    #: Minimum number of observed events before the first re-optimisation.
    warmup_events: int = 200
    #: Minimum relative improvement (predicted) required to restructure.
    improvement_threshold: float = 0.05
    #: Length of the sliding event history window.
    history_length: int = 10_000
    #: Which matcher the engine drives: ``"tree"`` (the paper's profile
    #: tree, restructured via the TreeOptimizer), ``"index"`` (the
    #: predicate-index matcher, replanned via the IndexPlanner) or
    #: ``"auto"`` (starts on the index matcher and, at every
    #: re-optimisation, switches to whichever family the cost models
    #: predict to be cheaper under the current history distributions).
    engine: str = "tree"
    #: Hysteresis of the ``auto`` arbitration: after an applied
    #: tree<->index family switch, further switches are suppressed for
    #: this many re-optimisation checks, so an alternating workload does
    #: not thrash expensive family rebuilds every interval.  Suppressed
    #: decisions are still recorded (``AdaptationRecord.suppressed``);
    #: same-family restructures/replans are never held back.  ``0``
    #: disables the cooldown.
    switch_cooldown_intervals: int = 2

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ServiceError(f"unknown engine {self.engine!r}; expected one of {ENGINES}")
        if (
            self.engine in ("index", "auto")
            and self.attribute_measure not in IndexPlanner.SUPPORTED_MEASURES
        ):
            raise ServiceError(
                f"the {self.engine} engine cannot rank by measure "
                f"{self.attribute_measure.value!r}; "
                f"supported: {[m.value for m in IndexPlanner.SUPPORTED_MEASURES]}"
            )
        if self.reoptimize_interval <= 0:
            raise ServiceError("reoptimize_interval must be positive")
        if self.warmup_events < 0:
            raise ServiceError("warmup_events must be non-negative")
        if not 0.0 <= self.improvement_threshold < 1.0:
            raise ServiceError("improvement_threshold must lie in [0, 1)")
        if self.history_length <= 0:
            raise ServiceError("history_length must be positive")
        if self.switch_cooldown_intervals < 0:
            raise ServiceError("switch_cooldown_intervals must be non-negative")


@dataclass(frozen=True)
class AdaptationRecord:
    """One re-optimisation decision (for observability and tests)."""

    event_count: int
    predicted_current: float
    predicted_candidate: float
    applied: bool
    configuration_label: str
    #: Matcher family the decision selected: ``"tree"`` or ``"index"``.
    #: For the fixed engines this is simply the engine itself; for
    #: ``engine="auto"`` it exposes which family the arbitration chose
    #: (``applied`` says whether a switch/restructure actually happened).
    engine: str = ""
    #: ``True`` when the arbitration *wanted* to switch matcher families
    #: but the switch cooldown held it back (``applied`` is then False);
    #: see :attr:`AdaptationPolicy.switch_cooldown_intervals`.
    suppressed: bool = False

    @property
    def predicted_improvement(self) -> float:
        """Return the predicted relative improvement of the candidate."""
        if self.predicted_current <= 0:
            return 0.0
        return 1.0 - self.predicted_candidate / self.predicted_current


class AdaptiveFilterEngine:
    """A tree matcher that restructures itself from the observed history."""

    def __init__(
        self,
        profiles: ProfileSet,
        *,
        policy: AdaptationPolicy | None = None,
        initial_configuration: TreeConfiguration | None = None,
    ) -> None:
        self.policy = policy or AdaptationPolicy()
        self.profiles = profiles
        self._matcher: TreeMatcher | PredicateIndexMatcher
        if self.policy.engine in ("index", "auto"):
            # ``initial_configuration``, value_measure and search are
            # tree-shape knobs with no index analogue; the attribute
            # measure transfers and drives the probe order.  ``auto``
            # starts on the index matcher (the cheaper build) and lets the
            # first re-optimisation arbitrate the families from history.
            self._matcher = PredicateIndexMatcher(
                profiles,
                planner=IndexPlanner(attribute_measure=self.policy.attribute_measure),
            )
        else:
            self._matcher = TreeMatcher(profiles, initial_configuration)
        self._history = EventHistory(profiles.schema, max_length=self.policy.history_length)
        self._events_filtered = 0
        self._events_at_last_check = 0
        self._adaptations: list[AdaptationRecord] = []
        #: Re-optimisation checks left before the auto arbitration may
        #: switch matcher families again (hysteresis).
        self._switch_cooldown = 0

    # -- delegation ---------------------------------------------------------------
    @property
    def matcher(self) -> TreeMatcher | PredicateIndexMatcher:
        """Return the wrapped matcher (tree or predicate index)."""
        return self._matcher

    @property
    def history(self) -> EventHistory:
        """Return the sliding event history."""
        return self._history

    @property
    def configuration(self) -> TreeConfiguration:
        if not isinstance(self._matcher, TreeMatcher):
            raise ServiceError("the index engine has no tree configuration")
        return self._matcher.configuration

    def adaptations(self) -> list[AdaptationRecord]:
        """Return every re-optimisation decision taken so far."""
        return list(self._adaptations)

    def add_profile(self, profile: Profile) -> None:
        """Register a profile (delegates to the matcher)."""
        self._matcher.add_profile(profile)

    def add_profiles(self, profiles: Iterable[Profile]) -> None:
        """Register a batch of profiles via the matcher's batch path.

        One structure rebuild for the rebuild-style families (tree,
        counting) instead of one per profile; the index family applies its
        per-profile postings deltas either way.
        """
        self._matcher.add_profiles(profiles)

    def remove_profile(self, profile_id: str) -> None:
        """Unregister a profile (delegates to the matcher)."""
        self._matcher.remove_profile(profile_id)

    # -- filtering ----------------------------------------------------------------
    def match(self, event: Event) -> MatchResult:
        """Filter one event, record it, and re-optimise when due."""
        result = self._matcher.match(event)
        self._history.observe(event)
        self._events_filtered += 1
        if self._reoptimisation_due():
            self._consider_reoptimisation()
        return result

    def match_batch(self, events: Iterable[Event]) -> list[MatchResult]:
        """Filter a sequence of events with the same re-optimisation cadence.

        Equivalent to calling :meth:`match` per event — re-optimisation may
        restructure the matcher mid-batch, exactly as in the sequential
        path — but the events *between* two re-optimisation points are
        forwarded in one :meth:`Matcher.match_batch` call, so large batches
        (e.g. from :meth:`repro.service.broker.Broker.publish_batch`) reach
        the index family's columnar kernel
        (:mod:`repro.matching.index.kernel`) instead of degrading to the
        per-event loop.  Chunking at the next due re-optimisation keeps
        the cadence exact: within a chunk no check could fire anyway.
        """
        events = events if isinstance(events, list) else list(events)
        results: list[MatchResult] = []
        position = 0
        while position < len(events):
            # The next check can only fire once the filtered-event count
            # reaches both the warmup and the interval since the last
            # check, so everything before that point is one safe chunk.
            next_due = max(
                self.policy.warmup_events,
                self._events_at_last_check + self.policy.reoptimize_interval,
            )
            take = max(1, next_due - self._events_filtered)
            chunk = events[position : position + take]
            results.extend(self._matcher.match_batch(chunk))
            observe = self._history.observe
            for event in chunk:
                observe(event)
            self._events_filtered += len(chunk)
            if self._reoptimisation_due():
                self._consider_reoptimisation()
            position += len(chunk)
        return results

    def _reoptimisation_due(self) -> bool:
        if self._events_filtered < self.policy.warmup_events:
            return False
        return (
            self._events_filtered - self._events_at_last_check
            >= self.policy.reoptimize_interval
        )

    # -- re-optimisation ---------------------------------------------------------------
    def estimated_event_distributions(self) -> Mapping[str, Distribution]:
        """Return per-attribute distributions estimated from the history."""
        distributions: dict[str, Distribution] = {}
        for attribute in self.profiles.schema:
            counter = self._history.counter(attribute.name)
            if counter.total == 0:
                raise ServiceError(
                    f"no observations recorded for attribute {attribute.name!r}"
                )
            distributions[attribute.name] = counter.to_distribution()
        return distributions

    def _consider_reoptimisation(self) -> None:
        self._events_at_last_check = self._events_filtered
        try:
            distributions = self.estimated_event_distributions()
        except ServiceError:
            return
        if self.policy.engine == "auto":
            self._consider_auto(distributions)
            return
        if isinstance(self._matcher, PredicateIndexMatcher):
            self._consider_index_replan(distributions)
            return
        candidate, candidate_tree, predicted_candidate = self._tree_candidate(
            distributions, self._matcher.partitions()
        )
        predicted_current = expected_tree_cost(
            self._matcher.tree, distributions
        ).operations_per_event
        improvement = (
            1.0 - predicted_candidate / predicted_current if predicted_current > 0 else 0.0
        )
        applied = improvement >= self.policy.improvement_threshold
        if applied:
            # Install the tree already built for costing — no second build.
            self._matcher.adopt(candidate_tree, candidate)
        self._adaptations.append(
            AdaptationRecord(
                event_count=self._events_filtered,
                predicted_current=predicted_current,
                predicted_candidate=predicted_candidate,
                applied=applied,
                configuration_label=candidate.label,
                engine="tree",
            )
        )

    def _tree_candidate(self, distributions, partitions):
        """Cost the optimizer's candidate tree under ``distributions``.

        Shared by the pure-tree path and the ``auto`` arbitration so both
        use one costing recipe.  Returns ``(configuration, tree,
        operations_per_event)``; the built tree is returned so an applied
        decision can adopt it instead of rebuilding.
        """
        partitions = dict(partitions)
        optimizer = TreeOptimizer(self.profiles, distributions, partitions=partitions)
        candidate = optimizer.configuration(
            value_measure=self.policy.value_measure,
            attribute_measure=self.policy.attribute_measure,
            search=self.policy.search,
        )
        candidate_tree = build_tree(self.profiles, candidate, partitions=partitions)
        cost = expected_tree_cost(candidate_tree, distributions).operations_per_event
        return candidate, candidate_tree, cost

    def _consider_index_replan(self, distributions: Mapping[str, Distribution]) -> None:
        """Index-engine variant: replan the buckets from the history.

        The current plan and a fresh distribution-aware plan are both costed
        under the estimated distributions; the matcher is rebuilt only when
        the planner predicts at least ``improvement_threshold`` relative
        improvement, mirroring the tree path's restructuring economics.
        """
        matcher = self._matcher
        assert isinstance(matcher, PredicateIndexMatcher)
        # One cheap recosting pass yields both sides of the comparison; the
        # replanned matcher is only built when the improvement is applied.
        recosted = matcher.recost_plans(distributions)
        predicted_current = 0.0
        predicted_candidate = 0.0
        for attribute, candidate_plan in recosted.items():
            current_plan = matcher.plan.plan_for(attribute)
            current_uses_index = (
                current_plan.use_index if current_plan is not None else candidate_plan.use_index
            )
            predicted_current += (
                candidate_plan.index_cost if current_uses_index else candidate_plan.scan_cost
            )
            predicted_candidate += candidate_plan.chosen_cost
        improvement = (
            1.0 - predicted_candidate / predicted_current if predicted_current > 0 else 0.0
        )
        applied = improvement >= self.policy.improvement_threshold
        if applied:
            self._matcher = PredicateIndexMatcher(
                self.profiles,
                planner=IndexPlanner(
                    distributions, attribute_measure=matcher.planner.attribute_measure
                ),
            )
        indexed = sum(1 for plan in recosted.values() if plan.use_index)
        self._adaptations.append(
            AdaptationRecord(
                event_count=self._events_filtered,
                predicted_current=predicted_current,
                predicted_candidate=predicted_candidate,
                applied=applied,
                configuration_label=f"index[{indexed} indexed, P_e estimated]",
                engine="index",
            )
        )

    def _consider_auto(self, distributions: Mapping[str, Distribution]) -> None:
        """Arbitrate between the matcher families (``engine="auto"``).

        The decision rule: cost the best candidate of *each* family in the
        paper's common currency (expected comparison operations per event)
        under the current history distributions — the index side through
        the :class:`~repro.matching.index.planner.IndexPlanner` estimate,
        the tree side through
        :func:`repro.analysis.cost_model.expected_tree_cost` of the
        :class:`~repro.selectivity.optimizer.TreeOptimizer`'s candidate
        configuration — and adopt the cheaper family when it improves on
        the current matcher's predicted cost by at least
        ``improvement_threshold``.  The chosen family is exposed as
        :attr:`AdaptationRecord.engine`.

        Caveat inherited from the cost models: both sides count comparison
        steps, but the counting family charges nothing for its counter
        bookkeeping (see the baselines benchmark), so the arbitration is
        biased the same way the paper's operation metric is.

        **Hysteresis.**  An applied family switch arms a cooldown of
        :attr:`AdaptationPolicy.switch_cooldown_intervals` further checks
        during which another switch is suppressed (recorded with
        ``suppressed=True``), so a workload oscillating around the
        cost-model break-even point does not rebuild a family per
        interval.  Same-family improvements (an index replan or a tree
        restructure) stay available throughout.
        """
        matcher = self._matcher
        measure = self.policy.attribute_measure
        cooldown_active = self._switch_cooldown > 0
        if cooldown_active:
            # This check elapses one cooldown interval (but is itself
            # still suppressed: arming N suppresses exactly N checks).
            self._switch_cooldown -= 1

        # Index-family candidate, costed without building anything: a cheap
        # recost of the live buckets when the index is already running, the
        # bucket-free :meth:`IndexPlanner.plan_profiles` estimate otherwise.
        # The candidate matcher itself is only built if the decision is
        # applied.
        if isinstance(matcher, PredicateIndexMatcher):
            recosted = matcher.recost_plans(distributions)
            index_cost = sum(plan.chosen_cost for plan in recosted.values())
            predicted_current = matcher.estimated_cost(distributions)
        else:
            index_plans = IndexPlanner(
                distributions, attribute_measure=measure
            ).plan_profiles(self.profiles)
            index_cost = sum(plan.chosen_cost for plan in index_plans.values())
            predicted_current = expected_tree_cost(
                matcher.tree, distributions
            ).operations_per_event

        # Tree-family candidate: the optimizer's configuration under the
        # same distributions (one recipe with the pure-tree path, see
        # :meth:`_tree_candidate`).  Workloads the tree model cannot
        # express (partition construction fails) leave the tree side at
        # +inf.
        tree_cost = float("inf")
        candidate_config = None
        candidate_tree = None
        try:
            if isinstance(matcher, TreeMatcher):
                partitions = matcher.partitions()
            else:
                partitions = build_partitions(self.profiles)
            candidate_config, candidate_tree, tree_cost = self._tree_candidate(
                distributions, partitions
            )
        except ReproError:
            pass

        if index_cost <= tree_cost:
            chosen, predicted_candidate = "index", index_cost
            label = "auto:index[P_e estimated]"
        else:
            chosen, predicted_candidate = "tree", tree_cost
            label = f"auto:tree[{candidate_config.label}]"
        improvement = (
            1.0 - predicted_candidate / predicted_current if predicted_current > 0 else 0.0
        )
        applied = improvement >= self.policy.improvement_threshold
        current_family = "index" if isinstance(matcher, PredicateIndexMatcher) else "tree"
        is_switch = chosen != current_family
        suppressed = False
        if applied and is_switch and cooldown_active:
            applied = False
            suppressed = True
        if applied:
            if chosen == "index":
                if isinstance(matcher, PredicateIndexMatcher):
                    matcher.replan(distributions)
                else:
                    self._matcher = PredicateIndexMatcher(
                        self.profiles,
                        planner=IndexPlanner(distributions, attribute_measure=measure),
                    )
            elif isinstance(matcher, TreeMatcher):
                # Install the tree already built for costing.
                matcher.adopt(candidate_tree, candidate_config)
            else:
                self._matcher = TreeMatcher.from_built(
                    self.profiles, candidate_tree, candidate_config
                )
            if is_switch:
                self._switch_cooldown = self.policy.switch_cooldown_intervals
        self._adaptations.append(
            AdaptationRecord(
                event_count=self._events_filtered,
                predicted_current=predicted_current,
                predicted_candidate=predicted_candidate,
                applied=applied,
                configuration_label=label,
                engine=chosen,
                suppressed=suppressed,
            )
        )
