"""The adaptive filter component.

Section 4 of the paper: the distribution-based algorithm "can either work
based on predefined distributions for the observed events, or it has to
maintain a history of events in order to determine the event distribution";
Section 1 promises "an adaptive filter component that optimizes the profile
tree for certain applications based on the data distributions".

:class:`AdaptiveFilterEngine` drives one matcher from the **engine
registry** (:mod:`repro.matching.registry`; the built-in families are
``tree`` and ``index``, ``"auto"`` arbitrates between every registered
family) and

* records every filtered event in a bounded
  :class:`~repro.distributions.estimation.EventHistory`,
* periodically (every ``reoptimize_interval`` events) estimates the current
  per-attribute event distributions from the history,
* asks the engine's :class:`~repro.matching.registry.EngineSpec` for a
  candidate — a restructured tree, a replanned index, or (``auto``) the
  cheapest candidate of *any* registered family under the shared
  comparison-count cost currency — and
* restructures/replans/switches when the analytical model predicts at
  least ``improvement_threshold`` relative improvement over the current
  matcher (restructuring has a cost, so marginal gains are ignored — the
  paper recommends reordering only "for systems with stable
  distributions").

Profile maintenance delegates to the wrapped matcher's incremental
``add_profile`` / ``remove_profile``, so subscription churn keeps the
history and adaptation state alive (the broker relies on this).

The pre-registry roster tuple ``ENGINES`` remains importable as a
deprecation shim; new code asks
:func:`repro.matching.registry.default_registry` (or the policy's own
registry) for :meth:`~repro.matching.registry.EngineRegistry.engine_names`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.analysis.calibration import CalibrationSnapshot, CostCalibrator
from repro.core.deprecation import warn_once
from repro.core.errors import MatchingError, ServiceError
from repro.core.events import Event
from repro.core.profiles import Profile, ProfileSet
from repro.distributions.base import Distribution
from repro.distributions.estimation import EventHistory
from repro.matching.index.kernel import KernelStats
from repro.matching.interfaces import Matcher, MatchResult
from repro.matching.registry import (
    AUTO_ENGINE,
    EngineContext,
    EngineRegistry,
    EngineSpec,
    default_registry,
)
from repro.matching.tree.config import SearchStrategy, TreeConfiguration
from repro.matching.tree.matcher import TreeMatcher
from repro.selectivity.attribute_measures import AttributeMeasure
from repro.selectivity.value_measures import ValueMeasure

__all__ = [
    "AdaptationPolicy",
    "AdaptationRecord",
    "AdaptiveFilterEngine",
    "resolve_policy_engine",
]


def __getattr__(name: str):
    if name == "ENGINES":
        # Deprecation shim: the hard-coded roster tuple became the engine
        # registry.  Computed on access so third-party registrations show.
        warn_once(
            "repro.service.adaptive.ENGINES",
            "repro.service.adaptive.ENGINES is deprecated; use "
            "repro.matching.registry.default_registry().engine_names()",
        )
        return default_registry().engine_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class AdaptationPolicy:
    """Tuning knobs of the adaptive filter component."""

    #: Value-selectivity measure used when re-optimising (tree engine only).
    value_measure: ValueMeasure = ValueMeasure.V1_EVENT
    #: Attribute-selectivity measure used when re-optimising.  The tree
    #: engine accepts any measure; the index engine ranks its probe order
    #: with it and supports NATURAL/A1/A2 (A3 is a whole-tree measure) —
    #: each family declares its supported measures on its registry spec.
    attribute_measure: AttributeMeasure = AttributeMeasure.A2_ZERO_PROBABILITY
    #: Node search strategy of the rebuilt tree (tree engine only).
    search: SearchStrategy = SearchStrategy.LINEAR
    #: Re-optimisation is considered every this many filtered events.
    reoptimize_interval: int = 1000
    #: Minimum number of observed events before the first re-optimisation.
    warmup_events: int = 200
    #: Minimum relative improvement (predicted) required to restructure.
    improvement_threshold: float = 0.05
    #: Length of the sliding event history window.
    history_length: int = 10_000
    #: Which matcher the engine drives: the name of any family registered
    #: with the engine registry (built-ins: ``"tree"``, the paper's
    #: profile tree restructured via the TreeOptimizer, and ``"index"``,
    #: the predicate-index matcher replanned via the IndexPlanner) or
    #: ``"auto"`` (starts on the registry's preferred family and, at every
    #: re-optimisation, switches to whichever registered family the cost
    #: models predict to be cheaper under the current history
    #: distributions).
    engine: str = "tree"
    #: Hysteresis of the ``auto`` arbitration: after an applied
    #: family switch, further switches are suppressed for
    #: this many re-optimisation checks, so an alternating workload does
    #: not thrash expensive family rebuilds every interval.  Suppressed
    #: decisions are still recorded (``AdaptationRecord.suppressed``);
    #: same-family restructures/replans are never held back.  ``0``
    #: disables the cooldown.
    switch_cooldown_intervals: int = 2
    #: EWMA weight of the measured-cost calibration
    #: (:class:`~repro.analysis.calibration.CostCalibrator`): after every
    #: re-optimisation interval the ``auto`` arbitration pairs the cost it
    #: predicted with the comparison operations per event actually
    #: measured over that interval, and folds the misprediction ratio
    #: into a per-family correction factor with this weight.  Candidate
    #: costs are multiplied by their family's factor before they are
    #: compared, so a consistently optimistic model stops winning
    #: arbitrations it should lose.  ``0`` disables calibration (raw
    #: analytical costs, the pre-calibration behaviour); ``1`` trusts
    #: only the latest interval.
    calibration_smoothing: float = 0.5
    #: Bounded memory of the measured-cost calibration under workload
    #: drift: when set, each family's correction factor is folded over
    #: only its last this-many observed intervals, so evidence from a
    #: previous workload regime ages out completely instead of lingering
    #: as a geometric tail (see
    #: :class:`~repro.analysis.calibration.CostCalibrator`).  ``None``
    #: keeps the unbounded EWMA.
    calibration_window: int | None = None
    #: Columnar batch-kernel cutover for families with a batch kernel
    #: (today: the index family).  ``None`` defers to the registry
    #: entry's default and ultimately to
    #: :data:`repro.matching.index.kernel.MIN_COLUMNAR_BATCH`; smaller
    #: values push smaller batches into the columnar kernel.
    min_columnar_batch: int | None = None
    #: Shard count for partition-parallel families (today: the
    #: ``sharded`` family, which partitions the profile population over
    #: this many predicate-index shards).  ``None`` leaves the family on
    #: its cores-based default
    #: (:func:`repro.matching.sharded.default_shard_count`); ignored by
    #: unsharded families.
    shard_count: int | None = None
    #: Engine roster consulted for validation, construction and the
    #: ``auto`` arbitration.  ``None`` uses the process-wide
    #: :func:`~repro.matching.registry.default_registry`; passing a
    #: custom :class:`~repro.matching.registry.EngineRegistry` keeps
    #: experiment-local engines out of the global roster.
    registry: EngineRegistry | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        roster = self.engine_registry
        try:
            roster.validate_engine(self.engine)
        except MatchingError as exc:
            raise ServiceError(str(exc)) from exc
        for spec in self._selected_specs():
            if (
                spec.supported_measures is not None
                and self.attribute_measure not in spec.supported_measures
            ):
                raise ServiceError(
                    f"the {self.engine} engine cannot rank by measure "
                    f"{self.attribute_measure.value!r}; the {spec.name} family "
                    f"supports: {[m.value for m in spec.supported_measures]}"
                )
        if self.reoptimize_interval <= 0:
            raise ServiceError("reoptimize_interval must be positive")
        if self.warmup_events < 0:
            raise ServiceError("warmup_events must be non-negative")
        if not 0.0 <= self.improvement_threshold < 1.0:
            raise ServiceError("improvement_threshold must lie in [0, 1)")
        if self.history_length <= 0:
            raise ServiceError("history_length must be positive")
        if self.switch_cooldown_intervals < 0:
            raise ServiceError("switch_cooldown_intervals must be non-negative")
        if not 0.0 <= self.calibration_smoothing <= 1.0:
            raise ServiceError("calibration_smoothing must lie in [0, 1]")
        if self.calibration_window is not None and self.calibration_window < 1:
            raise ServiceError("calibration_window must be at least 1")
        if self.min_columnar_batch is not None and self.min_columnar_batch < 0:
            raise ServiceError("min_columnar_batch must be non-negative")
        if self.shard_count is not None and self.shard_count < 1:
            raise ServiceError("shard_count must be at least 1")

    @property
    def engine_registry(self) -> EngineRegistry:
        """Return the roster this policy resolves engine names against."""
        return self.registry if self.registry is not None else default_registry()

    def _selected_specs(self) -> list[EngineSpec]:
        """Return the specs the chosen engine may drive (all, for auto)."""
        roster = self.engine_registry
        if self.engine == AUTO_ENGINE:
            return roster.arbitrating_specs()
        return [roster.spec(self.engine)]


@dataclass(frozen=True)
class AdaptationRecord:
    """One re-optimisation decision (for observability and tests)."""

    event_count: int
    predicted_current: float
    predicted_candidate: float
    applied: bool
    configuration_label: str
    #: Matcher family the decision selected (a registry name, e.g.
    #: ``"tree"`` or ``"index"``).  For the fixed engines this is simply
    #: the engine itself; for ``engine="auto"`` it exposes which family
    #: the arbitration chose (``applied`` says whether a
    #: switch/restructure actually happened).
    engine: str = ""
    #: ``True`` when the arbitration *wanted* to switch matcher families
    #: but the switch cooldown held it back (``applied`` is then False);
    #: see :attr:`AdaptationPolicy.switch_cooldown_intervals`.
    suppressed: bool = False
    #: Comparison operations per event actually *measured* over the
    #: interval that ended at this check (``None`` when the interval saw
    #: no events).  Pairs with the *previous* record's predicted cost:
    #: that prediction covered exactly this interval.
    measured_ops_per_event: float | None = None
    #: Wall-clock seconds the interval took (optional observability;
    #: decisions use the deterministic operation currency above).
    measured_wall_seconds: float | None = None
    #: Calibration factor applied to ``predicted_candidate`` when the
    #: decision was taken (``1.0``: the model was trusted as-is); see
    #: :attr:`AdaptationPolicy.calibration_smoothing`.
    correction_factor: float = 1.0

    @property
    def predicted_improvement(self) -> float:
        """Return the predicted relative improvement of the candidate."""
        if self.predicted_current <= 0:
            return 0.0
        return 1.0 - self.predicted_candidate / self.predicted_current

    def to_dict(self) -> dict:
        """Return a JSON-friendly view (predicted vs measured cost)."""
        return {
            "event_count": self.event_count,
            "predicted_current": self.predicted_current,
            "predicted_candidate": self.predicted_candidate,
            "predicted_improvement": self.predicted_improvement,
            "applied": self.applied,
            "configuration_label": self.configuration_label,
            "engine": self.engine,
            "suppressed": self.suppressed,
            "measured_ops_per_event": self.measured_ops_per_event,
            "measured_wall_seconds": self.measured_wall_seconds,
            "correction_factor": self.correction_factor,
        }


class AdaptiveFilterEngine:
    """A registry-driven matcher that restructures itself from history."""

    def __init__(
        self,
        profiles: ProfileSet,
        *,
        policy: AdaptationPolicy | None = None,
        initial_configuration: TreeConfiguration | None = None,
    ) -> None:
        self.policy = policy or AdaptationPolicy()
        self.profiles = profiles
        self._registry = self.policy.engine_registry
        self._initial_configuration = initial_configuration
        if self.policy.engine == AUTO_ENGINE:
            # ``auto`` starts on the registry's preferred family (the
            # cheaper build; the built-in roster starts on the index
            # matcher) and lets the first re-optimisation arbitrate the
            # families from history.
            spec = self._registry.auto_start()
        else:
            spec = self._registry.spec(self.policy.engine)
        self._matcher: Matcher = spec.factory(self._context_for(spec))
        self._history = EventHistory(profiles.schema, max_length=self.policy.history_length)
        self._events_filtered = 0
        self._events_at_last_check = 0
        self._adaptations: list[AdaptationRecord] = []
        #: Re-optimisation checks left before the auto arbitration may
        #: switch matcher families again (hysteresis).
        self._switch_cooldown = 0
        #: Measured-cost feedback: cumulative charged operations (and the
        #: interval markers) pair each check's *measured* ops/event with
        #: the cost the previous check *predicted* for the same interval.
        self._calibrator = CostCalibrator(
            self.policy.calibration_smoothing, window=self.policy.calibration_window
        )
        self._operations_filtered = 0
        self._ops_at_last_check = 0
        self._wall_at_last_check = time.perf_counter()
        #: ``(family, raw predicted ops/event)`` of whichever configuration
        #: the last check left running; consumed — observed against the
        #: measured interval cost — at the next check.
        self._pending_prediction: tuple[str, float] | None = None
        #: Kernel stats of matcher instances retired by replans/switches;
        #: :meth:`kernel_stats` folds the live matcher's stats on top.
        self._retired_kernel_stats = KernelStats()

    def _context_for(self, spec: EngineSpec) -> EngineContext:
        """Build the spec-callback context, resolving per-spec defaults."""
        min_columnar = self.policy.min_columnar_batch
        if min_columnar is None:
            min_columnar = spec.min_columnar_batch
        return EngineContext(
            profiles=self.profiles,
            attribute_measure=self.policy.attribute_measure,
            value_measure=self.policy.value_measure,
            search=self.policy.search,
            initial_configuration=self._initial_configuration,
            min_columnar_batch=min_columnar,
            shard_count=self.policy.shard_count,
        )

    def _adopt_matcher(self, matcher: Matcher) -> None:
        """Install a (possibly new) matcher, preserving kernel accounting."""
        if matcher is not self._matcher:
            stats = getattr(self._matcher, "kernel_stats", None)
            if stats is not None:
                self._retired_kernel_stats.merge(stats)
            self._matcher = matcher

    # -- delegation ---------------------------------------------------------------
    @property
    def matcher(self) -> Matcher:
        """Return the wrapped matcher (whatever family is running)."""
        return self._matcher

    @property
    def registry(self) -> EngineRegistry:
        """Return the engine roster this engine resolves families against."""
        return self._registry

    @property
    def engine_family(self) -> str | None:
        """Return the registry name of the running matcher's family."""
        spec = self._registry.owner_of(self._matcher)
        return spec.name if spec is not None else None

    @property
    def history(self) -> EventHistory:
        """Return the sliding event history."""
        return self._history

    @property
    def configuration(self) -> TreeConfiguration:
        if not isinstance(self._matcher, TreeMatcher):
            raise ServiceError("the index engine has no tree configuration")
        return self._matcher.configuration

    @property
    def calibrator(self) -> CostCalibrator:
        """Return the live cost calibrator (measured-vs-predicted EWMA)."""
        return self._calibrator

    def calibration(self) -> CalibrationSnapshot:
        """Return an immutable snapshot of the calibration state."""
        return self._calibrator.snapshot()

    def adaptations(self) -> list[AdaptationRecord]:
        """Return every re-optimisation decision taken so far."""
        return list(self._adaptations)

    def kernel_stats(self) -> KernelStats:
        """Return executed-work batch-kernel accounting across the engine's
        whole life, including matcher instances retired by replanning."""
        total = KernelStats().merge(self._retired_kernel_stats)
        live = getattr(self._matcher, "kernel_stats", None)
        if live is not None:
            total.merge(live)
        return total

    def add_profile(self, profile: Profile) -> None:
        """Register a profile (delegates to the matcher)."""
        self._matcher.add_profile(profile)

    def add_profiles(self, profiles: Iterable[Profile]) -> None:
        """Register a batch of profiles via the matcher's batch path.

        One structure rebuild for the rebuild-style families (tree,
        counting) instead of one per profile; the index family applies its
        per-profile postings deltas either way.
        """
        self._matcher.add_profiles(profiles)

    def remove_profile(self, profile_id: str) -> None:
        """Unregister a profile (delegates to the matcher)."""
        self._matcher.remove_profile(profile_id)

    # -- filtering ----------------------------------------------------------------
    def match(self, event: Event) -> MatchResult:
        """Filter one event, record it, and re-optimise when due."""
        result = self._matcher.match(event)
        self._history.observe(event)
        self._events_filtered += 1
        self._operations_filtered += result.operations
        if self._reoptimisation_due():
            self._consider_reoptimisation()
        return result

    def match_batch(self, events: Iterable[Event]) -> list[MatchResult]:
        """Filter a sequence of events with the same re-optimisation cadence.

        Equivalent to calling :meth:`match` per event — re-optimisation may
        restructure the matcher mid-batch, exactly as in the sequential
        path — but the events *between* two re-optimisation points are
        forwarded in one :meth:`Matcher.match_batch` call, so large batches
        (e.g. from :meth:`repro.service.broker.Broker.publish_batch`) reach
        the index family's columnar kernel
        (:mod:`repro.matching.index.kernel`) instead of degrading to the
        per-event loop.  Chunking at the next due re-optimisation keeps
        the cadence exact: within a chunk no check could fire anyway.
        """
        events = events if isinstance(events, list) else list(events)
        results: list[MatchResult] = []
        position = 0
        while position < len(events):
            # The next check can only fire once the filtered-event count
            # reaches both the warmup and the interval since the last
            # check, so everything before that point is one safe chunk.
            next_due = max(
                self.policy.warmup_events,
                self._events_at_last_check + self.policy.reoptimize_interval,
            )
            take = max(1, next_due - self._events_filtered)
            chunk = events[position : position + take]
            chunk_results = self._matcher.match_batch(chunk)
            results.extend(chunk_results)
            observe = self._history.observe
            for event in chunk:
                observe(event)
            self._events_filtered += len(chunk)
            self._operations_filtered += sum(r.operations for r in chunk_results)
            if self._reoptimisation_due():
                self._consider_reoptimisation()
            position += len(chunk)
        return results

    def _reoptimisation_due(self) -> bool:
        if self._events_filtered < self.policy.warmup_events:
            return False
        return (
            self._events_filtered - self._events_at_last_check
            >= self.policy.reoptimize_interval
        )

    # -- re-optimisation ---------------------------------------------------------------
    def estimated_event_distributions(self) -> Mapping[str, Distribution]:
        """Return per-attribute distributions estimated from the history."""
        distributions: dict[str, Distribution] = {}
        for attribute in self.profiles.schema:
            counter = self._history.counter(attribute.name)
            if counter.total == 0:
                raise ServiceError(
                    f"no observations recorded for attribute {attribute.name!r}"
                )
            distributions[attribute.name] = counter.to_distribution()
        return distributions

    def _consider_reoptimisation(self) -> None:
        events_delta = self._events_filtered - self._events_at_last_check
        ops_delta = self._operations_filtered - self._ops_at_last_check
        now = time.perf_counter()
        wall_delta = now - self._wall_at_last_check
        self._events_at_last_check = self._events_filtered
        self._ops_at_last_check = self._operations_filtered
        self._wall_at_last_check = now
        measured_ops = ops_delta / events_delta if events_delta > 0 else None
        # Close the feedback loop before any early return: the prediction
        # the previous check left pending is scored against the interval
        # that just elapsed, whatever this check goes on to decide.
        pending, self._pending_prediction = self._pending_prediction, None
        if pending is not None and measured_ops is not None:
            family, predicted = pending
            self._calibrator.observe(family, predicted, measured_ops)
        if len(self.profiles) == 0:
            # Nothing to optimise (every subscription is paused); the
            # engine keeps filtering and recording history.
            return
        try:
            distributions = self.estimated_event_distributions()
        except ServiceError:
            return
        if self.policy.engine == AUTO_ENGINE:
            self._arbitrate(
                distributions,
                measured_ops_per_event=measured_ops,
                measured_wall_seconds=wall_delta,
            )
            return
        spec = self._registry.spec(self.policy.engine)
        if spec.reoptimize is None:
            # The family opted out of periodic restructuring (common for
            # third-party engines); the engine just keeps filtering.
            return
        proposal = spec.reoptimize(self._context_for(spec), self._matcher, distributions)
        if proposal is None:
            return
        improvement = (
            1.0 - proposal.predicted_candidate / proposal.predicted_current
            if proposal.predicted_current > 0
            else 0.0
        )
        applied = improvement >= self.policy.improvement_threshold
        if applied:
            self._adopt_matcher(proposal.install())
        self._adaptations.append(
            AdaptationRecord(
                event_count=self._events_filtered,
                predicted_current=proposal.predicted_current,
                predicted_candidate=proposal.predicted_candidate,
                applied=applied,
                configuration_label=proposal.label,
                engine=spec.name,
                measured_ops_per_event=measured_ops,
                measured_wall_seconds=wall_delta,
            )
        )

    def _arbitrate(
        self,
        distributions: Mapping[str, Distribution],
        *,
        measured_ops_per_event: float | None = None,
        measured_wall_seconds: float | None = None,
    ) -> None:
        """Arbitrate between the registered families (``engine="auto"``).

        The decision rule: ask every registry spec with a cost estimator
        for its best candidate in the paper's common currency (expected
        comparison operations per event) under the current history
        distributions — the built-in index side through the
        :class:`~repro.matching.index.planner.IndexPlanner` estimate, the
        tree side through
        :func:`repro.analysis.cost_model.expected_tree_cost` of the
        :class:`~repro.selectivity.optimizer.TreeOptimizer`'s candidate
        configuration — and adopt the cheapest family when it improves on
        the current matcher's predicted cost by at least
        ``improvement_threshold``.  Ties fall to the lower
        :attr:`~repro.matching.registry.EngineSpec.auto_rank` (the index
        family, on the built-in roster).  The chosen family is exposed as
        :attr:`AdaptationRecord.engine`.

        **Calibration.**  Raw model costs are corrected before comparison:
        each family's cost is multiplied by the :class:`CostCalibrator`'s
        EWMA factor for that family, learned from the measured-vs-predicted
        ratio of past intervals (a spec may refine this via
        :attr:`~repro.matching.registry.EngineSpec.calibrated_candidate`).
        This closes the loop on systematic model bias — e.g. the counting
        family charging nothing for counter bookkeeping — while the record
        keeps the *raw* predictions so the bias stays observable:
        :attr:`AdaptationRecord.correction_factor` is the ratio the winner's
        cost was scaled by.

        **Hysteresis.**  An applied family switch arms a cooldown of
        :attr:`AdaptationPolicy.switch_cooldown_intervals` further checks
        during which another switch is suppressed (recorded with
        ``suppressed=True``), so a workload oscillating around the
        cost-model break-even point does not rebuild a family per
        interval.  Same-family improvements (an index replan or a tree
        restructure) stay available throughout.
        """
        matcher = self._matcher
        cooldown_active = self._switch_cooldown > 0
        if cooldown_active:
            # This check elapses one cooldown interval (but is itself
            # still suppressed: arming N suppresses exactly N checks).
            self._switch_cooldown -= 1

        current_spec = self._registry.owner_of(matcher)
        best = None
        best_spec = None
        best_calibrated = float("inf")
        for spec in self._registry.arbitrating_specs():
            if spec.calibrated_candidate is not None:
                scored = spec.calibrated_candidate(
                    self._context_for(spec), matcher, distributions, self._calibrator
                )
                if scored is None:
                    continue
                candidate, calibrated = scored
            else:
                candidate = spec.candidate(self._context_for(spec), matcher, distributions)
                if candidate is None:
                    continue
                calibrated = self._calibrator.calibrate(spec.name, candidate.cost)
            if best is None or calibrated < best_calibrated:
                best, best_spec, best_calibrated = candidate, spec, calibrated
        if best is None:
            return

        if current_spec is not None and current_spec.current_cost is not None:
            predicted_current = current_spec.current_cost(matcher, distributions)
            calibrated_current = self._calibrator.calibrate(
                current_spec.name, predicted_current
            )
        else:
            # An unknown (or cost-less) family cannot be compared, so any
            # finite candidate is treated as an improvement.
            predicted_current = float("inf")
            calibrated_current = float("inf")
        improvement = (
            1.0 - best_calibrated / calibrated_current if calibrated_current > 0 else 0.0
        )
        applied = improvement >= self.policy.improvement_threshold
        is_switch = current_spec is None or best_spec.name != current_spec.name
        suppressed = False
        if applied and is_switch and cooldown_active:
            applied = False
            suppressed = True
        if applied:
            self._adopt_matcher(best.install())
            if is_switch:
                self._switch_cooldown = self.policy.switch_cooldown_intervals
        # Leave the raw prediction for whichever configuration runs the
        # next interval; the next check scores it against measurement.
        if applied:
            self._pending_prediction = (best.family, best.cost)
        elif current_spec is not None and predicted_current < float("inf"):
            self._pending_prediction = (current_spec.name, predicted_current)
        self._adaptations.append(
            AdaptationRecord(
                event_count=self._events_filtered,
                predicted_current=predicted_current,
                predicted_candidate=best.cost,
                applied=applied,
                configuration_label=f"auto:{best.label}",
                engine=best.family,
                suppressed=suppressed,
                measured_ops_per_event=measured_ops_per_event,
                measured_wall_seconds=measured_wall_seconds,
                correction_factor=(
                    best_calibrated / best.cost if best.cost > 0 else 1.0
                ),
            )
        )


def resolve_policy_engine(
    policy: AdaptationPolicy | None, engine: str | None
) -> AdaptationPolicy:
    """Resolve an ``engine=`` name against an optional policy.

    The single site reconciling the two ways of choosing an engine
    (used by :class:`~repro.service.broker.Broker` and
    :class:`repro.api.FilterService`): raises on a conflict, otherwise
    returns a policy whose ``engine`` is the requested one — validation
    happens in the policy's ``__post_init__`` (the single registry
    lookup).
    """
    if engine is not None and policy is not None and policy.engine != engine:
        raise ServiceError(
            f"conflicting engine choice: engine={engine!r} but the adaptation "
            f"policy selects {policy.engine!r}; set one or the other"
        )
    if policy is None:
        policy = AdaptationPolicy() if engine is None else AdaptationPolicy(engine=engine)
    return policy
