"""The event notification service layer.

Operational components built on top of the matching engines: a broker with
subscribe/publish/notify, the adaptive filter component that restructures
the profile tree from the observed event history, Elvin-style quenching and
a Siena-style multi-broker routing overlay.
"""

from repro.service.adaptive import AdaptationPolicy, AdaptationRecord, AdaptiveFilterEngine
from repro.service.broker import Broker, PublishOutcome
from repro.service.notifications import Notification, NotificationLog
from repro.service.quenching import QuenchDecision, Quencher
from repro.service.routing import (
    BrokerNetwork,
    DeliveryReport,
    RoutingBroker,
    minimal_cover,
    predicate_covers,
    profile_covers,
)
from repro.service.subscriptions import Subscription, SubscriptionRegistry

__all__ = [
    "AdaptationPolicy",
    "AdaptationRecord",
    "AdaptiveFilterEngine",
    "Broker",
    "BrokerNetwork",
    "DeliveryReport",
    "Notification",
    "NotificationLog",
    "PublishOutcome",
    "QuenchDecision",
    "Quencher",
    "RoutingBroker",
    "Subscription",
    "SubscriptionRegistry",
    "minimal_cover",
    "predicate_covers",
    "profile_covers",
]
