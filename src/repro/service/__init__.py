"""The event notification service layer.

Operational components built on top of the matching engines: a broker with
subscribe/publish/notify, the adaptive filter component that restructures
the profile tree from the observed event history, Elvin-style quenching and
a Siena-style multi-broker routing overlay.
"""

from repro.service.adaptive import AdaptationPolicy, AdaptationRecord, AdaptiveFilterEngine
from repro.service.broker import Broker, PublishOutcome
from repro.service.notifications import Notification, NotificationLog
from repro.service.quenching import QuenchDecision, Quencher
from repro.service.routing import (
    BrokerNetwork,
    CoveringTable,
    DeliveryReport,
    NetworkDeliveryReport,
    NetworkService,
    NetworkStats,
    NetworkSubscriptionHandle,
    OverlayBroker,
    OverlayNetwork,
    RoutingBroker,
    minimal_cover,
    predicate_covers,
    profile_covers,
)
from repro.service.subscriptions import Subscription, SubscriptionRegistry

__all__ = [
    "AdaptationPolicy",
    "AdaptationRecord",
    "AdaptiveFilterEngine",
    "Broker",
    "BrokerNetwork",
    "CoveringTable",
    "DeliveryReport",
    "NetworkDeliveryReport",
    "NetworkService",
    "NetworkStats",
    "NetworkSubscriptionHandle",
    "Notification",
    "NotificationLog",
    "OverlayBroker",
    "OverlayNetwork",
    "PublishOutcome",
    "QuenchDecision",
    "Quencher",
    "RoutingBroker",
    "Subscription",
    "SubscriptionRegistry",
    "minimal_cover",
    "predicate_covers",
    "profile_covers",
]
