"""The :class:`NetworkService` facade over the distributed broker overlay.

Mirrors :class:`repro.api.FilterService` for the multi-broker case: build
a topology (``add_broker`` / ``connect``), subscribe a profile at its
*home* broker and get a durable :class:`NetworkSubscriptionHandle` whose
pause/resume/modify/cancel life-cycle keeps the overlay's routing tables
in sync incrementally, publish anywhere (events are routed to every
interested subscriber, suppressed as close to the publisher as covering
allows), and read one merged :meth:`NetworkService.stats` snapshot —
per-broker and network-wide: hops, forwarded vs suppressed events,
routing-table sizes, cover hit rate and the interest matchers' batch
kernel accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.builder import ProfileBuilder
from repro.core.errors import ProfileError, SubscriptionError
from repro.core.events import Event
from repro.core.profiles import Profile
from repro.core.schema import Schema
from repro.matching.index.kernel import KernelStats
from repro.service.adaptive import AdaptationPolicy
from repro.service.notifications import NotificationSink
from repro.service.routing.overlay import (
    NetworkDeliveryReport,
    OverlayBroker,
    OverlayNetwork,
)
from repro.service.subscriptions import Subscription
from repro.simulation.engine import SimulationEngine
from repro.simulation.latency import LatencyModel

__all__ = [
    "BrokerStats",
    "NetworkService",
    "NetworkStats",
    "NetworkSubscriptionHandle",
]

#: States of a network subscription handle.
_ACTIVE, _PAUSED, _CANCELLED = "active", "paused", "cancelled"


@dataclass(frozen=True)
class BrokerStats:
    """Observability snapshot of one overlay broker."""

    broker_id: str
    #: Engine name the broker's policy selects (registry name or ``"auto"``).
    engine: str
    #: Family of the local matcher currently running (``None`` until the
    #: first local subscription builds an engine).
    engine_family: str | None
    #: Local subscriptions registered at this broker (paused included).
    subscriptions: int
    paused_subscriptions: int
    #: Events that arrived here (published locally or forwarded in).
    events_in: int
    #: Local notifications delivered.
    notifications: int
    #: Comparison operations the local filter spent.
    operations: int
    #: Stored routing entries per link (active + covered).
    routing_table: Mapping[str, int]
    #: Active (covering-reduced, forwarded) entries per link.
    active_interest: Mapping[str, int]
    #: Per-link forwarding decisions taken at this broker.
    events_forwarded: int
    events_suppressed: int

    @property
    def routing_table_size(self) -> int:
        return sum(self.routing_table.values())


@dataclass(frozen=True)
class NetworkStats:
    """One network-wide snapshot (plus the per-broker breakdown)."""

    brokers: Mapping[str, BrokerStats]
    links: int
    #: Events handed to :meth:`NetworkService.publish` / ``publish_batch``.
    events_published: int
    #: Local notifications delivered across all brokers.
    notifications: int
    #: Total event-link crossings (lower is better routing).
    hops: int
    #: Distinct batched link transfers carrying those hops.
    link_transfers: int
    #: Per-link forwarding decisions, summed over brokers.
    forwarded_events: int
    suppressed_events: int
    #: Network-wide subscriptions (paused included).
    subscriptions: int
    paused_subscriptions: int
    #: Stored routing entries across all links (active + covered).
    routing_table_entries: int
    #: Active (forwarded) routing entries across all links.
    active_routing_entries: int
    #: Covering-maintenance accounting, summed over every covering table.
    cover_checks: int
    cover_hits: int
    #: Fraction of propagated inserts absorbed by an existing coverer.
    cover_hit_rate: float
    #: Batch-kernel accounting of the per-link interest matchers.
    interest_kernel: KernelStats

    @property
    def suppression_rate(self) -> float:
        """Fraction of per-link decisions that suppressed the event."""
        total = self.forwarded_events + self.suppressed_events
        return self.suppressed_events / total if total else 0.0


class NetworkSubscriptionHandle:
    """Durable handle of one network subscription.

    The same life-cycle as :class:`repro.api.SubscriptionHandle`, with a
    network twist: pause and cancel *retract* the profile from every
    routing table it reached (uncovering the entries it covered), and
    resume/modify re-propagate — all through the covering tables'
    incremental maintenance, never a rebuild.
    """

    def __init__(
        self,
        service: "NetworkService",
        broker_id: str,
        subscription: Subscription,
    ) -> None:
        self._service = service
        self._broker_id = broker_id
        self._subscription = subscription
        self._state = _ACTIVE

    # -- introspection ---------------------------------------------------------
    @property
    def subscription_id(self) -> str:
        return self._subscription.subscription_id

    @property
    def profile(self) -> Profile:
        return self._subscription.profile

    @property
    def subscriber(self) -> str:
        return self._subscription.subscriber

    @property
    def home_broker(self) -> str:
        """Return the broker id this subscription is registered at."""
        return self._broker_id

    @property
    def state(self) -> str:
        return self._state

    @property
    def is_active(self) -> bool:
        return self._state == _ACTIVE

    @property
    def is_paused(self) -> bool:
        return self._state == _PAUSED

    @property
    def is_cancelled(self) -> bool:
        return self._state == _CANCELLED

    def notifications_received(self) -> int:
        """Return how many notifications this profile received."""
        log = self._service.network.broker(self._broker_id).local.notification_log
        return log.count_per_profile().get(self.profile.profile_id, 0)

    # -- life-cycle ------------------------------------------------------------
    def _require_live(self, operation: str) -> None:
        if self._state == _CANCELLED:
            raise SubscriptionError(
                f"cannot {operation} subscription {self.subscription_id!r}: "
                "the handle was cancelled"
            )

    def pause(self) -> "NetworkSubscriptionHandle":
        """Stop deliveries and retract the profile's routing state."""
        self._require_live("pause")
        if self._state != _PAUSED:
            self._service.network.pause(self._broker_id, self.subscription_id)
            self._state = _PAUSED
        return self

    def resume(self) -> "NetworkSubscriptionHandle":
        """Re-enable deliveries and re-propagate the profile."""
        self._require_live("resume")
        if self._state == _PAUSED:
            self._service.network.resume(self._broker_id, self.subscription_id)
            self._state = _ACTIVE
        return self

    def modify(self, profile: Profile | ProfileBuilder) -> "NetworkSubscriptionHandle":
        """Replace the subscribed profile; routing follows the delta."""
        self._require_live("modify")
        if isinstance(profile, ProfileBuilder):
            current = self._subscription.profile
            profile = profile.build(
                current.profile_id,
                subscriber=current.subscriber,
                priority=current.priority,
            )
        elif not isinstance(profile, Profile):
            raise ProfileError(
                f"modify() needs a Profile or ProfileBuilder, got {type(profile).__name__}"
            )
        self._subscription = self._service._modify(
            self._broker_id, self.subscription_id, profile, paused=self.is_paused
        )
        return self

    def cancel(self) -> Subscription:
        """Unsubscribe for good; further operations on the handle raise."""
        self._require_live("cancel")
        subscription = self._service._cancel(
            self._broker_id,
            self.subscription_id,
            paused=self.is_paused,
            profile_id=self.profile.profile_id,
        )
        self._state = _CANCELLED
        return subscription

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"NetworkSubscriptionHandle({self.subscription_id!r}, "
            f"home={self._broker_id!r}, profile={self.profile.profile_id!r}, "
            f"state={self._state!r})"
        )


class NetworkService:
    """Client facade of the distributed event-notification service."""

    def __init__(
        self,
        schema: Schema,
        *,
        engine: str | None = None,
        latency: LatencyModel | None = None,
        delivery: str = "inline",
    ) -> None:
        """Create a service over ``schema``.

        ``engine`` is the default engine family for brokers added without
        an explicit choice (``None`` resolves to ``"auto"`` per broker);
        ``latency`` feeds simulated-time publishing; ``delivery`` is the
        default notification executor of every broker's local engine.
        """
        self._network = OverlayNetwork(schema, latency=latency)
        self._default_engine = engine
        self._default_delivery = delivery
        self._handles: dict[str, NetworkSubscriptionHandle] = {}
        #: Every profile id registered anywhere (paused included) — the
        #: network-wide uniqueness the central registry gives for free.
        self._profile_ids: set[str] = set()
        self._profile_counter = 0

    # -- topology ----------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._network.schema

    @property
    def network(self) -> OverlayNetwork:
        """Return the underlying overlay (service-layer escape hatch)."""
        return self._network

    def add_broker(
        self,
        broker_id: str,
        *,
        engine: str | None = None,
        policy: AdaptationPolicy | None = None,
    ) -> OverlayBroker:
        """Create a broker node; ``engine`` overrides the service default."""
        return self._network.add_broker(
            broker_id,
            engine=engine if engine is not None else self._default_engine,
            policy=policy,
            delivery=self._default_delivery,
        )

    def connect(self, first: str, second: str) -> None:
        """Link two brokers (the overlay stays acyclic)."""
        self._network.connect(first, second)

    def brokers(self) -> list[str]:
        return self._network.brokers()

    def neighbours(self, broker_id: str) -> list[str]:
        return self._network.neighbours(broker_id)

    # -- subscribing -------------------------------------------------------------
    def _generate_profile_id(self) -> str:
        while True:
            self._profile_counter += 1
            candidate = f"profile-{self._profile_counter}"
            if candidate not in self._profile_ids:
                return candidate

    def _compile(
        self,
        profile: Profile | ProfileBuilder,
        profile_id: str | None,
        subscriber: str,
    ) -> Profile:
        if isinstance(profile, ProfileBuilder):
            if profile_id is None:
                profile_id = self._generate_profile_id()
            return profile.build(profile_id, subscriber=subscriber)
        if not isinstance(profile, Profile):
            raise ProfileError(
                f"subscribe() needs a Profile or ProfileBuilder, got {type(profile).__name__}"
            )
        if profile_id is not None and profile_id != profile.profile_id:
            raise ProfileError(
                f"profile_id={profile_id!r} conflicts with the profile's own id "
                f"{profile.profile_id!r}; pass one or the other"
            )
        return profile

    def subscribe(
        self,
        profile: Profile | ProfileBuilder,
        *,
        at: str,
        subscriber: str = "anonymous",
        profile_id: str | None = None,
        sink: NotificationSink | None = None,
        delivery: str | None = None,
    ) -> NetworkSubscriptionHandle:
        """Subscribe at home broker ``at`` and return a durable handle.

        The profile registers with ``at``'s local engine (incremental
        maintenance) and floods away from it through the overlay's
        covering tables, pruned wherever an already-forwarded profile
        covers it.
        """
        compiled = self._compile(profile, profile_id, subscriber)
        if compiled.profile_id in self._profile_ids:
            raise SubscriptionError(
                f"profile id {compiled.profile_id!r} is already subscribed"
            )
        subscription = self._network.subscribe(
            at, compiled, subscriber, sink=sink, delivery=delivery
        )
        self._profile_ids.add(compiled.profile_id)
        handle = NetworkSubscriptionHandle(self, at, subscription)
        self._handles[subscription.subscription_id] = handle
        return handle

    def handles(self) -> list[NetworkSubscriptionHandle]:
        """Return the live (non-cancelled) handles, oldest first."""
        return list(self._handles.values())

    def handle(self, subscription_id: str) -> NetworkSubscriptionHandle:
        try:
            return self._handles[subscription_id]
        except KeyError as exc:
            raise SubscriptionError(
                f"unknown subscription id {subscription_id!r}"
            ) from exc

    # Handle internals: keep the bookkeeping (profile-id set, handle map)
    # next to the overlay mutations they mirror.
    def _modify(
        self, broker_id: str, subscription_id: str, profile: Profile, *, paused: bool
    ) -> Subscription:
        current = (
            self._network.broker(broker_id).local.subscriptions.get(subscription_id)
        )
        old_pid = current.profile.profile_id
        if profile.profile_id != old_pid and profile.profile_id in self._profile_ids:
            raise SubscriptionError(
                f"profile id {profile.profile_id!r} is already subscribed"
            )
        updated = self._network.modify(broker_id, subscription_id, profile)
        self._profile_ids.discard(old_pid)
        self._profile_ids.add(profile.profile_id)
        return updated

    def _cancel(
        self, broker_id: str, subscription_id: str, *, paused: bool, profile_id: str
    ) -> Subscription:
        if paused:
            # A paused profile already left the routing tables; only the
            # local registration remains.
            subscription = self._network.broker(broker_id).local.unsubscribe(
                subscription_id
            )
        else:
            subscription = self._network.unsubscribe(broker_id, subscription_id)
        self._profile_ids.discard(profile_id)
        self._handles.pop(subscription_id, None)
        return subscription

    # -- publishing --------------------------------------------------------------
    @staticmethod
    def _as_event(event: Event | Mapping[str, object]) -> Event:
        if isinstance(event, Event):
            return event
        return Event(dict(event))

    def publish(
        self,
        event: Event | Mapping[str, object],
        *,
        at: str,
        simulation: SimulationEngine | None = None,
    ) -> NetworkDeliveryReport:
        """Publish one event at broker ``at`` (mappings are wrapped)."""
        return self._network.publish(at, self._as_event(event), simulation=simulation)

    def publish_batch(
        self,
        events: Iterable[Event | Mapping[str, object]],
        *,
        at: str,
        simulation: SimulationEngine | None = None,
    ) -> NetworkDeliveryReport:
        """Publish a batch at ``at``; it rides ``publish_batch`` end to end."""
        return self._network.publish_batch(
            at,
            [self._as_event(event) for event in events],
            simulation=simulation,
        )

    # -- observability -----------------------------------------------------------
    def broker_stats(self, broker_id: str) -> BrokerStats:
        """Return one broker's snapshot (see :class:`BrokerStats`)."""
        broker = self._network.broker(broker_id)
        local = broker.local
        engine_family = (
            local.engine.engine_family if local.has_engine else None
        )
        return BrokerStats(
            broker_id=broker_id,
            engine=local.adaptation_policy.engine,
            engine_family=engine_family,
            subscriptions=len(local.subscriptions),
            paused_subscriptions=len(local.paused_subscription_ids),
            events_in=broker.events_in,
            notifications=local.statistics.total_notifications,
            operations=local.statistics.total_operations,
            routing_table={
                neighbour: len(link.table) for neighbour, link in broker.links.items()
            },
            active_interest={
                neighbour: link.interest_size
                for neighbour, link in broker.links.items()
            },
            events_forwarded=sum(
                link.events_forwarded for link in broker.links.values()
            ),
            events_suppressed=sum(
                link.events_suppressed for link in broker.links.values()
            ),
        )

    def stats(self) -> NetworkStats:
        """Return one merged snapshot (see :class:`NetworkStats`)."""
        network = self._network
        per_broker = {bid: self.broker_stats(bid) for bid in network.brokers()}
        links = sum(len(network.broker(b).links) for b in network.brokers()) // 2
        inserts = checks = hits = active_entries = 0
        for bid in network.brokers():
            for link in network.broker(bid).links.values():
                checks += link.table.cover_checks
                hits += link.table.cover_hits
                inserts += link.table.inserts
                active_entries += link.table.active_count
        return NetworkStats(
            brokers=per_broker,
            links=links,
            events_published=network.events_published,
            notifications=sum(s.notifications for s in per_broker.values()),
            hops=network.total_hops,
            link_transfers=network.total_link_transfers,
            forwarded_events=sum(s.events_forwarded for s in per_broker.values()),
            suppressed_events=sum(s.events_suppressed for s in per_broker.values()),
            subscriptions=sum(s.subscriptions for s in per_broker.values()),
            paused_subscriptions=sum(
                s.paused_subscriptions for s in per_broker.values()
            ),
            routing_table_entries=network.routing_table_entries(),
            active_routing_entries=active_entries,
            cover_checks=checks,
            cover_hits=hits,
            cover_hit_rate=hits / inserts if inserts else 0.0,
            interest_kernel=network.interest_kernel_stats(),
        )

    # -- life-cycle --------------------------------------------------------------
    def drain(self) -> None:
        """Block until every broker's queued notifications are delivered."""
        self._network.drain()

    def close(self, *, drain: bool = True) -> None:
        """Shut every broker's delivery subsystem down (idempotent)."""
        self._network.close(drain=drain)

    def __enter__(self) -> "NetworkService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close(drain=exc_type is None)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"NetworkService(brokers={len(self._network.brokers())}, "
            f"subscriptions={len(self._profile_ids)})"
        )
