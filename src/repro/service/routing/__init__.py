"""Distributed broker-overlay routing (Siena-style, with covering).

Two generations live here:

* :class:`OverlayNetwork` / :class:`NetworkService` — the modern
  subsystem: every broker hosts a full engine from the registry,
  covering relations are maintained **incrementally** under churn
  (with correct uncovering on removal), per-link interest is an indexed
  matcher, and events are forwarded in batches through the columnar
  kernel.  See ``docs/routing.md``.
* :class:`BrokerNetwork` — the original single-event overlay, kept for
  the simple synchronous examples and the covering-helper tests.
"""

from repro.service.routing.covering import minimal_cover, predicate_covers, profile_covers
from repro.service.routing.network import BrokerNetwork, DeliveryReport, RoutingBroker
from repro.service.routing.overlay import (
    LinkState,
    NetworkDeliveryReport,
    OverlayBroker,
    OverlayNetwork,
)
from repro.service.routing.service import (
    BrokerStats,
    NetworkService,
    NetworkStats,
    NetworkSubscriptionHandle,
)
from repro.service.routing.table import (
    AddOutcome,
    CoveringTable,
    RemoveOutcome,
    TableEntry,
)

__all__ = [
    "AddOutcome",
    "BrokerNetwork",
    "BrokerStats",
    "CoveringTable",
    "DeliveryReport",
    "LinkState",
    "NetworkDeliveryReport",
    "NetworkService",
    "NetworkStats",
    "NetworkSubscriptionHandle",
    "OverlayBroker",
    "OverlayNetwork",
    "RemoveOutcome",
    "RoutingBroker",
    "TableEntry",
    "minimal_cover",
    "predicate_covers",
    "profile_covers",
]
