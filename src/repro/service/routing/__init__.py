"""Distributed broker-overlay routing (Siena-style, with covering)."""

from repro.service.routing.covering import minimal_cover, predicate_covers, profile_covers
from repro.service.routing.network import BrokerNetwork, DeliveryReport, RoutingBroker

__all__ = [
    "BrokerNetwork",
    "DeliveryReport",
    "RoutingBroker",
    "minimal_cover",
    "predicate_covers",
    "profile_covers",
]
