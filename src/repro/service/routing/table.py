"""Incremental covering table for one overlay link.

A broker keeps, per neighbouring link, the set of profiles whose
subscribers live somewhere behind that link.  Forwarding every profile
upstream would make routing tables grow with the whole network, so the
table maintains the Siena-style *covering reduction* incrementally: a
profile is **active** when no other stored profile covers it (active
profiles are what the broker forwards further and matches events
against), and **inactive** when an active coverer subsumes it — the
entry is retained, not dropped, so that removing the coverer can
*uncover* it again without any help from the subscriber's home broker.

Unlike :func:`~repro.service.routing.covering.minimal_cover`, which
recomputes the reduction from scratch in O(n²), every operation here
touches only the entries actually affected:

* ``add`` scans the active set once — stopping at the first coverer —
  and deactivates exactly the active entries the newcomer covers;
* ``remove`` of an inactive entry touches one reverse-index bucket;
* ``remove`` of an active entry re-homes only the entries it covered
  (the ``covers`` reverse index makes them O(1) to find).

Deactivated entries keep their ``forwarded`` flag, so the overlay knows
whether an uncovered profile must be (re-)propagated downstream or is
already known there.  The deterministic counters (``cover_checks``,
``cover_hits``, per-operation ``touched``) are what the churn-cost tests
and the routing benchmark gate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import RoutingError
from repro.core.profiles import Profile
from repro.core.schema import Schema
from repro.service.routing.covering import profile_covers

__all__ = ["AddOutcome", "CoveringTable", "RemoveOutcome", "TableEntry"]


@dataclass
class TableEntry:
    """One stored profile plus its covering bookkeeping."""

    profile: Profile
    #: Arrival order; ties between mutually covering profiles go to the
    #: earlier arrival, mirroring ``minimal_cover``'s order stability.
    sequence: int
    #: ``True`` while no other stored profile covers this one.
    active: bool = True
    #: Whether the owning broker propagated this profile downstream.  A
    #: covered-on-arrival entry was never forwarded; an entry covered
    #: *later* usually was, and needs no re-propagation when uncovered.
    forwarded: bool = False
    #: Profile id of the active entry covering this one (inactive only).
    covered_by: str | None = None


@dataclass(frozen=True)
class AddOutcome:
    """Result of inserting one profile."""

    #: ``True`` when the profile joined the active (forwarded) set.
    active: bool
    #: Previously active entries the newcomer covered (now inactive).
    newly_covered: tuple[Profile, ...] = ()
    #: Entries examined by this operation.
    touched: int = 0


@dataclass(frozen=True)
class RemoveOutcome:
    """Result of removing one profile."""

    was_active: bool
    #: Whether the removed entry had been propagated downstream (the
    #: overlay forwards the removal only in that case).
    was_forwarded: bool
    #: Entries this removal reactivated; those with ``forwarded=False``
    #: must now be propagated downstream for the first time.
    uncovered: tuple[TableEntry, ...] = ()
    #: Entries examined by this operation — O(affected covers), never
    #: O(table): removing an entry that covers nothing touches nothing.
    touched: int = 0


class CoveringTable:
    """Covering-reduced profile set with incremental maintenance."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._entries: dict[str, TableEntry] = {}
        #: Reverse index: active profile id -> ids of entries it covers.
        self._covers: dict[str, set[str]] = {}
        self._sequence = 0
        #: Total ``profile_covers`` evaluations (deterministic).
        self.cover_checks = 0
        #: Insertions absorbed by an existing coverer (never forwarded).
        self.cover_hits = 0

    # -- introspection -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, profile_id: str) -> bool:
        return profile_id in self._entries

    @property
    def active_count(self) -> int:
        return sum(1 for entry in self._entries.values() if entry.active)

    def entry(self, profile_id: str) -> TableEntry:
        try:
            return self._entries[profile_id]
        except KeyError as exc:
            raise RoutingError(f"unknown profile id {profile_id!r}") from exc

    def active_profiles(self) -> list[Profile]:
        """Return the covering-reduced set, in arrival order."""
        return [e.profile for e in self._entries.values() if e.active]

    def profiles(self) -> list[Profile]:
        """Return every stored profile (active and covered)."""
        return [e.profile for e in self._entries.values()]

    @property
    def inserts(self) -> int:
        """Return how many profiles were ever inserted (removals included)."""
        return self._sequence

    @property
    def cover_hit_rate(self) -> float:
        """Fraction of insertions absorbed by an existing coverer."""
        inserted = self._sequence
        return self.cover_hits / inserted if inserted else 0.0

    # -- maintenance -------------------------------------------------------------
    def add(self, profile: Profile) -> AddOutcome:
        """Insert ``profile``, keeping the covering reduction incremental."""
        pid = profile.profile_id
        if pid in self._entries:
            raise RoutingError(f"duplicate profile id {pid!r} in covering table")
        self._sequence += 1
        entry = TableEntry(profile=profile, sequence=self._sequence)
        touched = 0
        # First pass: is the newcomer covered?  Earlier arrivals win ties
        # between mutually covering profiles (order stability).
        actives = [e for e in self._entries.values() if e.active]
        for other in actives:
            touched += 1
            self.cover_checks += 1
            if profile_covers(other.profile, profile, self._schema):
                self.cover_hits += 1
                entry.active = False
                entry.covered_by = other.profile.profile_id
                self._covers.setdefault(other.profile.profile_id, set()).add(pid)
                self._entries[pid] = entry
                return AddOutcome(active=False, touched=touched)
        # Second pass: deactivate the active entries the newcomer covers.
        newly_covered: list[Profile] = []
        bucket = self._covers.setdefault(pid, set())
        for other in actives:
            touched += 1
            self.cover_checks += 1
            if profile_covers(profile, other.profile, self._schema):
                other_id = other.profile.profile_id
                other.active = False
                other.covered_by = pid
                bucket.add(other_id)
                # Re-home the entries the demoted profile covered: the
                # covering relation is transitive on match sets, so the
                # newcomer covers them too.
                for dep_id in self._covers.pop(other_id, set()):
                    self._entries[dep_id].covered_by = pid
                    bucket.add(dep_id)
                newly_covered.append(other.profile)
        self._entries[pid] = entry
        return AddOutcome(
            active=True, newly_covered=tuple(newly_covered), touched=touched
        )

    def remove(self, profile_id: str) -> RemoveOutcome:
        """Remove ``profile_id``, reactivating the entries it covered.

        Cost is proportional to the removed entry's own cover set (plus
        one coverer scan per freed entry), never to the table size; an
        isolated entry's removal touches no other entry at all.
        """
        entry = self._entries.pop(profile_id, None)
        if entry is None:
            raise RoutingError(f"unknown profile id {profile_id!r}")
        if not entry.active:
            # One reverse-index bucket update; no other entry moves.
            assert entry.covered_by is not None
            self._covers[entry.covered_by].discard(profile_id)
            return RemoveOutcome(was_active=False, was_forwarded=entry.forwarded)
        freed_ids = self._covers.pop(profile_id, set())
        touched = 0
        uncovered: list[TableEntry] = []
        # Arrival order keeps the reduction deterministic: an earlier
        # freed entry that gets reactivated can absorb a later one.
        freed = sorted((self._entries[fid] for fid in freed_ids), key=lambda e: e.sequence)
        for orphan in freed:
            touched += 1
            new_coverer = None
            for other in self._entries.values():
                if not other.active or other is orphan:
                    continue
                self.cover_checks += 1
                if profile_covers(other.profile, orphan.profile, self._schema):
                    new_coverer = other
                    break
            if new_coverer is not None:
                orphan.covered_by = new_coverer.profile.profile_id
                self._covers.setdefault(new_coverer.profile.profile_id, set()).add(
                    orphan.profile.profile_id
                )
            else:
                orphan.active = True
                orphan.covered_by = None
                uncovered.append(orphan)
        return RemoveOutcome(
            was_active=True,
            was_forwarded=entry.forwarded,
            uncovered=tuple(uncovered),
            touched=touched,
        )
