"""Profile covering.

In distributed notification services such as Siena, a broker only forwards a
subscription towards publishers when it is not *covered* by a subscription
it already forwarded: profile A covers profile B when every event matched by
B is also matched by A.  Covering keeps routing tables small and is the
standard complement to the early-rejection idea of the paper ("the concept
of early rejection on event-level is used for a distributed service").

Covering is decided per attribute on the predicate level:

* a don't-care predicate covers everything;
* an equality covers the same equality (and a one-of containing it);
* a range covers any range/equality whose accepted set lies inside it.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.domains import Domain
from repro.core.predicates import Equals, NotEquals, OneOf, Predicate, RangePredicate
from repro.core.profiles import Profile
from repro.core.schema import Schema

__all__ = ["predicate_covers", "profile_covers", "minimal_cover"]


def predicate_covers(general: Predicate, specific: Predicate, domain: Domain) -> bool:
    """Return ``True`` when ``general`` accepts every value ``specific`` accepts."""
    if general.is_dont_care:
        return True
    if specific.is_dont_care:
        # A constrained predicate can only cover * if it accepts the whole
        # domain, which we conservatively treat as "does not cover".
        return False
    if isinstance(general, Equals):
        if isinstance(specific, Equals):
            return general.value == specific.value
        if isinstance(specific, OneOf):
            return all(v == general.value for v in specific.values)
        return False
    if isinstance(general, OneOf):
        if isinstance(specific, Equals):
            return specific.value in general.values
        if isinstance(specific, OneOf):
            return all(v in general.values for v in specific.values)
        return False
    if isinstance(general, NotEquals):
        if isinstance(specific, Equals):
            return specific.value != general.value
        if isinstance(specific, OneOf):
            return general.value not in specific.values
        if isinstance(specific, NotEquals):
            return general.value == specific.value
        return False
    if isinstance(general, RangePredicate):
        if isinstance(specific, Equals):
            try:
                return general.matches(specific.value)
            except TypeError:  # pragma: no cover - non-numeric equality
                return False
        if isinstance(specific, OneOf):
            return all(general.matches(v) for v in specific.values)
        if isinstance(specific, RangePredicate):
            general_clamped = domain.full_interval().intersect(general.interval)
            specific_clamped = domain.full_interval().intersect(specific.interval)
            if specific_clamped is None:
                return True
            if general_clamped is None:
                return False
            return general_clamped.contains_interval(specific_clamped)
        return False
    return False


def profile_covers(general: Profile, specific: Profile, schema: Schema) -> bool:
    """Return ``True`` when ``general`` matches every event ``specific`` matches."""
    for attribute in schema:
        general_predicate = general.predicate(attribute.name)
        specific_predicate = specific.predicate(attribute.name)
        if not predicate_covers(general_predicate, specific_predicate, attribute.domain):
            return False
    return True


def minimal_cover(profiles: Iterable[Profile], schema: Schema) -> list[Profile]:
    """Return a minimal subset of ``profiles`` covering all of them.

    A profile is dropped when another retained profile covers it.  The result
    is what a broker forwards upstream; it is order-stable (earlier profiles
    win ties between mutually covering profiles).
    """
    retained: list[Profile] = []
    for candidate in profiles:
        covered = False
        for keeper in retained:
            if profile_covers(keeper, candidate, schema):
                covered = True
                break
        if covered:
            continue
        # Remove previously retained profiles that the candidate covers.
        retained = [
            keeper
            for keeper in retained
            if not profile_covers(candidate, keeper, schema)
        ]
        retained.append(candidate)
    return retained
