"""The distributed broker overlay: incremental routing on the modern stack.

This is the successor of the seed-era :mod:`~repro.service.routing.network`
module.  Every :class:`OverlayBroker` hosts a full
:class:`~repro.service.broker.Broker` for its local subscribers — any
engine family of the :class:`~repro.matching.registry.EngineRegistry`
(``tree`` / ``index`` / ``hybrid`` / ``sharded`` / ``auto``…), per-broker
choice, with statistics, notification log and the delivery pipeline —
plus, per overlay link, two routing structures:

* a :class:`~repro.service.routing.table.CoveringTable` holding every
  profile received over that link, covering-reduced **incrementally**
  (subscribe, unsubscribe, modify, pause and resume all apply
  O(affected-covers) deltas; removal *uncovers* the entries the removed
  profile covered and re-propagates the ones that were never forwarded);
* a :class:`~repro.matching.index.matcher.PredicateIndexMatcher` over the
  covering-reduced active set — the per-link *interest matcher* — so the
  forwarding decision is an indexed match (with the columnar batch kernel
  on batches), never a linear ``any(p.matches(e))`` scan.

Events travel in **batches**: :meth:`OverlayNetwork.publish_batch` walks
the overlay breadth-first with an explicit frontier deque (no recursion,
arbitrarily long chains are fine), delivers locally through each broker's
``publish_batch`` (columnar kernel) and forwards to each neighbour only
the subset of the batch its interest matcher accepts — early rejection
as close to the publisher as possible, the paper's idea "used for a
distributed service".  An optional
:class:`~repro.simulation.engine.SimulationEngine` plus latency model
runs the same traversal on simulated time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.errors import RoutingError
from repro.core.events import Event
from repro.core.profiles import Profile, ProfileSet
from repro.core.schema import Schema
from repro.matching.index.kernel import KernelStats
from repro.matching.index.matcher import PredicateIndexMatcher
from repro.service.adaptive import AdaptationPolicy, resolve_policy_engine
from repro.service.broker import Broker
from repro.service.notifications import Notification, NotificationSink
from repro.service.routing.table import CoveringTable
from repro.service.subscriptions import Subscription
from repro.simulation.engine import SimulationEngine
from repro.simulation.latency import ConstantLatency, LatencyModel

__all__ = ["LinkState", "NetworkDeliveryReport", "OverlayBroker", "OverlayNetwork"]


class LinkState:
    """Routing state one broker keeps for one overlay link.

    ``table`` stores every profile that arrived over the link (the
    covering bookkeeping lives there); ``interest`` indexes exactly the
    table's *active* set and answers "does anyone behind this link want
    this event?" through the engine stack.
    """

    def __init__(self, schema: Schema) -> None:
        self.table = CoveringTable(schema)
        self._interest_profiles = ProfileSet(schema)
        self.interest = PredicateIndexMatcher(self._interest_profiles)
        #: Per-link forwarding decisions (event granularity).
        self.events_forwarded = 0
        self.events_suppressed = 0

    def activate(self, profile: Profile) -> None:
        self.interest.add_profile(profile)

    def deactivate(self, profile_id: str) -> None:
        self.interest.remove_profile(profile_id)

    @property
    def interest_size(self) -> int:
        return len(self._interest_profiles)


class OverlayBroker:
    """One broker node: a full local engine plus per-link routing state."""

    def __init__(
        self,
        broker_id: str,
        schema: Schema,
        *,
        engine: str | None = None,
        policy: AdaptationPolicy | None = None,
        delivery: str = "inline",
    ) -> None:
        if policy is None and engine is None:
            engine = "auto"
        self.broker_id = broker_id
        self.schema = schema
        self.local = Broker(
            schema,
            broker_id=broker_id,
            adaptive=True,
            adaptation_policy=resolve_policy_engine(policy, engine),
            delivery=delivery,
        )
        #: Routing state per neighbouring broker id.
        self.links: dict[str, LinkState] = {}
        #: Events that arrived at this broker (local publishes included).
        self.events_in = 0

    def link(self, neighbour: str) -> LinkState:
        try:
            return self.links[neighbour]
        except KeyError as exc:
            raise RoutingError(
                f"broker {self.broker_id!r} has no link to {neighbour!r}"
            ) from exc

    def routing_table_size(self) -> int:
        """Return the total stored (active + covered) entries, all links."""
        return sum(len(state.table) for state in self.links.values())


@dataclass(frozen=True)
class NetworkDeliveryReport:
    """Summary of publishing one batch into the overlay."""

    origin: str
    events: tuple[Event, ...]
    #: Local notifications per broker id (only brokers that delivered).
    notifications: Mapping[str, tuple[Notification, ...]]
    #: Per event: the furthest hop distance from the origin it travelled
    #: (0 = suppressed at the publisher's own broker).
    event_hops: tuple[int, ...]
    #: Total event-link crossings (one event over one link = one hop).
    hops: int
    #: Distinct link transfers (a forwarded batch counts once however
    #: many events it carries) — what batching saves over per-event sends.
    link_transfers: int

    @property
    def total_notifications(self) -> int:
        return sum(len(batch) for batch in self.notifications.values())

    @property
    def max_hops(self) -> int:
        return max(self.event_hops, default=0)

    def suppressed_within(self, radius: int) -> int:
        """Return how many events never travelled past ``radius`` hops."""
        return sum(1 for distance in self.event_hops if distance <= radius)


class OverlayNetwork:
    """An acyclic overlay of :class:`OverlayBroker` nodes.

    Topology management mirrors the legacy
    :class:`~repro.service.routing.network.BrokerNetwork` (acyclicity is
    enforced, links are bidirectional); subscription state is maintained
    incrementally and events are routed in batches — see the module
    docstring for the protocol.
    """

    def __init__(
        self,
        schema: Schema,
        *,
        latency: LatencyModel | None = None,
    ) -> None:
        self._schema = schema
        self._brokers: dict[str, OverlayBroker] = {}
        self._adjacency: dict[str, set[str]] = {}
        self._latency = latency or ConstantLatency(1.0)
        #: Home broker of every live profile id (network-wide unique).
        self._homes: dict[str, str] = {}
        self._events_published = 0
        self._total_hops = 0
        self._total_link_transfers = 0

    # -- topology ---------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    def add_broker(
        self,
        broker_id: str,
        *,
        engine: str | None = None,
        policy: AdaptationPolicy | None = None,
        delivery: str = "inline",
    ) -> OverlayBroker:
        """Create a broker node (``engine`` picks its local family)."""
        if broker_id in self._brokers:
            raise RoutingError(f"duplicate broker id {broker_id!r}")
        broker = OverlayBroker(
            broker_id, self._schema, engine=engine, policy=policy, delivery=delivery
        )
        self._brokers[broker_id] = broker
        self._adjacency[broker_id] = set()
        return broker

    def connect(self, first: str, second: str) -> None:
        """Create a bidirectional overlay link between two brokers.

        Linking two components *after* subscriptions exist replays the
        live interest across the new link: every profile homed on one
        side floods into the other (in original subscription order, with
        the usual covering pruning), so a grown topology routes exactly
        like one built up front.
        """
        a, b = self.broker(first), self.broker(second)
        if first == second:
            raise RoutingError("cannot connect a broker to itself")
        if second in self._adjacency[first]:
            raise RoutingError(f"link {first!r} - {second!r} already exists")
        if self._connected(first, second):
            raise RoutingError(
                f"link {first!r} - {second!r} would create a cycle in the overlay"
            )
        first_side = self._component(first)
        self._adjacency[first].add(second)
        self._adjacency[second].add(first)
        a.links[second] = LinkState(self._schema)
        b.links[first] = LinkState(self._schema)
        for pid, home in list(self._homes.items()):
            profile = self._brokers[home].local.subscriptions.by_profile_id(pid).profile
            if home in first_side:
                self._flood_add(profile, deque([(second, first)]))
            else:
                self._flood_add(profile, deque([(first, second)]))

    def _connected(self, first: str, second: str) -> bool:
        return second in self._component(first)

    def _component(self, start: str) -> set[str]:
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbour in self._adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        return seen

    def broker(self, broker_id: str) -> OverlayBroker:
        try:
            return self._brokers[broker_id]
        except KeyError as exc:
            raise RoutingError(f"unknown broker {broker_id!r}") from exc

    def brokers(self) -> list[str]:
        return list(self._brokers)

    def neighbours(self, broker_id: str) -> list[str]:
        self.broker(broker_id)
        return sorted(self._adjacency[broker_id])

    # -- subscription churn -----------------------------------------------------
    def subscribe(
        self,
        broker_id: str,
        profile: Profile,
        subscriber: str,
        *,
        sink: NotificationSink | None = None,
        delivery: str | None = None,
    ) -> Subscription:
        """Register a subscription at its home broker and propagate it."""
        pid = profile.profile_id
        if pid in self._homes:
            raise RoutingError(
                f"profile id {pid!r} is already subscribed in the network "
                f"(home broker {self._homes[pid]!r})"
            )
        home = self.broker(broker_id)
        subscription = home.local.subscribe(
            profile, subscriber, sink=sink, delivery=delivery
        )
        self._homes[pid] = broker_id
        self._propagate_add(broker_id, profile)
        return subscription

    def unsubscribe(self, broker_id: str, subscription_id: str) -> Subscription:
        """Cancel a subscription and retract (or uncover) its routing state."""
        home = self.broker(broker_id)
        subscription = home.local.subscriptions.get(subscription_id)
        pid = subscription.profile.profile_id
        removed = home.local.unsubscribe(subscription_id)
        self._retract(broker_id, pid)
        return removed

    def pause(self, broker_id: str, subscription_id: str) -> Subscription:
        """Pause delivery *and* withdraw the profile from routing tables."""
        home = self.broker(broker_id)
        subscription = home.local.pause_subscription(subscription_id)
        self._retract(broker_id, subscription.profile.profile_id)
        return subscription

    def resume(self, broker_id: str, subscription_id: str) -> Subscription:
        """Resume delivery and re-propagate the profile."""
        home = self.broker(broker_id)
        subscription = home.local.resume_subscription(subscription_id)
        pid = subscription.profile.profile_id
        self._homes[pid] = broker_id
        self._propagate_add(broker_id, subscription.profile)
        return subscription

    def modify(
        self, broker_id: str, subscription_id: str, profile: Profile
    ) -> Subscription:
        """Swap a subscription's profile; routing state follows the delta."""
        home = self.broker(broker_id)
        old = home.local.subscriptions.get(subscription_id)
        was_paused = home.local.is_paused(subscription_id)
        updated = home.local.modify_subscription(subscription_id, profile)
        if not was_paused:
            self._retract(broker_id, old.profile.profile_id)
            self._homes[profile.profile_id] = broker_id
            self._propagate_add(broker_id, profile)
        return updated

    def _retract(self, home_id: str, pid: str) -> None:
        self._homes.pop(pid, None)
        self._propagate_remove(home_id, pid)

    def _propagate_add(
        self, start_id: str, profile: Profile, *, exclude: str | None = None
    ) -> None:
        """Flood ``profile`` away from ``start_id``, pruning at covers.

        Iterative BFS: each visited broker inserts the profile into the
        covering table of the link it arrived on; a covered insert stores
        the entry inactive and stops the flood on that branch.
        """
        self._flood_add(
            profile,
            deque(
                (neighbour, start_id)
                for neighbour in sorted(self._adjacency[start_id])
                if neighbour != exclude
            ),
        )

    def _flood_add(self, profile: Profile, frontier: deque[tuple[str, str]]) -> None:
        while frontier:
            broker_id, came_from = frontier.popleft()
            broker = self._brokers[broker_id]
            link = broker.link(came_from)
            outcome = link.table.add(profile)
            if not outcome.active:
                continue  # covered here: the flood stops on this branch
            link.table.entry(profile.profile_id).forwarded = True
            link.activate(profile)
            for covered in outcome.newly_covered:
                # The newcomer subsumes them in the interest index; their
                # table entries (and ``forwarded`` flags) survive for
                # uncovering.  No downstream retraction: forwarding a
                # covered profile is redundant, never wrong.
                link.deactivate(covered.profile_id)
            for neighbour in sorted(self._adjacency[broker_id]):
                if neighbour != came_from:
                    frontier.append((neighbour, broker_id))

    def _propagate_remove(self, start_id: str, pid: str) -> None:
        """Retract ``pid`` away from ``start_id``, uncovering as needed.

        At each broker the removal frees the entries the profile covered
        (O(affected covers) via the table's reverse index); a freed entry
        that was never forwarded downstream is re-propagated now — the
        uncovering rule that keeps pruning sound under churn.
        """
        frontier: deque[tuple[str, str]] = deque(
            (neighbour, start_id) for neighbour in sorted(self._adjacency[start_id])
        )
        while frontier:
            broker_id, came_from = frontier.popleft()
            broker = self._brokers[broker_id]
            link = broker.link(came_from)
            if pid not in link.table:
                continue  # the add never reached this branch
            outcome = link.table.remove(pid)
            if outcome.was_active:
                link.deactivate(pid)
            for orphan in outcome.uncovered:
                link.activate(orphan.profile)
                if not orphan.forwarded:
                    orphan.forwarded = True
                    self._propagate_add(
                        broker_id, orphan.profile, exclude=came_from
                    )
            if outcome.was_forwarded:
                for neighbour in sorted(self._adjacency[broker_id]):
                    if neighbour != came_from:
                        frontier.append((neighbour, broker_id))

    # -- event routing ----------------------------------------------------------
    def publish(
        self,
        broker_id: str,
        event: Event,
        *,
        simulation: SimulationEngine | None = None,
    ) -> NetworkDeliveryReport:
        """Publish a single event (a batch of one)."""
        return self.publish_batch(broker_id, [event], simulation=simulation)

    def publish_batch(
        self,
        broker_id: str,
        events: Iterable[Event],
        *,
        simulation: SimulationEngine | None = None,
    ) -> NetworkDeliveryReport:
        """Publish a batch at ``broker_id`` and route it to all subscribers.

        The batch stays together per link: each broker delivers locally
        via its engine's ``publish_batch`` and forwards to a neighbour
        exactly the subset its interest matcher accepts.  Partial events
        are accepted, matching the central service's semantics.  With
        ``simulation`` the hop traversal runs on simulated time under the
        network's latency model (the call drains the engine's queue).
        """
        batch = list(events)
        for event in batch:
            event.validate(self._schema, require_all=False)
        origin = self.broker(broker_id)
        notifications: dict[str, list[Notification]] = {}
        event_hops = [0] * len(batch)
        hops = 0
        link_transfers = 0

        def handle(
            broker: OverlayBroker,
            came_from: str | None,
            indices: Sequence[int],
            depth: int,
            timestamp: float,
        ) -> None:
            nonlocal hops, link_transfers
            broker.events_in += len(indices)
            sub_batch = [batch[i] for i in indices]
            outcomes = broker.local.publish_batch(
                sub_batch, timestamps=[timestamp] * len(indices)
            )
            delivered = [n for outcome in outcomes for n in outcome.notifications]
            if delivered:
                notifications.setdefault(broker.broker_id, []).extend(delivered)
            for neighbour in sorted(self._adjacency[broker.broker_id]):
                if neighbour == came_from:
                    continue
                link = broker.link(neighbour)
                if link.interest_size == 0:
                    link.events_suppressed += len(indices)
                    continue
                results = link.interest.match_batch(sub_batch)
                forward = [
                    index
                    for index, result in zip(indices, results)
                    if result.is_match
                ]
                link.events_forwarded += len(forward)
                link.events_suppressed += len(indices) - len(forward)
                if not forward:
                    continue
                hops += len(forward)
                link_transfers += 1
                for index in forward:
                    event_hops[index] = max(event_hops[index], depth + 1)
                delay = self._latency.delay(broker.broker_id, neighbour)
                target = self._brokers[neighbour]
                if simulation is None:
                    frontier.append(
                        (target, broker.broker_id, forward, depth + 1, timestamp + delay)
                    )
                else:
                    simulation.schedule_after(
                        delay,
                        lambda eng, t=target, c=broker.broker_id, f=forward, d=depth + 1: handle(
                            t, c, f, d, eng.clock.now
                        ),
                        description=f"forward {len(forward)} events to {neighbour}",
                    )

        self._events_published += len(batch)
        start_time = simulation.clock.now if simulation is not None else 0.0
        if simulation is None:
            # Iterative breadth-first traversal: an explicit frontier
            # deque, one entry per (broker, incoming link, event subset) —
            # chain length never touches the Python stack.
            frontier: deque[tuple[OverlayBroker, str | None, Sequence[int], int, float]]
            frontier = deque([(origin, None, range(len(batch)), 0, start_time)])
            while frontier:
                frontier_entry = frontier.popleft()
                handle(*frontier_entry)
        else:
            frontier = deque()  # unused: the simulation queue is the frontier
            handle(origin, None, range(len(batch)), 0, start_time)
            simulation.run()
        self._total_hops += hops
        self._total_link_transfers += link_transfers
        return NetworkDeliveryReport(
            origin=broker_id,
            events=tuple(batch),
            notifications={
                broker: tuple(delivered)
                for broker, delivered in notifications.items()
            },
            event_hops=tuple(event_hops),
            hops=hops,
            link_transfers=link_transfers,
        )

    # -- accounting -------------------------------------------------------------
    @property
    def events_published(self) -> int:
        return self._events_published

    @property
    def total_hops(self) -> int:
        """Return cumulative event-link crossings across all publishes."""
        return self._total_hops

    @property
    def total_link_transfers(self) -> int:
        """Return cumulative batched link transfers across all publishes."""
        return self._total_link_transfers

    def interest_kernel_stats(self) -> KernelStats:
        """Aggregate the per-link interest matchers' kernel accounting."""
        total = KernelStats()
        for broker in self._brokers.values():
            for link in broker.links.values():
                total.merge(link.interest.kernel_stats)
        return total

    def cover_counters(self) -> tuple[int, int]:
        """Return network-wide ``(cover_checks, cover_hits)``."""
        checks = hits = 0
        for broker in self._brokers.values():
            for link in broker.links.values():
                checks += link.table.cover_checks
                hits += link.table.cover_hits
        return checks, hits

    def routing_table_entries(self) -> int:
        return sum(b.routing_table_size() for b in self._brokers.values())

    # -- life-cycle -------------------------------------------------------------
    def drain(self) -> None:
        for broker in self._brokers.values():
            broker.local.drain_deliveries()

    def close(self, *, drain: bool = True) -> None:
        for broker in self._brokers.values():
            broker.local.close(drain=drain)
