"""A Siena-style broker overlay network.

Brokers form an acyclic overlay (a tree or any connected graph restricted to
its spanning tree); subscriptions are propagated away from the subscriber's
home broker with covering-based pruning, and published events are forwarded
only along links from which a non-covered subscription arrived, so that
unneeded events are rejected as early — as close to the publisher — as
possible.  Every broker runs the distribution-aware tree filter of the core
library for its local deliveries.

The implementation runs either synchronously (hop-by-hop, immediate) or on
the :class:`~repro.simulation.engine.SimulationEngine` with a latency model,
which is what the ``broker_network`` example uses.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import RoutingError
from repro.core.events import Event
from repro.core.profiles import Profile, ProfileSet
from repro.core.schema import Schema
from repro.matching.tree.matcher import TreeMatcher
from repro.service.notifications import Notification, NotificationLog
from repro.service.routing.covering import minimal_cover, profile_covers
from repro.simulation.engine import SimulationEngine
from repro.simulation.latency import ConstantLatency, LatencyModel

__all__ = ["RoutingBroker", "BrokerNetwork", "DeliveryReport"]


@dataclass(frozen=True)
class DeliveryReport:
    """Summary of publishing one event into the network."""

    event: Event
    origin: str
    #: Brokers that received the event (including the origin).
    brokers_visited: tuple[str, ...]
    #: Local notifications delivered, keyed by broker id.
    notifications: Mapping[str, tuple[Notification, ...]]
    #: Total hops the event travelled.
    hops: int

    @property
    def total_notifications(self) -> int:
        return sum(len(n) for n in self.notifications.values())


class RoutingBroker:
    """One broker in the overlay: local subscriptions plus routing state."""

    def __init__(self, broker_id: str, schema: Schema) -> None:
        self.broker_id = broker_id
        self.schema = schema
        #: Locally registered profiles (from directly connected subscribers).
        self.local_profiles = ProfileSet(schema)
        #: Subscriber of each local profile.
        self.local_subscribers: dict[str, str] = {}
        #: Remote interest per neighbouring broker: the (covering-reduced)
        #: profiles that arrived from that neighbour.
        self.remote_interest: dict[str, list[Profile]] = defaultdict(list)
        #: Local filter; rebuilt lazily when subscriptions change.
        self._matcher: TreeMatcher | None = None
        self.notification_log = NotificationLog()
        self.events_received = 0

    # -- subscription state --------------------------------------------------------
    def add_local_profile(self, profile: Profile, subscriber: str) -> None:
        self.local_profiles.add(profile)
        self.local_subscribers[profile.profile_id] = subscriber
        self._matcher = None

    def add_remote_interest(self, neighbour: str, profile: Profile) -> bool:
        """Register interest from a neighbour; returns ``False`` if covered."""
        existing = self.remote_interest[neighbour]
        for known in existing:
            if profile_covers(known, profile, self.schema):
                return False
        existing.append(profile)
        self.remote_interest[neighbour] = minimal_cover(existing, self.schema)
        return True

    # -- local filtering ------------------------------------------------------------
    def matcher(self) -> TreeMatcher | None:
        """Return (building lazily) the local tree matcher."""
        if len(self.local_profiles) == 0:
            return None
        if self._matcher is None:
            self._matcher = TreeMatcher(self.local_profiles)
        return self._matcher

    def deliver_locally(self, event: Event, timestamp: float) -> tuple[Notification, ...]:
        """Filter the event against local profiles and log notifications."""
        self.events_received += 1
        matcher = self.matcher()
        if matcher is None:
            return tuple()
        result = matcher.match(event)
        notifications = []
        for profile_id in result.matched_profile_ids:
            notification = Notification(
                event=event,
                profile_id=profile_id,
                subscriber=self.local_subscribers.get(profile_id),
                broker_id=self.broker_id,
                delivered_at=timestamp,
                filter_operations=result.operations,
            )
            self.notification_log.deliver(notification)
            notifications.append(notification)
        return tuple(notifications)


class BrokerNetwork:
    """An acyclic overlay of :class:`RoutingBroker` instances."""

    def __init__(
        self,
        schema: Schema,
        *,
        latency: LatencyModel | None = None,
    ) -> None:
        self._schema = schema
        self._brokers: dict[str, RoutingBroker] = {}
        self._links: dict[str, set[str]] = defaultdict(set)
        self._latency = latency or ConstantLatency(1.0)

    # -- topology --------------------------------------------------------------------
    def add_broker(self, broker_id: str) -> RoutingBroker:
        """Create a broker node."""
        if broker_id in self._brokers:
            raise RoutingError(f"duplicate broker id {broker_id!r}")
        broker = RoutingBroker(broker_id, self._schema)
        self._brokers[broker_id] = broker
        return broker

    def connect(self, first: str, second: str) -> None:
        """Create a bidirectional overlay link between two brokers."""
        if first not in self._brokers or second not in self._brokers:
            raise RoutingError("both brokers must exist before connecting them")
        if first == second:
            raise RoutingError("cannot connect a broker to itself")
        if self._would_create_cycle(first, second):
            raise RoutingError(
                f"link {first!r} - {second!r} would create a cycle in the overlay"
            )
        self._links[first].add(second)
        self._links[second].add(first)

    def _would_create_cycle(self, first: str, second: str) -> bool:
        # The overlay must stay acyclic (Siena's tree topology): adding a
        # link between two already-connected brokers closes a cycle.
        if second in self._links[first]:
            return False
        seen = {first}
        queue = deque([first])
        while queue:
            node = queue.popleft()
            for neighbour in self._links[node]:
                if neighbour == second:
                    return True
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        return False

    def broker(self, broker_id: str) -> RoutingBroker:
        try:
            return self._brokers[broker_id]
        except KeyError as exc:
            raise RoutingError(f"unknown broker {broker_id!r}") from exc

    def brokers(self) -> list[str]:
        """Return all broker ids."""
        return list(self._brokers)

    def neighbours(self, broker_id: str) -> list[str]:
        """Return the overlay neighbours of one broker."""
        self.broker(broker_id)
        return sorted(self._links[broker_id])

    # -- subscription propagation -------------------------------------------------------
    def subscribe(self, broker_id: str, profile: Profile, subscriber: str) -> None:
        """Register a subscription at its home broker and propagate it.

        The profile is flooded away from the home broker; a broker stops the
        propagation towards a neighbour when the neighbour already forwarded
        a covering profile (covering-based pruning).
        """
        home = self.broker(broker_id)
        home.add_local_profile(profile, subscriber)
        # Propagate: BFS away from the home broker.  ``came_from`` is the
        # neighbour the interest arrived from, so each broker records which
        # link leads back towards the subscriber.
        queue: deque[tuple[str, str]] = deque()
        for neighbour in self._links[broker_id]:
            queue.append((neighbour, broker_id))
        visited = {broker_id}
        while queue:
            current_id, came_from = queue.popleft()
            if current_id in visited:
                continue
            visited.add(current_id)
            current = self.broker(current_id)
            if not current.add_remote_interest(came_from, profile):
                # Covered: no need to forward any further on this branch.
                continue
            for neighbour in self._links[current_id]:
                if neighbour != came_from and neighbour not in visited:
                    queue.append((neighbour, current_id))

    # -- event routing -----------------------------------------------------------------
    def publish(
        self,
        broker_id: str,
        event: Event,
        *,
        engine: SimulationEngine | None = None,
    ) -> DeliveryReport:
        """Publish an event at ``broker_id`` and route it to all subscribers.

        With ``engine`` the hops are scheduled on simulated time using the
        network's latency model; without it the routing happens
        synchronously (hop order is still breadth-first).
        """
        # Partial events are accepted, matching the central Broker /
        # FilterService semantics (a profile constraining a missing
        # attribute simply does not match).
        event.validate(self._schema, require_all=False)
        origin = self.broker(broker_id)
        visited: list[str] = []
        notifications: dict[str, tuple[Notification, ...]] = {}
        hops = 0
        # Hop traversal is iterative (explicit deque): a long broker
        # chain must never recurse once per hop into the Python stack.
        frontier: deque[tuple[RoutingBroker, str | None, float]] = deque()

        def handle(broker: RoutingBroker, came_from: str | None, timestamp: float) -> None:
            nonlocal hops
            visited.append(broker.broker_id)
            local = broker.deliver_locally(event, timestamp)
            if local:
                notifications[broker.broker_id] = local
            for neighbour in sorted(self._links[broker.broker_id]):
                if neighbour == came_from:
                    continue
                if not self._neighbour_interested(broker, neighbour, event):
                    continue
                hops += 1
                delay = self._latency.delay(broker.broker_id, neighbour)
                if engine is None:
                    frontier.append(
                        (self.broker(neighbour), broker.broker_id, timestamp + delay)
                    )
                else:
                    engine.schedule_after(
                        delay,
                        lambda eng, b=neighbour, c=broker.broker_id: handle(
                            self.broker(b), c, eng.clock.now
                        ),
                        description=f"forward event to {neighbour}",
                    )

        start_time = engine.clock.now if engine is not None else 0.0
        frontier.append((origin, None, start_time))
        while frontier:
            handle(*frontier.popleft())
        if engine is not None:
            engine.run()
        return DeliveryReport(
            event=event,
            origin=broker_id,
            brokers_visited=tuple(visited),
            notifications=notifications,
            hops=hops,
        )

    def _neighbour_interested(
        self, broker: RoutingBroker, neighbour: str, event: Event
    ) -> bool:
        """Return ``True`` when the event must be forwarded to ``neighbour``.

        The interest registered *at this broker* for the link towards
        ``neighbour`` is the set of profiles that arrived from that link —
        i.e. subscriptions living somewhere behind it.  The event is
        forwarded only when one of them matches (early rejection close to
        the publisher).
        """
        interests = broker.remote_interest.get(neighbour, [])
        return any(profile.matches(event) for profile in interests)
