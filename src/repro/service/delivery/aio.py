"""Asyncio delivery: async sinks on an event loop owned by the service.

The executor owns one long-lived event loop on a background thread.
Every subscription gets its own FIFO lane (a bounded deque) with one
consumer coroutine that pops tasks and ``await``s async sinks (plain
callables are invoked directly on the loop) — per-subscription FIFO is a
consequence of the single consumer per lane, while *different*
subscriptions' sinks interleave cooperatively on the loop, which is the
point: a thousand slow ``await``-ing subscribers cost one thread.

Publisher-side backpressure mirrors the threadpool executor: each lane
holds at most ``queue_capacity`` tasks and a full lane applies the
``block`` / ``drop_oldest`` / ``raise`` overflow policy at ``submit``
time, on the publishing thread.  Sink exceptions are swallowed and
counted (``failed``), never propagated into the loop.  With
``retry_attempts > 1`` an ordinary :class:`Exception` is re-attempted
after an ``await asyncio.sleep(retry_backoff * 2**n)`` — the lane's
consumer yields during the backoff, so other subscriptions keep flowing
on the loop; extra attempts are counted in ``retried``.
"""

from __future__ import annotations

import asyncio
import inspect
import threading
import time
from collections import deque

from repro.core.errors import DeliveryError, DeliveryOverflowError
from repro.service.delivery.base import DeliveryTask, validate_overflow_policy
from repro.service.delivery.stats import DeliveryCounters, DeliveryStats

__all__ = ["AsyncioDeliveryExecutor"]


class AsyncioDeliveryExecutor:
    """Deliver notifications on a service-owned asyncio event loop."""

    name = "asyncio"

    def __init__(
        self,
        *,
        queue_capacity: int = 1024,
        overflow: str = "block",
        retry_attempts: int = 1,
        retry_backoff: float = 0.0,
        counters: DeliveryCounters | None = None,
    ) -> None:
        if queue_capacity < 1:
            raise DeliveryError("queue_capacity must be at least 1")
        if retry_attempts < 1:
            raise DeliveryError("retry_attempts must be at least 1")
        if retry_backoff < 0.0:
            raise DeliveryError("retry_backoff must not be negative")
        self._retry_attempts = retry_attempts
        self._retry_backoff = retry_backoff
        self._overflow = validate_overflow_policy(overflow)
        self._capacity = queue_capacity
        self._counters = counters if counters is not None else DeliveryCounters()
        #: Guards the lanes, the consumer roster and the closed flag; the
        #: condition is notified whenever a lane frees a slot.
        self._condition = threading.Condition()
        self._lanes: dict[str, deque[DeliveryTask]] = {}
        self._consuming: set[str] = set()
        #: Tasks popped by a consumer but not yet executed; a
        #: non-draining close reconciles them as dropped (the stopped
        #: loop will never resume the suspended coroutine).
        self._in_flight = 0
        self._closed = False
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-delivery-asyncio", daemon=True
        )
        self._thread.start()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    # -- publisher side ---------------------------------------------------------
    def submit(self, task: DeliveryTask) -> None:
        subscription_id = task.subscription_id
        with self._condition:
            if self._closed:
                raise DeliveryError("the asyncio delivery executor is closed")
            lane = self._lanes.setdefault(subscription_id, deque())
            while len(lane) >= self._capacity:
                if self._overflow == "drop_oldest":
                    lane.popleft()
                    self._counters.discarded()
                elif self._overflow == "raise":
                    raise DeliveryOverflowError(
                        f"delivery lane full ({self._capacity} tasks) for "
                        f"subscription {subscription_id!r}"
                    )
                else:  # block: wait for the consumer to free a slot
                    self._condition.wait()
                    if self._closed:
                        raise DeliveryError(
                            "the asyncio delivery executor closed while "
                            "waiting for queue space"
                        )
                    lane = self._lanes.setdefault(subscription_id, deque())
            lane.append(task)
            self._counters.accepted()
            if subscription_id not in self._consuming:
                self._consuming.add(subscription_id)
                # Scheduled while still holding the condition (the call
                # only enqueues a loop callback): close() cannot stop
                # the loop between acceptance and scheduling.
                asyncio.run_coroutine_threadsafe(
                    self._consume(subscription_id), self._loop
                )

    # -- loop side --------------------------------------------------------------
    async def _consume(self, subscription_id: str) -> None:
        """Drain one subscription's lane serially (the FIFO guarantee)."""
        while True:
            with self._condition:
                lane = self._lanes.get(subscription_id)
                if not lane:
                    self._consuming.discard(subscription_id)
                    self._lanes.pop(subscription_id, None)
                    self._condition.notify_all()  # close() awaits consumer exit
                    return
                task = lane.popleft()
                self._in_flight += 1
                self._condition.notify_all()
            ok = True
            attempt = 0
            while True:
                attempt += 1
                try:
                    result = task.sink(task.notification)
                    if inspect.isawaitable(result):
                        await result
                    break
                except Exception:
                    # Transient sink failures are retried within the
                    # budget; the backoff awaits, so the loop (and every
                    # other lane) keeps running during it.
                    if attempt >= self._retry_attempts:
                        ok = False
                        break
                    self._counters.retrying()
                    if self._retry_backoff > 0.0:
                        await asyncio.sleep(
                            self._retry_backoff * (2 ** (attempt - 1))
                        )
                except BaseException:
                    # BaseException included: a sink raising SystemExit must
                    # neither kill the lane's consumer nor leak the pending
                    # count (hanging every later drain()).  Never retried.
                    ok = False
                    break
            with self._condition:
                self._in_flight -= 1
                self._counters.executed(ok=ok)

    # -- life-cycle -------------------------------------------------------------
    def drain(self) -> None:
        """Block until every accepted task was delivered or dropped."""
        self._counters.wait_idle()

    def close(self, *, drain: bool = True) -> None:
        """Stop the loop; by default queued deliveries complete first.

        ``_closed`` is set *before* draining (as on the threadpool), so
        a publish racing the close either completes its submit first —
        and the task is drained — or gets the contractual
        :class:`~repro.core.errors.DeliveryError`; an accepted task can
        never slip in behind the drain and be silently discarded.
        """
        if not self._thread.is_alive():
            return
        with self._condition:
            self._closed = True  # no further submissions from here on
            if not drain:
                for lane in self._lanes.values():
                    self._counters.discarded(len(lane))
                    lane.clear()
            self._condition.notify_all()
        if drain:
            # The loop still runs: the consumers empty their lanes.
            self._counters.wait_idle()
        with self._condition:
            # Let the consumer coroutines observe their empty/cleared
            # lanes and deregister before the loop stops (bounded: an
            # async sink hung mid-await must not hang close forever).
            deadline = time.monotonic() + 1.0
            while self._consuming and time.monotonic() < deadline:
                self._condition.wait(timeout=0.05)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()
        with self._condition:
            if self._in_flight:
                # A consumer died suspended mid-await when the loop
                # stopped (non-draining close); its task will never
                # execute — account it as dropped so the at-most-once
                # invariant holds and drain() can never hang.
                self._counters.discarded(self._in_flight)
                self._in_flight = 0

    def stats(self) -> DeliveryStats:
        return self._counters.snapshot(mode=self.name, executors=(self.name,))
