"""Bounded worker-pool delivery with per-subscription FIFO lanes.

``max_workers`` daemon threads each serve a fixed subset of
subscriptions: a subscription id is hashed to one worker, so every
notification of one subscription runs on the same thread in submission
order — the per-subscription FIFO guarantee falls out of the routing,
with no cross-lane synchronisation on the delivery path.  A worker
executes its subscriptions' tasks in arrival order (one shared run
queue per worker).

Capacity is **per subscription**, exactly as on the asyncio executor:
each subscription may have at most ``queue_capacity`` tasks queued, and
a full subscription lane applies the executor's overflow policy at
``submit`` time — to that subscription alone, never to others sharing
the worker.  ``"block"`` parks the publisher until the worker frees a
slot (backpressure — the matcher is throttled by delivery, never
blocked *inside* a sink), ``"drop_oldest"`` discards the subscription's
oldest queued task (at-most-once: the dropped task is gone for good,
counted in the stats), ``"raise"`` surfaces
:class:`~repro.core.errors.DeliveryOverflowError` to the publisher.

Sink exceptions are swallowed and counted (``failed``): a broken
subscriber must not take down a worker shared with other subscriptions.
With ``retry_attempts > 1`` a sink raising an ordinary :class:`Exception`
is re-attempted (after ``retry_backoff * 2**n`` seconds) before counting
as failed; extra attempts are counted in ``retried``.  The default budget
of one attempt preserves the historical never-retried semantics.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque

from repro.core.errors import DeliveryError, DeliveryOverflowError
from repro.service.delivery.base import (
    DeliveryTask,
    close_bridge_loop,
    invoke_sink,
    validate_overflow_policy,
)
from repro.service.delivery.stats import DeliveryCounters, DeliveryStats

__all__ = ["ThreadPoolDeliveryExecutor"]


class _Lane:
    """One worker's run queue, per-subscription occupancy and wakeup."""

    __slots__ = ("condition", "queue", "queued_per_subscription")

    def __init__(self) -> None:
        self.condition = threading.Condition()
        #: Tasks in arrival order across the worker's subscriptions.
        self.queue: deque[DeliveryTask] = deque()
        #: Queued tasks per subscription (the capacity unit).
        self.queued_per_subscription: Counter = Counter()

    def pop_oldest_of(self, subscription_id: str) -> DeliveryTask:
        """Remove and return the subscription's oldest queued task."""
        for index, task in enumerate(self.queue):
            if task.subscription_id == subscription_id:
                del self.queue[index]
                return task
        raise AssertionError(  # pragma: no cover - guarded by the counter
            f"no queued task for subscription {subscription_id!r}"
        )


class ThreadPoolDeliveryExecutor:
    """Deliver notifications on a bounded pool of worker threads."""

    name = "threadpool"

    def __init__(
        self,
        *,
        max_workers: int = 4,
        queue_capacity: int = 1024,
        overflow: str = "block",
        retry_attempts: int = 1,
        retry_backoff: float = 0.0,
        counters: DeliveryCounters | None = None,
    ) -> None:
        if max_workers < 1:
            raise DeliveryError("max_workers must be at least 1")
        if queue_capacity < 1:
            raise DeliveryError("queue_capacity must be at least 1")
        if retry_attempts < 1:
            raise DeliveryError("retry_attempts must be at least 1")
        if retry_backoff < 0.0:
            raise DeliveryError("retry_backoff must not be negative")
        self._retry_attempts = retry_attempts
        self._retry_backoff = retry_backoff
        self._overflow = validate_overflow_policy(overflow)
        self._capacity = queue_capacity
        self._counters = counters if counters is not None else DeliveryCounters()
        self._closed = False
        self._lanes = [_Lane() for _ in range(max_workers)]
        self._workers = [
            threading.Thread(
                target=self._work,
                args=(lane,),
                name=f"repro-delivery-{index}",
                daemon=True,
            )
            for index, lane in enumerate(self._lanes)
        ]
        for worker in self._workers:
            worker.start()

    # -- publisher side ---------------------------------------------------------
    def _lane_for(self, subscription_id: str) -> _Lane:
        # Stable within the process is all FIFO needs; hash() is stable
        # per run (per-subscription ordering never crosses processes).
        return self._lanes[hash(subscription_id) % len(self._lanes)]

    def submit(self, task: DeliveryTask) -> None:
        subscription_id = task.subscription_id
        lane = self._lane_for(subscription_id)
        with lane.condition:
            if self._closed:
                raise DeliveryError("the threadpool delivery executor is closed")
            while lane.queued_per_subscription[subscription_id] >= self._capacity:
                if self._overflow == "drop_oldest":
                    lane.pop_oldest_of(subscription_id)
                    lane.queued_per_subscription[subscription_id] -= 1
                    self._counters.discarded()
                elif self._overflow == "raise":
                    raise DeliveryOverflowError(
                        f"delivery lane full ({self._capacity} tasks) for "
                        f"subscription {subscription_id!r}"
                    )
                else:  # block: wait for the worker to free a slot
                    lane.condition.wait()
                    if self._closed:
                        raise DeliveryError(
                            "the threadpool delivery executor closed while "
                            "waiting for queue space"
                        )
            lane.queue.append(task)
            lane.queued_per_subscription[subscription_id] += 1
            self._counters.accepted()
            lane.condition.notify_all()

    # -- worker side ------------------------------------------------------------
    def _work(self, lane: _Lane) -> None:
        try:
            self._serve(lane)
        finally:
            close_bridge_loop()  # async-sink bridge loop dies with the thread

    def _serve(self, lane: _Lane) -> None:
        while True:
            with lane.condition:
                while not lane.queue and not self._closed:
                    lane.condition.wait()
                if not lane.queue:
                    return  # closed and fully drained
                task = lane.queue.popleft()
                remaining = lane.queued_per_subscription[task.subscription_id] - 1
                if remaining > 0:
                    lane.queued_per_subscription[task.subscription_id] = remaining
                else:
                    del lane.queued_per_subscription[task.subscription_id]
                lane.condition.notify_all()
            ok = True
            attempt = 0
            while True:
                attempt += 1
                try:
                    invoke_sink(task.sink, task.notification)
                    break
                except Exception:
                    # Transient sink failures are retried within the
                    # budget; the final attempt settles as failed.
                    if attempt >= self._retry_attempts:
                        ok = False
                        break
                    self._counters.retrying()
                    if self._retry_backoff > 0.0:
                        time.sleep(self._retry_backoff * (2 ** (attempt - 1)))
                except BaseException:
                    # BaseException included: a sink calling sys.exit must
                    # neither kill the worker (orphaning its lane) nor leak
                    # the pending count (hanging every later drain()).
                    # Never retried: such escapes are not transient.
                    ok = False
                    break
            self._counters.executed(ok=ok)

    # -- life-cycle -------------------------------------------------------------
    def drain(self) -> None:
        """Block until every accepted task was delivered or dropped."""
        self._counters.wait_idle()

    def close(self, *, drain: bool = True) -> None:
        """Stop the pool; by default the workers finish their queues first."""
        if self._closed and not any(worker.is_alive() for worker in self._workers):
            return
        for lane in self._lanes:
            with lane.condition:
                if not drain:
                    self._counters.discarded(len(lane.queue))
                    lane.queue.clear()
                    lane.queued_per_subscription.clear()
                self._closed = True
                lane.condition.notify_all()
        for worker in self._workers:
            worker.join()

    def stats(self) -> DeliveryStats:
        return self._counters.snapshot(mode=self.name, executors=(self.name,))
