"""Synchronous in-publisher-thread delivery (the historical default).

``submit`` runs the sink before returning, on the publishing thread, so
``publish()`` keeps today's semantics exactly: when it returns, every
sink has observed its notification, and a sink exception propagates to
the publisher (asynchronous executors instead swallow and count sink
failures — a subscriber bug must not kill a shared worker).
"""

from __future__ import annotations

from repro.core.errors import DeliveryError
from repro.service.delivery.base import DeliveryTask, invoke_sink
from repro.service.delivery.stats import DeliveryCounters, DeliveryStats

__all__ = ["InlineExecutor"]


class InlineExecutor:
    """Run every sink synchronously on the publishing thread."""

    name = "inline"

    def __init__(self, counters: DeliveryCounters | None = None) -> None:
        self._counters = counters if counters is not None else DeliveryCounters()
        self._closed = False

    def submit(self, task: DeliveryTask) -> None:
        if self._closed:
            raise DeliveryError("the inline delivery executor is closed")
        self._counters.accepted()
        ok = False
        try:
            invoke_sink(task.sink, task.notification)
            ok = True
        finally:
            # try/finally so even a BaseException-raising sink (e.g.
            # sys.exit) can never leak a pending count and hang drain();
            # inline semantics: the publisher sees the sink error.
            self._counters.executed(ok=ok)

    def drain(self) -> None:
        """Nothing is ever pending: submit already ran the sink."""

    def close(self, *, drain: bool = True) -> None:
        self._closed = True

    def stats(self) -> DeliveryStats:
        return self._counters.snapshot(mode=self.name, executors=(self.name,))
