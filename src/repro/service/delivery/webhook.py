"""Remote webhook delivery: per-endpoint lanes, retries, circuit breaker.

The first transport that leaves the process.  A subscription whose sink
is a :class:`WebhookSink` (just an endpoint URL — which is why it is the
one sink the durable store can persist and reconstruct on replay) can be
pinned to ``delivery="webhook"``; the executor then:

* serialises each notification to JSON and POSTs it to the endpoint
  through a pluggable ``transport`` (default: :mod:`urllib.request`);
* runs **one FIFO lane per endpoint** on its own worker thread, so a
  slow or dead endpoint delays only its own lane — never matching,
  never other endpoints;
* retries transient failures with **exponential backoff + seeded
  jitter** up to ``max_attempts`` (extra attempts counted in
  ``DeliveryStats.retried``);
* trips a **per-endpoint circuit breaker** after ``breaker_threshold``
  consecutive task failures: an *open* breaker fails tasks fast to the
  dead-letter queue until ``breaker_cooldown`` elapses, then lets one
  *half-open probe* through — success closes the circuit, failure
  re-opens it;
* parks exhausted or fast-failed tasks on a bounded **dead-letter
  queue** (``DeliveryStats.dead_lettered``; inspect via
  :meth:`WebhookDeliveryExecutor.dead_letters`).

Accounting: a webhook task settles as ``delivered`` or
``dead_lettered`` (or ``dropped`` by overflow / non-draining close) —
never ``failed`` — so the at-most-once conservation law
``dispatched == delivered + failed + dropped + dead_lettered + pending``
holds across mixed-executor services.

Determinism for tests: ``transport``, ``sleep``, ``clock`` and ``seed``
are all injectable through :class:`WebhookConfig`, which is what the
fault harness (:mod:`repro.testing.faults`) plugs into.
"""

from __future__ import annotations

import json
import random
import threading
import urllib.request
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.errors import DeliveryError, DeliveryOverflowError
from repro.service.delivery.base import DeliveryTask, validate_overflow_policy
from repro.service.delivery.stats import DeliveryCounters, DeliveryStats

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.service.notifications import Notification

__all__ = [
    "DeadLetter",
    "WebhookConfig",
    "WebhookDeliveryExecutor",
    "WebhookSink",
    "notification_payload",
]

#: ``transport(endpoint, payload, timeout)`` delivers one serialised
#: notification; any exception marks the attempt failed.
WebhookTransport = Callable[[str, bytes, float], None]


def notification_payload(notification: "Notification") -> bytes:
    """Serialise one notification to its webhook JSON body."""
    event = notification.event
    return json.dumps(
        {
            "profile_id": notification.profile_id,
            "subscriber": notification.subscriber,
            "broker_id": notification.broker_id,
            "delivered_at": notification.delivered_at,
            "event": {
                "values": dict(event.values),
                "timestamp": event.timestamp,
                "source": event.source,
            },
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")


def _urllib_transport(endpoint: str, payload: bytes, timeout: float) -> None:
    request = urllib.request.Request(
        endpoint,
        data=payload,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    # urlopen raises HTTPError on >= 400 and URLError on transport
    # failure; both are ordinary attempt failures to the retry loop.
    with urllib.request.urlopen(request, timeout=timeout):
        pass


@dataclass(frozen=True)
class WebhookSink:
    """A durable sink: POST notifications to ``endpoint``.

    Callable like any sink (a synchronous POST through the default
    transport), so it also works on the inline/threadpool executors —
    but only ``delivery="webhook"`` adds the retry budget, circuit
    breaker and dead-letter queue.
    """

    endpoint: str
    timeout: float = 5.0

    def __call__(self, notification: "Notification") -> None:
        _urllib_transport(self.endpoint, notification_payload(notification), self.timeout)


@dataclass(frozen=True)
class WebhookConfig:
    """Tuning and injection points of the webhook executor."""

    #: Per-attempt transport timeout (seconds).
    timeout: float = 5.0
    #: Attempt budget per task (1 = never retry).
    max_attempts: int = 3
    #: First retry delay; doubles per attempt (exponential backoff).
    backoff_base: float = 0.05
    #: Backoff ceiling (seconds).
    backoff_max: float = 2.0
    #: Multiplicative jitter: each delay is scaled by ``1 + U(0, jitter)``.
    jitter: float = 0.1
    #: Consecutive task failures that open an endpoint's breaker.
    breaker_threshold: int = 5
    #: Seconds an open breaker fails fast before the half-open probe.
    breaker_cooldown: float = 1.0
    #: Dead letters retained per executor (older ones are evicted).
    dlq_capacity: int = 256
    #: Seed of the jitter RNG (deterministic backoff schedules in tests).
    seed: int = 0
    #: Injected transport; ``None`` uses :mod:`urllib.request` POST.
    transport: WebhookTransport | None = None
    #: Injected backoff sleep; ``None`` uses :func:`time.sleep` (inject
    #: a recorder in tests to assert schedules without waiting them out).
    sleep: Callable[[float], None] | None = None
    #: Injected monotonic clock for breaker cooldowns.
    clock: Callable[[], float] | None = None


@dataclass(frozen=True)
class DeadLetter:
    """One task that settled on the dead-letter queue."""

    subscription_id: str
    endpoint: str
    notification: "Notification"
    #: ``"retries-exhausted"`` or ``"circuit-open"``.
    reason: str
    #: Transport attempts actually made (0 when failed fast).
    attempts: int


class _CircuitBreaker:
    """Per-endpoint breaker: closed → open → half-open probe → closed.

    Counts *task* failures (a task's whole retry budget, not individual
    attempts).  Not thread-safe on its own — each breaker is touched
    only by its endpoint's single worker thread.
    """

    __slots__ = (
        "_clock", "_cooldown", "_failures", "_opened_at", "_probing", "_threshold", "state",
    )

    def __init__(self, *, threshold: int, cooldown: float, clock: Callable[[], float]) -> None:
        self._threshold = threshold
        self._cooldown = cooldown
        self._clock = clock
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.state = "closed"

    def allow(self) -> str:
        """Return ``"ok"``, ``"probe"`` (half-open) or ``"open"``."""
        if self.state == "closed":
            return "ok"
        if self._clock() - self._opened_at < self._cooldown:
            return "open"
        self.state = "half-open"
        self._probing = True
        return "probe"

    def on_success(self) -> None:
        self._failures = 0
        self._probing = False
        self.state = "closed"

    def on_failure(self) -> None:
        if self._probing:  # failed probe: restart the cooldown
            self._probing = False
            self._opened_at = self._clock()
            self.state = "open"
            return
        self._failures += 1
        if self._failures >= self._threshold:
            self._opened_at = self._clock()
            self.state = "open"


class _EndpointLane:
    """One endpoint's FIFO queue, worker thread and breaker."""

    __slots__ = ("breaker", "condition", "queue", "worker")

    def __init__(self, breaker: _CircuitBreaker) -> None:
        self.condition = threading.Condition()
        self.queue: deque[DeliveryTask] = deque()
        self.breaker = breaker
        self.worker: threading.Thread | None = None


class WebhookDeliveryExecutor:
    """Deliver notifications to HTTP endpoints, one FIFO lane each."""

    name = "webhook"

    def __init__(
        self,
        *,
        config: WebhookConfig | None = None,
        queue_capacity: int = 1024,
        overflow: str = "block",
        counters: DeliveryCounters | None = None,
    ) -> None:
        if queue_capacity < 1:
            raise DeliveryError("queue_capacity must be at least 1")
        config = config if config is not None else WebhookConfig()
        if config.max_attempts < 1:
            raise DeliveryError("max_attempts must be at least 1")
        if config.breaker_threshold < 1:
            raise DeliveryError("breaker_threshold must be at least 1")
        self._config = config
        self._overflow = validate_overflow_policy(overflow)
        self._capacity = queue_capacity
        self._counters = counters if counters is not None else DeliveryCounters()
        self._transport = config.transport if config.transport is not None else _urllib_transport
        self._sleep = config.sleep if config.sleep is not None else _default_sleep
        self._clock = config.clock if config.clock is not None else _default_clock
        self._rng = random.Random(config.seed)
        self._rng_lock = threading.Lock()
        self._lanes: dict[str, _EndpointLane] = {}
        self._lanes_lock = threading.Lock()
        self._dead: deque[DeadLetter] = deque(maxlen=config.dlq_capacity)
        self._closed = False

    # -- publisher side ---------------------------------------------------------
    def _lane_for(self, endpoint: str) -> _EndpointLane:
        with self._lanes_lock:
            lane = self._lanes.get(endpoint)
            if lane is None:
                lane = _EndpointLane(
                    _CircuitBreaker(
                        threshold=self._config.breaker_threshold,
                        cooldown=self._config.breaker_cooldown,
                        clock=self._clock,
                    )
                )
                lane.worker = threading.Thread(
                    target=self._work,
                    args=(endpoint, lane),
                    name=f"repro-webhook-{len(self._lanes)}",
                    daemon=True,
                )
                self._lanes[endpoint] = lane
                lane.worker.start()
            return lane

    def submit(self, task: DeliveryTask) -> None:
        sink = task.sink
        if not isinstance(sink, WebhookSink):
            raise DeliveryError(
                "the webhook executor delivers WebhookSink subscriptions only; "
                f"got {type(sink).__name__} for subscription "
                f"{task.subscription_id!r}"
            )
        lane = self._lane_for(sink.endpoint)
        with lane.condition:
            if self._closed:
                raise DeliveryError("the webhook delivery executor is closed")
            while len(lane.queue) >= self._capacity:
                if self._overflow == "drop_oldest":
                    lane.queue.popleft()
                    self._counters.discarded()
                elif self._overflow == "raise":
                    raise DeliveryOverflowError(
                        f"webhook lane full ({self._capacity} tasks) for "
                        f"endpoint {sink.endpoint!r}"
                    )
                else:  # block: wait for the endpoint worker to free a slot
                    lane.condition.wait()
                    if self._closed:
                        raise DeliveryError(
                            "the webhook delivery executor closed while "
                            "waiting for queue space"
                        )
            lane.queue.append(task)
            self._counters.accepted()
            lane.condition.notify_all()

    # -- worker side ------------------------------------------------------------
    def _work(self, endpoint: str, lane: _EndpointLane) -> None:
        while True:
            with lane.condition:
                while not lane.queue and not self._closed:
                    lane.condition.wait()
                if not lane.queue:
                    return  # closed and fully drained
                task = lane.queue.popleft()
                lane.condition.notify_all()
            self._deliver(endpoint, lane, task)

    def _deliver(self, endpoint: str, lane: _EndpointLane, task: DeliveryTask) -> None:
        gate = lane.breaker.allow()
        if gate == "open":
            self._dead_letter(task, endpoint, "circuit-open", attempts=0)
            return
        # A half-open probe risks exactly one attempt: the endpoint has
        # to earn its retry budget back by surviving the probe.
        budget = 1 if gate == "probe" else self._config.max_attempts
        payload = notification_payload(task.notification)
        attempt = 0
        while True:
            attempt += 1
            try:
                self._transport(endpoint, payload, self._config.timeout)
            except Exception:
                if attempt >= budget:
                    lane.breaker.on_failure()
                    self._dead_letter(task, endpoint, "retries-exhausted", attempts=attempt)
                    return
                self._counters.retrying()
                self._sleep(self._backoff(attempt))
            else:
                lane.breaker.on_success()
                self._counters.executed(ok=True)
                return

    def _backoff(self, attempt: int) -> float:
        delay = min(
            self._config.backoff_max,
            self._config.backoff_base * (2 ** (attempt - 1)),
        )
        with self._rng_lock:
            scale = 1.0 + self._config.jitter * self._rng.random()
        return delay * scale

    def _dead_letter(
        self, task: DeliveryTask, endpoint: str, reason: str, *, attempts: int
    ) -> None:
        self._dead.append(
            DeadLetter(
                subscription_id=task.subscription_id,
                endpoint=endpoint,
                notification=task.notification,
                reason=reason,
                attempts=attempts,
            )
        )
        self._counters.dead_letter()

    # -- introspection ----------------------------------------------------------
    def dead_letters(self) -> tuple[DeadLetter, ...]:
        """Return the retained dead letters, oldest first."""
        with self._lanes_lock:
            return tuple(self._dead)

    def breaker_state(self, endpoint: str) -> str | None:
        """Return an endpoint breaker's state (``None``: never used)."""
        with self._lanes_lock:
            lane = self._lanes.get(endpoint)
        return lane.breaker.state if lane is not None else None

    # -- life-cycle -------------------------------------------------------------
    def drain(self) -> None:
        """Block until every accepted task settled."""
        self._counters.wait_idle()

    def close(self, *, drain: bool = True) -> None:
        """Stop the lanes; by default each worker finishes its queue."""
        with self._lanes_lock:
            lanes = list(self._lanes.values())
        for lane in lanes:
            with lane.condition:
                if not drain:
                    self._counters.discarded(len(lane.queue))
                    lane.queue.clear()
                self._closed = True
                lane.condition.notify_all()
        self._closed = True  # also when no lane was ever created
        for lane in lanes:
            if lane.worker is not None:
                lane.worker.join()

    def stats(self) -> DeliveryStats:
        return self._counters.snapshot(mode=self.name, executors=(self.name,))


def _default_sleep(delay: float) -> None:
    import time

    time.sleep(delay)


def _default_clock() -> float:
    import time

    return time.monotonic()
