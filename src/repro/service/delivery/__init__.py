"""``repro.service.delivery`` — pluggable notification-delivery executors.

The broker's matching path produces a
:class:`~repro.service.delivery.base.DeliveryPlan` per matched event and
hands it to the :class:`DeliveryDispatcher`, which routes every task to
one of three executors:

* :class:`~repro.service.delivery.inline.InlineExecutor` — run the sink
  synchronously on the publishing thread (the historical default; sink
  errors propagate to the publisher);
* :class:`~repro.service.delivery.threadpool.ThreadPoolDeliveryExecutor`
  — a bounded worker pool with per-subscription FIFO lanes and a
  backpressure queue;
* :class:`~repro.service.delivery.aio.AsyncioDeliveryExecutor` — async
  sinks ``await``-ed on an event loop owned by the service;
* :class:`~repro.service.delivery.webhook.WebhookDeliveryExecutor` —
  remote HTTP delivery of :class:`~repro.service.delivery.webhook.WebhookSink`
  subscriptions, with per-endpoint FIFO lanes, a retry budget
  (exponential backoff + jitter), a per-endpoint circuit breaker and a
  dead-letter queue.

The service default is selected per
:class:`~repro.api.FilterService` (``delivery="threadpool"``) and can be
pinned per subscription (``subscribe(..., delivery="asyncio")``); all
executors guarantee per-subscription FIFO ordering (strictly: per
(subscription, executor) — re-pinning a live subscription to a new
executor starts a fresh lane; drain first for a clean handover),
at-most-once dispatch, bounded queues with a ``block`` /
``drop_oldest`` / ``raise`` overflow policy, and a graceful draining
``close()``.  Matching results
are bit-identical whichever executor delivers — the executors consume
*already matched* plans and the matcher hot path never blocks inside a
sink.
"""

from __future__ import annotations

from repro.core.errors import DeliveryError
from repro.service.delivery.aio import AsyncioDeliveryExecutor
from repro.service.delivery.base import (
    DELIVERY_MODES,
    OVERFLOW_POLICIES,
    DeliveryExecutor,
    DeliveryPlan,
    DeliveryTask,
    validate_delivery_mode,
    validate_overflow_policy,
)
from repro.service.delivery.inline import InlineExecutor
from repro.service.delivery.stats import DeliveryCounters, DeliveryStats
from repro.service.delivery.threadpool import ThreadPoolDeliveryExecutor
from repro.service.delivery.webhook import (
    DeadLetter,
    WebhookConfig,
    WebhookDeliveryExecutor,
    WebhookSink,
)

__all__ = [
    "DELIVERY_MODES",
    "OVERFLOW_POLICIES",
    "AsyncioDeliveryExecutor",
    "DeadLetter",
    "DeliveryCounters",
    "DeliveryDispatcher",
    "DeliveryExecutor",
    "DeliveryPlan",
    "DeliveryStats",
    "DeliveryTask",
    "InlineExecutor",
    "ThreadPoolDeliveryExecutor",
    "WebhookConfig",
    "WebhookDeliveryExecutor",
    "WebhookSink",
    "validate_delivery_mode",
    "validate_overflow_policy",
]


class DeliveryDispatcher:
    """Route delivery plans to executors, lazily building each mode.

    One dispatcher per broker: it owns the service-default mode, builds
    each executor with its *own*
    :class:`~repro.service.delivery.stats.DeliveryCounters` (so an
    executor's ``stats()`` reports exactly its own work) and fans the
    tasks of a plan out by their pinned mode; :meth:`stats` aggregates
    the per-executor snapshots into one service-level view.
    """

    def __init__(
        self,
        *,
        delivery: str = "inline",
        max_workers: int | None = None,
        queue_capacity: int | None = None,
        overflow: str = "block",
        retry_attempts: int = 1,
        retry_backoff: float = 0.0,
        webhook: WebhookConfig | None = None,
    ) -> None:
        self._default_mode = validate_delivery_mode(delivery)
        self._overflow = validate_overflow_policy(overflow)
        if max_workers is not None and max_workers < 1:
            raise DeliveryError("max_workers must be at least 1")
        if queue_capacity is not None and queue_capacity < 1:
            raise DeliveryError("queue_capacity must be at least 1")
        if retry_attempts < 1:
            raise DeliveryError("retry_attempts must be at least 1")
        if retry_backoff < 0.0:
            raise DeliveryError("retry_backoff must not be negative")
        self._max_workers = max_workers if max_workers is not None else 4
        self._queue_capacity = queue_capacity if queue_capacity is not None else 1024
        self._retry_attempts = retry_attempts
        self._retry_backoff = retry_backoff
        self._webhook = webhook
        self._executors: dict[str, DeliveryExecutor] = {}
        self._closed = False

    # -- introspection ----------------------------------------------------------
    @property
    def default_mode(self) -> str:
        """Return the service-default delivery mode."""
        return self._default_mode

    @property
    def closed(self) -> bool:
        """Return ``True`` once :meth:`close` ran."""
        return self._closed

    def ensure_open(self) -> None:
        """Raise :class:`~repro.core.errors.DeliveryError` once closed."""
        if self._closed:
            raise DeliveryError(
                "the delivery subsystem is closed; create a new service to publish"
            )

    # -- executor roster --------------------------------------------------------
    def _build_executor(self, mode: str) -> DeliveryExecutor:
        if mode == "inline":
            return InlineExecutor()
        if mode == "threadpool":
            return ThreadPoolDeliveryExecutor(
                max_workers=self._max_workers,
                queue_capacity=self._queue_capacity,
                overflow=self._overflow,
                retry_attempts=self._retry_attempts,
                retry_backoff=self._retry_backoff,
            )
        if mode == "webhook":
            return WebhookDeliveryExecutor(
                config=self._webhook,
                queue_capacity=self._queue_capacity,
                overflow=self._overflow,
            )
        return AsyncioDeliveryExecutor(
            queue_capacity=self._queue_capacity,
            overflow=self._overflow,
            retry_attempts=self._retry_attempts,
            retry_backoff=self._retry_backoff,
        )

    def executor_for(self, mode: str | None) -> DeliveryExecutor:
        """Return (building on first use) the executor of ``mode``."""
        resolved = self._default_mode if mode is None else validate_delivery_mode(mode)
        executor = self._executors.get(resolved)
        if executor is None:
            self.ensure_open()
            executor = self._executors[resolved] = self._build_executor(resolved)
        return executor

    # -- dispatch ---------------------------------------------------------------
    def dispatch(self, plan: DeliveryPlan) -> None:
        """Submit every task of a plan to its (pinned or default) executor."""
        for task in plan.tasks:
            self.executor_for(task.delivery).submit(task)

    # -- life-cycle -------------------------------------------------------------
    def drain(self) -> None:
        """Block until no executor holds queued or in-flight deliveries."""
        for executor in self._executors.values():
            executor.drain()

    def close(self, *, drain: bool = True) -> None:
        """Close every executor (idempotent); drains by default."""
        if self._closed:
            return
        self._closed = True
        for executor in self._executors.values():
            executor.close(drain=drain)

    def stats(self) -> DeliveryStats:
        """Return one aggregated snapshot across every instantiated executor.

        Counts are summed; ``max_pending`` is the sum of the per-executor
        high-water marks (an upper bound of the true combined backlog
        peak, since the executors peak independently).
        """
        snapshots = [executor.stats() for executor in self._executors.values()]
        return DeliveryStats(
            mode=self._default_mode,
            dispatched=sum(s.dispatched for s in snapshots),
            delivered=sum(s.delivered for s in snapshots),
            failed=sum(s.failed for s in snapshots),
            dropped=sum(s.dropped for s in snapshots),
            pending=sum(s.pending for s in snapshots),
            max_pending=sum(s.max_pending for s in snapshots),
            retried=sum(s.retried for s in snapshots),
            dead_lettered=sum(s.dead_lettered for s in snapshots),
            executors=tuple(self._executors),
        )

    def dead_letters(self) -> tuple["DeadLetter", ...]:
        """Return the webhook executor's dead letters (empty if unused)."""
        executor = self._executors.get("webhook")
        if executor is None:
            return ()
        return executor.dead_letters()
