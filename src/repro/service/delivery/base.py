"""Delivery-subsystem value objects and the executor protocol.

The matching hot path produces a :class:`DeliveryPlan` — the pure *what*
of one event's fan-out (which sink receives which notification, in what
per-subscription order) — and hands it to a
:class:`~repro.service.delivery.DeliveryDispatcher`, which routes every
:class:`DeliveryTask` to a :class:`DeliveryExecutor` (the *how*: inline,
bounded thread pool, or asyncio event loop).  The split is the seam the
ROADMAP called out on ``FilterService.publish_batch``: matching never
waits on a sink, and a slow subscriber stalls at most its own delivery
lane.

Executor contract
-----------------

* **Per-subscription FIFO** — for one subscription id, sinks observe
  notifications in submission order, whatever the executor.
* **At-most-once settlement** — a submitted task settles exactly once:
  delivered, failed, dropped, or dead-lettered (counted in
  :class:`~repro.service.delivery.stats.DeliveryStats`), never
  duplicated.  Executors with a retry budget may *attempt* a sink more
  than once before settling; extra attempts are counted in ``retried``
  and the default budget (one attempt) preserves the historical
  never-retried semantics.
* **Bounded backpressure** — asynchronous executors bound each delivery
  lane at ``queue_capacity`` tasks and apply one of the
  :data:`OVERFLOW_POLICIES` when a lane is full: ``"block"`` (the
  publisher waits for space — backpressure), ``"drop_oldest"`` (the
  oldest queued task of that lane is discarded) or ``"raise"``
  (:class:`~repro.core.errors.DeliveryOverflowError`).
* **Graceful close** — ``close(drain=True)`` delivers everything queued
  before returning; ``drain()`` waits for in-flight work without
  closing.
"""

from __future__ import annotations

import asyncio
import inspect
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.errors import DeliveryError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.service.delivery.stats import DeliveryStats
    from repro.service.notifications import Notification, NotificationSink

__all__ = [
    "DELIVERY_MODES",
    "OVERFLOW_POLICIES",
    "DeliveryExecutor",
    "DeliveryPlan",
    "DeliveryTask",
    "invoke_sink",
    "validate_delivery_mode",
    "validate_overflow_policy",
]

#: Selectable delivery executors, in documentation order.  ``"inline"``
#: is the historical synchronous behaviour and the default.
DELIVERY_MODES = ("inline", "threadpool", "asyncio", "webhook")

#: Reactions of a full bounded delivery lane.
OVERFLOW_POLICIES = ("block", "drop_oldest", "raise")


def validate_delivery_mode(mode: str) -> str:
    """Return ``mode`` or raise the standard unknown-mode error."""
    if mode not in DELIVERY_MODES:
        raise DeliveryError(
            f"unknown delivery mode {mode!r}; available modes: "
            f"{', '.join(DELIVERY_MODES)}"
        )
    return mode


def validate_overflow_policy(policy: str) -> str:
    """Return ``policy`` or raise the standard unknown-policy error."""
    if policy not in OVERFLOW_POLICIES:
        raise DeliveryError(
            f"unknown overflow policy {policy!r}; available policies: "
            f"{', '.join(OVERFLOW_POLICIES)}"
        )
    return policy


@dataclass(frozen=True)
class DeliveryTask:
    """One sink invocation: deliver ``notification`` to ``sink``.

    ``delivery`` carries the subscription's pinned executor mode
    (``None``: the service default) so one dispatcher can fan a single
    event out across several executors.
    """

    subscription_id: str
    sink: "NotificationSink"
    notification: "Notification"
    delivery: str | None = None


@dataclass(frozen=True)
class DeliveryPlan:
    """The complete fan-out of one matched event, in delivery order.

    Built by the broker *after* matching and statistics recording;
    everything concurrency-sensitive starts downstream of this object, so
    matching results are bit-identical whatever executor consumes it.
    (The matched event itself lives on each task's notification.)
    """

    tasks: tuple[DeliveryTask, ...]

    def __len__(self) -> int:
        return len(self.tasks)


@runtime_checkable
class DeliveryExecutor(Protocol):
    """Protocol implemented by all delivery executors."""

    #: Executor mode name (one of :data:`DELIVERY_MODES`).
    name: str

    def submit(self, task: DeliveryTask) -> None:
        """Accept one task for delivery (raises once closed)."""
        ...

    def drain(self) -> None:
        """Block until every accepted task was executed or dropped."""
        ...

    def close(self, *, drain: bool = True) -> None:
        """Stop the executor; ``drain=False`` discards queued tasks."""
        ...

    def stats(self) -> "DeliveryStats":
        """Return a consistent snapshot of the delivery accounting."""
        ...


async def _drive(awaitable) -> None:
    await awaitable


#: One long-lived bridge loop per thread for async sinks on synchronous
#: executors (a fresh loop per notification would be hot-path overhead).
_BRIDGE = threading.local()


def _bridge_loop() -> asyncio.AbstractEventLoop:
    loop = getattr(_BRIDGE, "loop", None)
    if loop is None or loop.is_closed():
        loop = asyncio.new_event_loop()
        _BRIDGE.loop = loop
    return loop


def close_bridge_loop() -> None:
    """Close the calling thread's bridge loop, if one was ever created.

    Called by executor worker threads on exit so the loop's selector
    file descriptors do not outlive the thread.  Safe to call on threads
    that never bridged an async sink.
    """
    loop = getattr(_BRIDGE, "loop", None)
    if loop is not None and not loop.is_closed():
        loop.close()
    _BRIDGE.loop = None


def invoke_sink(sink: "NotificationSink", notification: "Notification") -> None:
    """Run one sink to completion, bridging async sinks from sync code.

    Plain callables are invoked directly.  A coroutine (or any awaitable)
    returned by an ``async def`` sink is driven on a long-lived
    per-thread bridge loop — correct from any executor, though the
    asyncio executor is the right home for async sinks (it awaits them
    on its own service-owned loop).  Raises
    :class:`~repro.core.errors.DeliveryError` when the calling thread
    already runs an event loop (driving a nested loop would deadlock):
    pin such subscriptions to ``delivery="asyncio"``.
    """
    result = sink(notification)
    if inspect.isawaitable(result):
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            _bridge_loop().run_until_complete(_drive(result))
        else:
            if inspect.iscoroutine(result):
                result.close()  # silence the never-awaited warning
            raise DeliveryError(
                "an async sink cannot be driven synchronously from inside a "
                "running event loop; pin the subscription to delivery='asyncio'"
            )
