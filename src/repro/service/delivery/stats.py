"""Thread-safe delivery accounting.

Executors mutate one :class:`DeliveryCounters` under its lock;
:meth:`DeliveryCounters.snapshot` freezes the numbers into the
:class:`DeliveryStats` value object that
:class:`repro.api.ServiceStats` exposes as its ``delivery`` field.

The counters obey one invariant the tests pin down (at-most-once
dispatch)::

    dispatched == delivered + failed + dropped + dead_lettered + pending

``retried`` counts *extra attempts*, not tasks — a task retried twice
and then delivered contributes 1 to ``delivered`` and 2 to ``retried``
— so it sits outside the conservation law.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["DeliveryCounters", "DeliveryStats"]


@dataclass(frozen=True)
class DeliveryStats:
    """One consistent snapshot of a service's notification delivery.

    All-zero (with ``mode="inline"`` and no instantiated executors) for a
    service that never delivered through a sink.
    """

    #: Default executor mode of the service (``"inline"`` historically).
    mode: str = "inline"
    #: Tasks accepted by an executor (excludes overflow-rejected ones).
    dispatched: int = 0
    #: Sinks that ran to completion.
    delivered: int = 0
    #: Sinks that raised; asynchronous executors swallow the error (a bad
    #: subscriber must not kill a worker), count it here and move on.
    failed: int = 0
    #: Tasks discarded by the ``drop_oldest`` overflow policy or by a
    #: non-draining ``close``.
    dropped: int = 0
    #: Tasks accepted but not yet executed (queued or in flight).
    pending: int = 0
    #: High-water mark of ``pending`` (backpressure visibility).
    max_pending: int = 0
    #: Extra sink attempts beyond each task's first (retry knobs); not
    #: part of the at-most-once conservation law.
    retried: int = 0
    #: Tasks parked on a dead-letter queue after exhausting their retry
    #: budget or hitting an open circuit breaker (webhook executor).
    dead_lettered: int = 0
    #: Executor modes actually instantiated, in first-use order.
    executors: tuple[str, ...] = ()


@dataclass
class DeliveryCounters:
    """Mutable, lock-guarded accumulator behind :class:`DeliveryStats`.

    The lock doubles as the condition executors notify whenever
    ``pending`` drops, which is what ``drain()`` waits on.
    """

    dispatched: int = 0
    delivered: int = 0
    failed: int = 0
    dropped: int = 0
    pending: int = 0
    max_pending: int = 0
    retried: int = 0
    dead_lettered: int = 0
    _condition: threading.Condition = field(
        default_factory=threading.Condition, repr=False
    )

    def accepted(self, count: int = 1) -> None:
        """Record tasks entering an executor's queue."""
        with self._condition:
            self.dispatched += count
            self.pending += count
            if self.pending > self.max_pending:
                self.max_pending = self.pending

    def executed(self, *, ok: bool) -> None:
        """Record one task leaving the queue through its sink."""
        with self._condition:
            if ok:
                self.delivered += 1
            else:
                self.failed += 1
            self.pending -= 1
            self._condition.notify_all()

    def retrying(self, count: int = 1) -> None:
        """Record extra attempts on a task that has not yet settled."""
        with self._condition:
            self.retried += count

    def dead_letter(self) -> None:
        """Record one task settling on the dead-letter queue."""
        with self._condition:
            self.dead_lettered += 1
            self.pending -= 1
            self._condition.notify_all()

    def discarded(self, count: int = 1) -> None:
        """Record queued tasks dropped before execution."""
        if count <= 0:
            return
        with self._condition:
            self.dropped += count
            self.pending -= count
            self._condition.notify_all()

    def wait_idle(self) -> None:
        """Block until no task is queued or in flight."""
        with self._condition:
            while self.pending > 0:
                self._condition.wait()

    def snapshot(self, *, mode: str, executors: tuple[str, ...] = ()) -> DeliveryStats:
        """Freeze the counters into a :class:`DeliveryStats`."""
        with self._condition:
            return DeliveryStats(
                mode=mode,
                dispatched=self.dispatched,
                delivered=self.delivered,
                failed=self.failed,
                dropped=self.dropped,
                pending=self.pending,
                max_pending=self.max_pending,
                retried=self.retried,
                dead_lettered=self.dead_lettered,
                executors=executors,
            )
