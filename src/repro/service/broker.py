"""A single event-notification broker.

The broker is the operational wrapper around the filter component: it
manages subscriptions, filters published events through the
:class:`~repro.service.adaptive.AdaptiveFilterEngine` (whose roster offers
the tree, index and auto engines), delivers notifications to subscriber
sinks, keeps the service-level statistics (operations per event / per
profile, the metrics of Fig. 5) and optionally applies publisher-side
quenching.

Subscription churn is incremental: subscribe/unsubscribe flow through the
engine's profile maintenance (postings deltas on the index family), so the
filter structures, the event history and the adaptation state all survive
churn; only the first subscription builds an engine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.core.errors import ServiceError
from repro.core.events import Event
from repro.core.profiles import Profile, ProfileSet
from repro.core.schema import Schema
from repro.matching.interfaces import MatchResult
from repro.matching.statistics import FilterStatistics
from repro.matching.tree.config import TreeConfiguration
from repro.service.adaptive import ENGINES, AdaptationPolicy, AdaptiveFilterEngine
from repro.service.notifications import Notification, NotificationLog, NotificationSink
from repro.service.quenching import Quencher
from repro.service.subscriptions import Subscription, SubscriptionRegistry

__all__ = ["Broker", "PublishOutcome"]


@dataclass(frozen=True)
class PublishOutcome:
    """Result of publishing one event to a broker."""

    event: Event
    quenched: bool
    match_result: MatchResult | None
    notifications: tuple[Notification, ...]

    @property
    def delivered(self) -> int:
        """Return the number of notifications delivered."""
        return len(self.notifications)


class Broker:
    """A content-based publish/subscribe broker."""

    def __init__(
        self,
        schema: Schema,
        *,
        broker_id: str = "broker-1",
        adaptive: bool = False,
        adaptation_policy: AdaptationPolicy | None = None,
        configuration: TreeConfiguration | None = None,
        enable_quenching: bool = False,
        engine: str | None = None,
    ) -> None:
        self.broker_id = broker_id
        if engine is not None:
            if engine not in ENGINES:
                raise ServiceError(f"unknown engine {engine!r}; expected one of {ENGINES}")
            if adaptation_policy is not None and adaptation_policy.engine != engine:
                raise ServiceError(
                    f"conflicting engine choice: engine={engine!r} but the adaptation "
                    f"policy selects {adaptation_policy.engine!r}; set one or the other"
                )
        self._engine_choice = engine
        self._schema = schema
        self._registry = SubscriptionRegistry(schema)
        self._profiles = ProfileSet(schema)
        self._adaptive = adaptive
        self._adaptation_policy = adaptation_policy
        self._configuration = configuration
        self._engine: AdaptiveFilterEngine | None = None
        self._statistics = FilterStatistics()
        self._log = NotificationLog()
        self._quencher: Quencher | None = Quencher(self._profiles) if enable_quenching else None
        self._quenched_events = 0
        self._clock = 0.0

    # -- engine management --------------------------------------------------------
    def _make_engine(self) -> None:
        policy = self._adaptation_policy or AdaptationPolicy()
        if self._engine_choice is not None and policy.engine != self._engine_choice:
            policy = replace(policy, engine=self._engine_choice)
        if not self._adaptive:
            # A non-adaptive broker still uses the adaptive engine object but
            # with an interval large enough that it never restructures; this
            # keeps a single code path for filtering and history keeping.
            policy = replace(policy, reoptimize_interval=2**31, warmup_events=2**31)
        self._engine = AdaptiveFilterEngine(
            self._profiles,
            policy=policy,
            initial_configuration=self._configuration,
        )

    def _attach_profile(self, profile: Profile) -> None:
        """Wire one new profile into the live filter component.

        Subscription churn is *incremental*: an existing engine absorbs
        the profile through the matcher's own maintenance (postings deltas
        for the index family), keeping its event history and adaptation
        state; the engine is only ever built from scratch for the first
        subscription.
        """
        if self._engine is None:
            self._profiles.add(profile)
            self._make_engine()
        else:
            # The engine's matcher shares self._profiles and registers the
            # profile there itself.
            self._engine.add_profile(profile)
        if self._quencher is not None:
            self._quencher.refresh()

    def _detach_profile(self, profile_id: str) -> None:
        """Remove one profile from the live filter component incrementally."""
        if self._engine is not None:
            self._engine.remove_profile(profile_id)
            if len(self._profiles) == 0:
                # Keep the historical contract: a broker without
                # subscriptions has no engine (publishing delivers nothing
                # and records no filter statistics).
                self._engine = None
        else:
            self._profiles.remove(profile_id)
        if self._quencher is not None:
            self._quencher.refresh()

    # -- subscription management -----------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def subscriptions(self) -> SubscriptionRegistry:
        return self._registry

    @property
    def profiles(self) -> ProfileSet:
        return self._profiles

    @property
    def statistics(self) -> FilterStatistics:
        return self._statistics

    @property
    def notification_log(self) -> NotificationLog:
        return self._log

    @property
    def engine(self) -> AdaptiveFilterEngine:
        """Return the filter engine (raises when no subscription exists)."""
        if self._engine is None:
            raise ServiceError("the broker has no subscriptions yet")
        return self._engine

    @property
    def quenched_events(self) -> int:
        """Return how many published events were quenched."""
        return self._quenched_events

    def subscribe(
        self,
        profile: Profile,
        subscriber: str,
        *,
        sink: NotificationSink | None = None,
    ) -> Subscription:
        """Register a subscription and update the filter incrementally."""
        subscription = self._registry.subscribe(profile, subscriber, sink=sink)
        self._attach_profile(profile)
        return subscription

    def subscribe_all(
        self, profiles: Iterable[Profile], subscriber: str = "anonymous"
    ) -> list[Subscription]:
        """Register many subscriptions at once (single engine build).

        Atomic with respect to registration: if any profile fails to
        register (validation, duplicate id — including duplicates within
        the batch), the already-registered prefix is rolled back before
        the error propagates, so the registry never desyncs from the
        filter engine.
        """
        subscriptions: list[Subscription] = []
        try:
            for profile in profiles:
                subscriptions.append(
                    self._registry.subscribe(profile, profile.subscriber or subscriber)
                )
        except Exception:
            for subscription in subscriptions:
                self._registry.unsubscribe(subscription.subscription_id)
            raise
        if self._engine is None:
            for subscription in subscriptions:
                self._profiles.add(subscription.profile)
            if len(self._profiles) > 0:
                self._make_engine()
        elif subscriptions:
            self._engine.add_profiles([s.profile for s in subscriptions])
        if self._quencher is not None:
            self._quencher.refresh()
        return subscriptions

    def unsubscribe(self, subscription_id: str) -> Subscription:
        """Remove a subscription and update the filter incrementally."""
        subscription = self._registry.unsubscribe(subscription_id)
        self._detach_profile(subscription.profile.profile_id)
        return subscription

    # -- publishing --------------------------------------------------------------------
    def publish(self, event: Event, *, timestamp: float | None = None) -> PublishOutcome:
        """Publish one event: quench, filter, and deliver notifications."""
        event.validate(self._schema, require_all=True)
        self._clock = timestamp if timestamp is not None else self._clock + 1.0

        if self._quencher is not None and self._quencher.quench(event):
            self._quenched_events += 1
            return PublishOutcome(event, True, None, tuple())

        if self._engine is None:
            return PublishOutcome(event, False, None, tuple())

        result = self._engine.match(event)
        return self._deliver(event, result, self._clock)

    def _deliver(self, event: Event, result: MatchResult, clock: float) -> PublishOutcome:
        """Record statistics and deliver the notifications of one result."""
        self._statistics.record(result)
        notifications = []
        for profile_id in result.matched_profile_ids:
            subscription = self._registry.by_profile_id(profile_id)
            notification = Notification(
                event=event,
                profile_id=profile_id,
                subscriber=subscription.subscriber,
                broker_id=self.broker_id,
                delivered_at=clock,
                filter_operations=result.operations,
            )
            self._log.deliver(notification)
            subscription.deliver(notification)
            notifications.append(notification)
        return PublishOutcome(event, False, result, tuple(notifications))

    def publish_batch(self, events: Iterable[Event]) -> list[PublishOutcome]:
        """Publish a sequence of events through the engine's batch API.

        The batch is atomic with respect to validation: every event is
        validated before any clock advance, quenching or delivery happens,
        so an invalid event rejects the whole batch without side effects
        (per-event :meth:`publish` remains available for pipelines that
        want to deliver the valid prefix).  The surviving events are then
        filtered in one
        :meth:`~repro.service.adaptive.AdaptiveFilterEngine.match_batch`
        call; on the index family large batches reach the columnar batch
        kernel (:mod:`repro.matching.index.kernel`) — cache-aware event
        scheduling, per-batch probe dedup, vectorized posting-slab
        counting — so this is the publishing entry point for
        heavy-traffic pipelines.
        """
        materialised = list(events)
        for event in materialised:
            event.validate(self._schema, require_all=True)
        outcomes: list[PublishOutcome | None] = [None] * len(materialised)
        clocks: list[float] = [0.0] * len(materialised)
        pending_indices: list[int] = []
        for index, event in enumerate(materialised):
            self._clock += 1.0
            clocks[index] = self._clock
            if self._quencher is not None and self._quencher.quench(event):
                self._quenched_events += 1
                outcomes[index] = PublishOutcome(event, True, None, tuple())
            elif self._engine is None:
                outcomes[index] = PublishOutcome(event, False, None, tuple())
            else:
                pending_indices.append(index)
        if pending_indices:
            results = self.engine.match_batch([materialised[i] for i in pending_indices])
            for index, result in zip(pending_indices, results):
                outcomes[index] = self._deliver(materialised[index], result, clocks[index])
        return [outcome for outcome in outcomes if outcome is not None]

    def publish_all(self, events: Iterable[Event]) -> list[PublishOutcome]:
        """Publish events one by one (streaming semantics).

        Consumes lazily and delivers each valid prefix event even when a
        later event fails validation, exactly as repeated :meth:`publish`
        calls would.  Use :meth:`publish_batch` for the atomic, batched
        filter path.
        """
        return [self.publish(event) for event in events]
