"""A single event-notification broker.

The broker is the operational wrapper around the filter component: it
manages subscriptions, filters published events through the
:class:`~repro.service.adaptive.AdaptiveFilterEngine` (whose roster offers
the tree, index and auto engines), delivers notifications to subscriber
sinks, keeps the service-level statistics (operations per event / per
profile, the metrics of Fig. 5) and optionally applies publisher-side
quenching.

Subscription churn is incremental: subscribe/unsubscribe flow through the
engine's profile maintenance (postings deltas on the index family; the
sharded family routes each delta to the one shard owning the profile), so
the filter structures, the event history and the adaptation state all
survive churn; only the first subscription builds an engine.  The same maintenance
path backs the pause/resume/modify life-cycle
(:meth:`Broker.pause_subscription` and friends) that
:class:`repro.api.SubscriptionHandle` rides on.

Engine selection goes through the engine registry
(:mod:`repro.matching.registry`) via the
:class:`~repro.service.adaptive.AdaptationPolicy`; the legacy
``Broker(engine="...")`` keyword keeps working behind a deprecation shim.

Notification delivery is decoupled from matching through
:mod:`repro.service.delivery`: matching produces a ``DeliveryPlan`` and
the broker's dispatcher routes each sink invocation to the ``inline``
(default), ``threadpool``, ``asyncio`` or ``webhook`` executor —
selected per broker (``Broker(delivery="threadpool")``) or pinned per
subscription — with per-subscription FIFO ordering, bounded
backpressure queues and a draining :meth:`Broker.close`.

Durability is opt-in through ``Broker(store=...)``: every subscription
life-cycle operation is applied to the live engine first and journaled
to the :class:`~repro.service.durability.SubscriptionStore` before the
call returns (apply-then-journal: an operation is durable exactly when
its call returns, at the store's sync policy).  A broker *booted* with a
non-empty store replays snapshot + journal tail through the same
incremental-maintenance path — one bulk engine build, ids preserved,
paused subscriptions re-paused — so the recovered broker filters
exactly like one that never restarted.  :class:`WebhookSink` endpoints
are journaled and reconstructed; in-process sinks are not durable and
must be re-attached after recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.core.deprecation import warn_once
from repro.core.errors import ServiceError, SubscriptionError
from repro.core.events import Event
from repro.core.profiles import Profile, ProfileSet
from repro.core.schema import Schema
from repro.matching.interfaces import MatchResult
from repro.matching.statistics import FilterStatistics
from repro.matching.tree.config import TreeConfiguration
from repro.service.adaptive import (
    AdaptationPolicy,
    AdaptiveFilterEngine,
    resolve_policy_engine,
)
from repro.service.delivery import (
    DeliveryDispatcher,
    DeliveryPlan,
    DeliveryStats,
    DeliveryTask,
    WebhookConfig,
    WebhookSink,
    validate_delivery_mode,
)
from repro.service.durability.store import (
    DurabilityStats,
    RecoveredState,
    SubscriptionStore,
)
from repro.service.notifications import Notification, NotificationLog, NotificationSink
from repro.service.quenching import Quencher
from repro.service.subscriptions import (
    KEEP_DELIVERY,
    Subscription,
    SubscriptionRegistry,
)

__all__ = ["Broker", "PublishOutcome"]


@dataclass(frozen=True)
class PublishOutcome:
    """Result of publishing one event to a broker."""

    event: Event
    quenched: bool
    match_result: MatchResult | None
    notifications: tuple[Notification, ...]

    @property
    def delivered(self) -> int:
        """Return the number of notifications delivered."""
        return len(self.notifications)


class Broker:
    """A content-based publish/subscribe broker."""

    def __init__(
        self,
        schema: Schema,
        *,
        broker_id: str = "broker-1",
        adaptive: bool = False,
        adaptation_policy: AdaptationPolicy | None = None,
        configuration: TreeConfiguration | None = None,
        enable_quenching: bool = False,
        engine: str | None = None,
        delivery: str = "inline",
        max_workers: int | None = None,
        queue_capacity: int | None = None,
        overflow: str = "block",
        retry_attempts: int = 1,
        retry_backoff: float = 0.0,
        webhook: WebhookConfig | None = None,
        store: SubscriptionStore | None = None,
    ) -> None:
        self.broker_id = broker_id
        if engine is not None:
            warn_once(
                "repro.service.broker.Broker.engine",
                "Broker(engine=...) is deprecated; pass "
                "adaptation_policy=AdaptationPolicy(engine=...) or use "
                "repro.api.FilterService(engine=...)",
            )
        # One registry lookup validates the engine choice (inside the
        # policy's __post_init__); the broker no longer double-checks a
        # hard-coded roster tuple.
        self._adaptation_policy = resolve_policy_engine(adaptation_policy, engine)
        self._schema = schema
        self._registry = SubscriptionRegistry(schema)
        self._profiles = ProfileSet(schema)
        self._adaptive = adaptive
        self._configuration = configuration
        self._engine: AdaptiveFilterEngine | None = None
        self._statistics = FilterStatistics()
        self._log = NotificationLog()
        self._quencher: Quencher | None = Quencher(self._profiles) if enable_quenching else None
        self._quenched_events = 0
        self._paused: set[str] = set()
        self._clock = 0.0
        self._delivery = DeliveryDispatcher(
            delivery=delivery,
            max_workers=max_workers,
            queue_capacity=queue_capacity,
            overflow=overflow,
            retry_attempts=retry_attempts,
            retry_backoff=retry_backoff,
            webhook=webhook,
        )
        self._store = store
        if store is not None:
            # The broker owns the store's life-cycle: pass it unopened;
            # open() repairs a torn journal tail and loads the state.
            self._replay(store.open())

    # -- engine management --------------------------------------------------------
    def _make_engine(self) -> None:
        policy = self._adaptation_policy
        if not self._adaptive:
            # A non-adaptive broker still uses the adaptive engine object but
            # with an interval large enough that it never restructures; this
            # keeps a single code path for filtering and history keeping.
            policy = replace(policy, reoptimize_interval=2**31, warmup_events=2**31)
        self._engine = AdaptiveFilterEngine(
            self._profiles,
            policy=policy,
            initial_configuration=self._configuration,
        )

    def _attach_profile(self, profile: Profile) -> None:
        """Wire one new profile into the live filter component.

        Subscription churn is *incremental*: an existing engine absorbs
        the profile through the matcher's own maintenance (postings deltas
        for the index family), keeping its event history and adaptation
        state; the engine is only ever built from scratch for the first
        subscription.
        """
        if self._engine is None:
            self._profiles.add(profile)
            self._make_engine()
        else:
            # The engine's matcher shares self._profiles and registers the
            # profile there itself.
            self._engine.add_profile(profile)
        if self._quencher is not None:
            self._quencher.refresh()

    def _detach_profile(self, profile_id: str, *, keep_engine: bool = False) -> None:
        """Remove one profile from the live filter component incrementally.

        ``keep_engine`` preserves the engine object even when the last
        live profile detaches — the pause/modify life-cycle relies on
        this so the event history, adaptation records and kernel stats
        survive; plain unsubscription keeps the historical contract that
        a broker without subscriptions has no engine (publishing delivers
        nothing and records no filter statistics).
        """
        if self._engine is not None:
            self._engine.remove_profile(profile_id)
            if len(self._profiles) == 0 and not keep_engine:
                self._engine = None
        else:
            self._profiles.remove(profile_id)
        if self._quencher is not None:
            self._quencher.refresh()

    # -- durability ---------------------------------------------------------------
    def _replay(self, recovered: RecoveredState) -> None:
        """Rebuild subscription state from a store's recovered entries.

        Mirrors :meth:`subscribe_all`: every entry registers under its
        original subscription id (webhook sinks reconstructed from their
        journaled endpoint), the live profiles attach in one bulk engine
        build, and paused entries are re-paused — all without journaling,
        since the store already holds exactly this state.
        """
        for entry in recovered.entries:
            sink = WebhookSink(entry.endpoint) if entry.endpoint is not None else None
            self._registry.subscribe(
                entry.profile,
                entry.subscriber,
                sink=sink,
                delivery=entry.delivery,
                subscription_id=entry.subscription_id,
            )
        live = [entry for entry in recovered.entries if not entry.paused]
        for entry in live:
            self._profiles.add(entry.profile)
        if len(self._profiles) > 0:
            self._make_engine()
        for entry in recovered.entries:
            if entry.paused:
                self._paused.add(entry.subscription_id)
        if self._quencher is not None:
            self._quencher.refresh()

    def _journal(self, op: str, subscription_id: str, **fields) -> None:
        """Journal one applied operation (no-op without a store)."""
        if self._store is not None:
            self._store.append(op, subscription_id, **fields)

    @staticmethod
    def _sink_endpoint(sink: NotificationSink | None) -> str | None:
        """Return the durable endpoint of a sink (webhook sinks only)."""
        return sink.endpoint if isinstance(sink, WebhookSink) else None

    @property
    def store(self) -> SubscriptionStore | None:
        """Return the durable subscription store, if one is attached."""
        return self._store

    def durability_stats(self) -> DurabilityStats | None:
        """Return the store's accounting (``None`` without a store)."""
        return self._store.stats() if self._store is not None else None

    def dead_letters(self):
        """Return the webhook executor's dead letters (empty if unused)."""
        return self._delivery.dead_letters()

    # -- subscription management -----------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def subscriptions(self) -> SubscriptionRegistry:
        return self._registry

    @property
    def profiles(self) -> ProfileSet:
        return self._profiles

    @property
    def statistics(self) -> FilterStatistics:
        return self._statistics

    @property
    def notification_log(self) -> NotificationLog:
        return self._log

    @property
    def engine(self) -> AdaptiveFilterEngine:
        """Return the filter engine (raises when no subscription exists)."""
        if self._engine is None:
            raise ServiceError("the broker has no subscriptions yet")
        return self._engine

    @property
    def quenched_events(self) -> int:
        """Return how many published events were quenched."""
        return self._quenched_events

    @property
    def adaptation_policy(self) -> AdaptationPolicy:
        """Return the resolved adaptation policy (engine choice included)."""
        return self._adaptation_policy

    @property
    def has_engine(self) -> bool:
        """Return ``True`` once a filter engine exists (any live profile)."""
        return self._engine is not None

    @property
    def paused_subscription_ids(self) -> frozenset[str]:
        """Return the ids of the currently paused subscriptions."""
        return frozenset(self._paused)

    def is_paused(self, subscription_id: str) -> bool:
        """Return ``True`` when the subscription is registered but paused."""
        return subscription_id in self._paused

    def subscribe(
        self,
        profile: Profile,
        subscriber: str,
        *,
        sink: NotificationSink | None = None,
        delivery: str | None = None,
    ) -> Subscription:
        """Register a subscription and update the filter incrementally.

        ``delivery`` pins this subscription's sink to one executor mode
        (``"inline"``, ``"threadpool"``, ``"asyncio"``, ``"webhook"``);
        ``None`` rides the broker's default executor.
        """
        if delivery is not None:
            validate_delivery_mode(delivery)
        subscription = self._registry.subscribe(
            profile, subscriber, sink=sink, delivery=delivery
        )
        self._attach_profile(profile)
        self._journal(
            "subscribe",
            subscription.subscription_id,
            profile=profile,
            subscriber=subscriber,
            delivery=delivery,
            endpoint=self._sink_endpoint(sink),
        )
        return subscription

    def set_subscription_sink(
        self,
        subscription_id: str,
        sink: NotificationSink | None,
        *,
        delivery: object = KEEP_DELIVERY,
    ) -> Subscription:
        """Re-pin a subscription's sink (and, optionally, delivery mode).

        ``delivery`` defaults to keeping the current executor pin; pass a
        mode name to re-pin or ``None`` to reset to the broker default.
        """
        if delivery is not KEEP_DELIVERY and delivery is not None:
            validate_delivery_mode(delivery)
        updated = self._registry.replace_sink(subscription_id, sink, delivery=delivery)
        self._journal(
            "retarget",
            subscription_id,
            delivery=updated.delivery,
            endpoint=self._sink_endpoint(updated.sink),
        )
        return updated

    def subscribe_all(
        self, profiles: Iterable[Profile], subscriber: str = "anonymous"
    ) -> list[Subscription]:
        """Register many subscriptions at once (single engine build).

        Atomic with respect to registration: if any profile fails to
        register (validation, duplicate id — including duplicates within
        the batch), the already-registered prefix is rolled back before
        the error propagates, so the registry never desyncs from the
        filter engine.
        """
        subscriptions: list[Subscription] = []
        try:
            for profile in profiles:
                subscriptions.append(
                    self._registry.subscribe(profile, profile.subscriber or subscriber)
                )
        except Exception:
            for subscription in subscriptions:
                self._registry.unsubscribe(subscription.subscription_id)
            raise
        if self._engine is None:
            for subscription in subscriptions:
                self._profiles.add(subscription.profile)
            if len(self._profiles) > 0:
                self._make_engine()
        elif subscriptions:
            self._engine.add_profiles([s.profile for s in subscriptions])
        if self._quencher is not None:
            self._quencher.refresh()
        for subscription in subscriptions:
            self._journal(
                "subscribe",
                subscription.subscription_id,
                profile=subscription.profile,
                subscriber=subscription.subscriber,
                delivery=subscription.delivery,
                endpoint=self._sink_endpoint(subscription.sink),
            )
        return subscriptions

    def unsubscribe(self, subscription_id: str) -> Subscription:
        """Remove a subscription and update the filter incrementally.

        The engine (with its history and adaptation state) survives as
        long as any subscription — live or paused — remains registered;
        removing the very last one tears it down (the historical
        no-subscription contract).
        """
        subscription = self._registry.unsubscribe(subscription_id)
        keep_engine = len(self._registry) > 0
        if subscription_id in self._paused:
            # A paused subscription's profile is already out of the filter.
            self._paused.discard(subscription_id)
            if not keep_engine and len(self._profiles) == 0:
                self._engine = None
        else:
            self._detach_profile(subscription.profile.profile_id, keep_engine=keep_engine)
        self._journal("cancel", subscription_id)
        return subscription

    # -- subscription life-cycle (pause / resume / modify) ---------------------------
    def pause_subscription(self, subscription_id: str) -> Subscription:
        """Stop delivering to a subscription without forgetting it.

        The profile leaves the filter through the engine's incremental
        maintenance (a postings delta on the index family — never a
        rebuild); the subscription record, its sink and its id survive, so
        :meth:`resume_subscription` restores delivery in place.
        """
        subscription = self._registry.get(subscription_id)
        if subscription_id in self._paused:
            raise SubscriptionError(f"subscription {subscription_id!r} is already paused")
        self._detach_profile(subscription.profile.profile_id, keep_engine=True)
        self._paused.add(subscription_id)
        self._journal("pause", subscription_id)
        return subscription

    def resume_subscription(self, subscription_id: str) -> Subscription:
        """Re-attach a paused subscription's profile incrementally."""
        subscription = self._registry.get(subscription_id)
        if subscription_id not in self._paused:
            raise SubscriptionError(f"subscription {subscription_id!r} is not paused")
        self._attach_profile(subscription.profile)
        self._paused.discard(subscription_id)
        self._journal("resume", subscription_id)
        return subscription

    def modify_subscription(self, subscription_id: str, profile: Profile) -> Subscription:
        """Swap a subscription's profile, keeping id, subscriber and sink.

        For a live subscription the old profile is detached and the new
        one attached through the engine's incremental maintenance (the
        engine object, its history and its adaptation state survive); a
        paused subscription just records the new profile and attaches it
        on resume.
        """
        old = self._registry.get(subscription_id)
        updated = self._registry.replace_profile(subscription_id, profile)
        if subscription_id in self._paused:
            self._journal("modify", subscription_id, profile=profile)
            return updated
        self._detach_profile(old.profile.profile_id, keep_engine=True)
        try:
            self._attach_profile(profile)
        except Exception:
            # Restore the old registration and filter state before
            # propagating, so registry and engine never desync.
            self._registry.replace_profile(subscription_id, old.profile)
            self._attach_profile(old.profile)
            raise
        self._journal("modify", subscription_id, profile=profile)
        return updated

    # -- publishing --------------------------------------------------------------------
    def publish(self, event: Event, *, timestamp: float | None = None) -> PublishOutcome:
        """Publish one event: quench, filter, and deliver notifications.

        Partial events (a subset of the schema's attributes) are
        accepted: validation checks the attributes the event *does*
        carry, and a profile constraining a missing attribute simply
        does not match.  The tree family predates partial events and
        raises :class:`~repro.core.errors.MatchingError` on them; every
        other family handles them natively.
        """
        self._delivery.ensure_open()
        event.validate(self._schema, require_all=False)
        self._clock = timestamp if timestamp is not None else self._clock + 1.0

        if self._quencher is not None and self._quencher.quench(event):
            self._quenched_events += 1
            return PublishOutcome(event, True, None, tuple())

        if self._engine is None:
            return PublishOutcome(event, False, None, tuple())

        result = self._engine.match(event)
        return self._deliver(event, result, self._clock)

    def _deliver(self, event: Event, result: MatchResult, clock: float) -> PublishOutcome:
        """Record statistics and dispatch the notifications of one result.

        Matching, statistics and the notification log are settled *here*,
        synchronously — they are bit-identical whatever executor runs the
        sinks.  Sink invocation is decoupled through a
        :class:`~repro.service.delivery.DeliveryPlan` handed to the
        delivery dispatcher: the default ``inline`` executor preserves
        the historical synchronous semantics, while ``threadpool`` /
        ``asyncio`` deliveries complete in the background (await them
        with :meth:`drain_deliveries` / :meth:`close`).
        """
        self._statistics.record(result)
        notifications = []
        tasks = []
        for profile_id in result.matched_profile_ids:
            subscription = self._registry.by_profile_id(profile_id)
            notification = Notification(
                event=event,
                profile_id=profile_id,
                subscriber=subscription.subscriber,
                broker_id=self.broker_id,
                delivered_at=clock,
                filter_operations=result.operations,
            )
            self._log.deliver(notification)
            notifications.append(notification)
            if subscription.sink is not None:
                tasks.append(
                    DeliveryTask(
                        subscription_id=subscription.subscription_id,
                        sink=subscription.sink,
                        notification=notification,
                        delivery=subscription.delivery,
                    )
                )
        if tasks:
            self._delivery.dispatch(DeliveryPlan(tuple(tasks)))
        return PublishOutcome(event, False, result, tuple(notifications))

    def publish_batch(
        self,
        events: Iterable[Event],
        *,
        timestamps: Sequence[float] | None = None,
    ) -> list[PublishOutcome]:
        """Publish a sequence of events through the engine's batch API.

        The batch is atomic with respect to validation: every event is
        validated before any clock advance, quenching or delivery happens,
        so an invalid event rejects the whole batch without side effects
        (per-event :meth:`publish` remains available for pipelines that
        want to deliver the valid prefix).  Partial events are accepted,
        exactly as in :meth:`publish`.  The surviving events are then
        filtered in one
        :meth:`~repro.service.adaptive.AdaptiveFilterEngine.match_batch`
        call; on the index family large batches reach the columnar batch
        kernel (:mod:`repro.matching.index.kernel`) — cache-aware event
        scheduling, per-batch probe dedup, vectorized posting-slab
        counting — so this is the publishing entry point for
        heavy-traffic pipelines.

        ``timestamps`` stamps each event's notifications with an
        externally supplied clock (one value per event) instead of the
        broker's internal tick — the broker-overlay substrate uses this
        to carry *simulated* delivery times across hops.
        """
        self._delivery.ensure_open()
        materialised = list(events)
        if timestamps is not None and len(timestamps) != len(materialised):
            raise ServiceError(
                f"timestamps length {len(timestamps)} does not match "
                f"batch length {len(materialised)}"
            )
        for event in materialised:
            event.validate(self._schema, require_all=False)
        outcomes: list[PublishOutcome | None] = [None] * len(materialised)
        clocks: list[float] = [0.0] * len(materialised)
        pending_indices: list[int] = []
        for index, event in enumerate(materialised):
            if timestamps is not None:
                self._clock = max(self._clock, timestamps[index])
                clocks[index] = timestamps[index]
            else:
                self._clock += 1.0
                clocks[index] = self._clock
            if self._quencher is not None and self._quencher.quench(event):
                self._quenched_events += 1
                outcomes[index] = PublishOutcome(event, True, None, tuple())
            elif self._engine is None:
                outcomes[index] = PublishOutcome(event, False, None, tuple())
            else:
                pending_indices.append(index)
        if pending_indices:
            results = self.engine.match_batch([materialised[i] for i in pending_indices])
            for index, result in zip(pending_indices, results):
                outcomes[index] = self._deliver(materialised[index], result, clocks[index])
        return [outcome for outcome in outcomes if outcome is not None]

    def publish_all(self, events: Iterable[Event]) -> list[PublishOutcome]:
        """Publish events one by one (streaming semantics).

        Consumes lazily and delivers each valid prefix event even when a
        later event fails validation, exactly as repeated :meth:`publish`
        calls would.  Use :meth:`publish_batch` for the atomic, batched
        filter path.
        """
        return [self.publish(event) for event in events]

    # -- delivery life-cycle -----------------------------------------------------------
    @property
    def delivery(self) -> DeliveryDispatcher:
        """Return the delivery dispatcher (executor roster + stats)."""
        return self._delivery

    def delivery_stats(self) -> DeliveryStats:
        """Return one snapshot of the notification-delivery accounting."""
        return self._delivery.stats()

    def drain_deliveries(self) -> None:
        """Block until every queued notification reached (or missed) its sink."""
        self._delivery.drain()

    def close(self, *, drain: bool = True) -> None:
        """Shut the delivery subsystem down (idempotent).

        ``drain=True`` (the default) delivers everything still queued on
        the asynchronous executors before returning; ``drain=False``
        discards queued deliveries (counted as ``dropped``).  A closed
        broker rejects further publishing with
        :class:`~repro.core.errors.DeliveryError`; subscriptions and
        statistics stay readable.  A matcher that owns execution
        resources (the sharded family's worker pool) is closed too, via
        its own ``close()``.  An attached subscription store is flushed
        (fsync) and closed last, so every journaled operation is durable
        when ``close`` returns.
        """
        self._delivery.close(drain=drain)
        if self._engine is not None:
            close_matcher = getattr(self._engine.matcher, "close", None)
            if close_matcher is not None:
                close_matcher()
        if self._store is not None and not self._store.closed:
            self._store.flush()
            self._store.close()
