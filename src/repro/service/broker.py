"""A single event-notification broker.

The broker is the operational wrapper around the filter component: it
manages subscriptions, filters published events with either a plain
:class:`~repro.matching.tree.matcher.TreeMatcher` or the
:class:`~repro.service.adaptive.AdaptiveFilterEngine`, delivers
notifications to subscriber sinks, keeps the service-level statistics
(operations per event / per profile, the metrics of Fig. 5) and optionally
applies publisher-side quenching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.errors import ServiceError
from repro.core.events import Event
from repro.core.profiles import Profile, ProfileSet
from repro.core.schema import Schema
from repro.matching.interfaces import MatchResult
from repro.matching.statistics import FilterStatistics
from repro.matching.tree.config import TreeConfiguration
from repro.service.adaptive import AdaptationPolicy, AdaptiveFilterEngine
from repro.service.notifications import Notification, NotificationLog, NotificationSink
from repro.service.quenching import Quencher
from repro.service.subscriptions import Subscription, SubscriptionRegistry

__all__ = ["Broker", "PublishOutcome"]


@dataclass(frozen=True)
class PublishOutcome:
    """Result of publishing one event to a broker."""

    event: Event
    quenched: bool
    match_result: MatchResult | None
    notifications: tuple[Notification, ...]

    @property
    def delivered(self) -> int:
        """Return the number of notifications delivered."""
        return len(self.notifications)


class Broker:
    """A content-based publish/subscribe broker."""

    def __init__(
        self,
        schema: Schema,
        *,
        broker_id: str = "broker-1",
        adaptive: bool = False,
        adaptation_policy: AdaptationPolicy | None = None,
        configuration: TreeConfiguration | None = None,
        enable_quenching: bool = False,
    ) -> None:
        self.broker_id = broker_id
        self._schema = schema
        self._registry = SubscriptionRegistry(schema)
        self._profiles = ProfileSet(schema)
        self._adaptive = adaptive
        self._adaptation_policy = adaptation_policy
        self._configuration = configuration
        self._engine: AdaptiveFilterEngine | None = None
        self._statistics = FilterStatistics()
        self._log = NotificationLog()
        self._quencher: Quencher | None = Quencher(self._profiles) if enable_quenching else None
        self._quenched_events = 0
        self._clock = 0.0
        self._rebuild_engine()

    # -- engine management --------------------------------------------------------
    def _rebuild_engine(self) -> None:
        if len(self._profiles) == 0:
            self._engine = None
            return
        policy = self._adaptation_policy or AdaptationPolicy()
        if not self._adaptive:
            # A non-adaptive broker still uses the adaptive engine object but
            # with an interval large enough that it never restructures; this
            # keeps a single code path for filtering and history keeping.
            policy = AdaptationPolicy(
                value_measure=policy.value_measure,
                attribute_measure=policy.attribute_measure,
                search=policy.search,
                reoptimize_interval=2**31,
                warmup_events=2**31,
                improvement_threshold=policy.improvement_threshold,
                history_length=policy.history_length,
            )
        self._engine = AdaptiveFilterEngine(
            self._profiles,
            policy=policy,
            initial_configuration=self._configuration,
        )
        if self._quencher is not None:
            self._quencher = Quencher(self._profiles)

    # -- subscription management -----------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def subscriptions(self) -> SubscriptionRegistry:
        return self._registry

    @property
    def profiles(self) -> ProfileSet:
        return self._profiles

    @property
    def statistics(self) -> FilterStatistics:
        return self._statistics

    @property
    def notification_log(self) -> NotificationLog:
        return self._log

    @property
    def engine(self) -> AdaptiveFilterEngine:
        """Return the filter engine (raises when no subscription exists)."""
        if self._engine is None:
            raise ServiceError("the broker has no subscriptions yet")
        return self._engine

    @property
    def quenched_events(self) -> int:
        """Return how many published events were quenched."""
        return self._quenched_events

    def subscribe(
        self,
        profile: Profile,
        subscriber: str,
        *,
        sink: NotificationSink | None = None,
    ) -> Subscription:
        """Register a subscription and rebuild the filter component."""
        subscription = self._registry.subscribe(profile, subscriber, sink=sink)
        self._profiles = self._registry.profile_set()
        self._rebuild_engine()
        return subscription

    def subscribe_all(
        self, profiles: Iterable[Profile], subscriber: str = "anonymous"
    ) -> list[Subscription]:
        """Register many subscriptions at once (single rebuild)."""
        subscriptions = [
            self._registry.subscribe(profile, profile.subscriber or subscriber)
            for profile in profiles
        ]
        self._profiles = self._registry.profile_set()
        self._rebuild_engine()
        return subscriptions

    def unsubscribe(self, subscription_id: str) -> Subscription:
        """Remove a subscription and rebuild the filter component."""
        subscription = self._registry.unsubscribe(subscription_id)
        self._profiles = self._registry.profile_set()
        self._rebuild_engine()
        return subscription

    # -- publishing --------------------------------------------------------------------
    def publish(self, event: Event, *, timestamp: float | None = None) -> PublishOutcome:
        """Publish one event: quench, filter, and deliver notifications."""
        event.validate(self._schema, require_all=True)
        self._clock = timestamp if timestamp is not None else self._clock + 1.0

        if self._quencher is not None and self._quencher.quench(event):
            self._quenched_events += 1
            return PublishOutcome(event, True, None, tuple())

        if self._engine is None:
            return PublishOutcome(event, False, None, tuple())

        result = self._engine.match(event)
        self._statistics.record(result)
        notifications = []
        for profile_id in result.matched_profile_ids:
            subscription = self._registry.by_profile_id(profile_id)
            notification = Notification(
                event=event,
                profile_id=profile_id,
                subscriber=subscription.subscriber,
                broker_id=self.broker_id,
                delivered_at=self._clock,
                filter_operations=result.operations,
            )
            self._log.deliver(notification)
            subscription.deliver(notification)
            notifications.append(notification)
        return PublishOutcome(event, False, result, tuple(notifications))

    def publish_all(self, events: Iterable[Event]) -> list[PublishOutcome]:
        """Publish a sequence of events."""
        return [self.publish(event) for event in events]
