"""Notifications delivered by the event notification service.

An ENS "informs its users about new events that occurred on providers'
sites" — a notification pairs one matched event with one profile (and hence
one subscriber).  The classes here are deliberately small value objects plus
an in-memory delivery log used by the examples, the tests and the service
statistics.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from typing import Awaitable, Callable, Iterator, Mapping

from repro.core.events import Event

__all__ = ["AsyncNotificationSink", "Notification", "NotificationLog", "NotificationSink"]

#: Callback type invoked for every delivered notification.  A sink may
#: also be an ``async def`` returning an awaitable
#: (:data:`AsyncNotificationSink`); the delivery executors of
#: :mod:`repro.service.delivery` drive either kind — async sinks are
#: awaited on the asyncio executor's own event loop and bridged through a
#: private loop elsewhere.
NotificationSink = Callable[["Notification"], None]

#: An ``async def`` notification sink (awaited by the delivery layer).
AsyncNotificationSink = Callable[["Notification"], Awaitable[None]]


@dataclass(frozen=True)
class Notification:
    """One delivered notification: ``event`` matched ``profile_id``."""

    event: Event
    profile_id: str
    subscriber: str | None = None
    broker_id: str | None = None
    delivered_at: float = 0.0
    #: Comparison operations the filter spent on the event that produced
    #: this notification (used for the per-profile statistics of Fig. 5(b)).
    filter_operations: int = 0


class NotificationLog:
    """In-memory sink collecting notifications for inspection.

    Thread-safe: a log may serve as the sink of subscriptions delivered
    through the threadpool or asyncio executors, whose sinks run off the
    publishing thread.
    """

    def __init__(self) -> None:
        self._notifications: list[Notification] = []
        self._per_profile: Counter = Counter()
        self._per_subscriber: Counter = Counter()
        self._lock = threading.Lock()

    def __call__(self, notification: Notification) -> None:
        self.deliver(notification)

    def deliver(self, notification: Notification) -> None:
        """Record one notification."""
        with self._lock:
            self._notifications.append(notification)
            self._per_profile[notification.profile_id] += 1
            if notification.subscriber is not None:
                self._per_subscriber[notification.subscriber] += 1

    # -- access ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._notifications)

    def __iter__(self) -> Iterator[Notification]:
        return iter(self.all())

    def all(self) -> list[Notification]:
        """Return every recorded notification in delivery order."""
        with self._lock:
            return list(self._notifications)

    def for_profile(self, profile_id: str) -> list[Notification]:
        """Return the notifications of one profile."""
        return [n for n in self.all() if n.profile_id == profile_id]

    def for_subscriber(self, subscriber: str) -> list[Notification]:
        """Return the notifications of one subscriber."""
        return [n for n in self.all() if n.subscriber == subscriber]

    def count_per_profile(self) -> Mapping[str, int]:
        """Return the notification counts keyed by profile id."""
        with self._lock:
            return dict(self._per_profile)

    def count_per_subscriber(self) -> Mapping[str, int]:
        """Return the notification counts keyed by subscriber."""
        with self._lock:
            return dict(self._per_subscriber)

    def clear(self) -> None:
        """Forget all recorded notifications."""
        with self._lock:
            self._notifications.clear()
            self._per_profile.clear()
            self._per_subscriber.clear()
