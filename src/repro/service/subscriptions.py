"""Subscription management.

A subscription binds a profile to a subscriber and a delivery callback.  The
registry keeps the authoritative :class:`~repro.core.profiles.ProfileSet`
the filter component is built from and supports the subscribe/unsubscribe
life-cycle of the service.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Iterator

from repro.core.errors import SubscriptionError
from repro.core.profiles import Profile, ProfileSet
from repro.core.schema import Schema
from repro.service.notifications import NotificationSink

__all__ = ["KEEP_DELIVERY", "Subscription", "SubscriptionRegistry"]

#: Sentinel for :meth:`SubscriptionRegistry.replace_sink`: keep the
#: subscription's current delivery pin (``None`` would *reset* it to the
#: service default, which is a distinct, deliberate action).
KEEP_DELIVERY = object()


@dataclass(frozen=True)
class Subscription:
    """One active subscription."""

    subscription_id: str
    profile: Profile
    subscriber: str
    sink: NotificationSink | None = None
    #: Pinned delivery mode for this subscription's sink (one of
    #: :data:`repro.service.delivery.DELIVERY_MODES`); ``None`` rides the
    #: service-default executor.
    delivery: str | None = None


class SubscriptionRegistry:
    """Registry of the subscriptions known to one broker."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._subscriptions: dict[str, Subscription] = {}
        self._by_profile_id: dict[str, str] = {}
        self._counter = 0

    # -- life-cycle -----------------------------------------------------------
    def subscribe(
        self,
        profile: Profile,
        subscriber: str,
        *,
        sink: NotificationSink | None = None,
        delivery: str | None = None,
        subscription_id: str | None = None,
    ) -> Subscription:
        """Register a subscription for ``profile`` on behalf of ``subscriber``."""
        profile.validate(self._schema)
        if profile.profile_id in self._by_profile_id:
            raise SubscriptionError(
                f"profile id {profile.profile_id!r} already has a subscription"
            )
        if subscription_id is None:
            # Skip taken ids: after a durable replay registers explicit
            # ids ("sub-7"), fresh auto-generated ids must not collide.
            self._counter += 1
            subscription_id = f"sub-{self._counter}"
            while subscription_id in self._subscriptions:
                self._counter += 1
                subscription_id = f"sub-{self._counter}"
        else:
            # An explicit "sub-N" (durable replay) advances the counter so
            # later auto ids never resurrect a replayed handle's id.
            match = re.fullmatch(r"sub-(\d+)", subscription_id)
            if match:
                self._counter = max(self._counter, int(match.group(1)))
        if subscription_id in self._subscriptions:
            raise SubscriptionError(f"duplicate subscription id {subscription_id!r}")
        subscription = Subscription(subscription_id, profile, subscriber, sink, delivery)
        self._subscriptions[subscription_id] = subscription
        self._by_profile_id[profile.profile_id] = subscription_id
        return subscription

    def replace_sink(
        self,
        subscription_id: str,
        sink: NotificationSink | None,
        *,
        delivery: object = KEEP_DELIVERY,
    ) -> Subscription:
        """Re-pin a subscription's sink and delivery mode in place.

        The subscription keeps its id, subscriber and profile; only the
        delivery target changes.  ``delivery`` defaults to the
        :data:`KEEP_DELIVERY` sentinel — swapping only the sink preserves
        an existing executor pin; pass ``None`` explicitly to reset the
        subscription to the service-default executor.  Notifications
        already queued with the old sink still reach it (at-most-once
        dispatch is per task).  Returns the updated subscription record.
        """
        subscription = self.get(subscription_id)
        if delivery is KEEP_DELIVERY:
            updated = replace(subscription, sink=sink)
        else:
            updated = replace(subscription, sink=sink, delivery=delivery)
        self._subscriptions[subscription_id] = updated
        return updated

    def replace_profile(self, subscription_id: str, profile: Profile) -> Subscription:
        """Swap the profile of an existing subscription (modify life-cycle).

        The subscription keeps its id, subscriber and sink; only the
        profile changes.  The new profile is validated against the schema
        and its id must not collide with another subscription's profile.
        Returns the updated subscription record.
        """
        subscription = self.get(subscription_id)
        profile.validate(self._schema)
        old_profile_id = subscription.profile.profile_id
        existing = self._by_profile_id.get(profile.profile_id)
        if existing is not None and existing != subscription_id:
            raise SubscriptionError(
                f"profile id {profile.profile_id!r} already has a subscription"
            )
        updated = replace(subscription, profile=profile)
        self._subscriptions[subscription_id] = updated
        del self._by_profile_id[old_profile_id]
        self._by_profile_id[profile.profile_id] = subscription_id
        return updated

    def unsubscribe(self, subscription_id: str) -> Subscription:
        """Remove a subscription and return it."""
        try:
            subscription = self._subscriptions.pop(subscription_id)
        except KeyError as exc:
            raise SubscriptionError(f"unknown subscription id {subscription_id!r}") from exc
        del self._by_profile_id[subscription.profile.profile_id]
        return subscription

    # -- access -------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._subscriptions)

    def __iter__(self) -> Iterator[Subscription]:
        return iter(self._subscriptions.values())

    def __contains__(self, subscription_id: object) -> bool:
        return subscription_id in self._subscriptions

    def get(self, subscription_id: str) -> Subscription:
        try:
            return self._subscriptions[subscription_id]
        except KeyError as exc:
            raise SubscriptionError(f"unknown subscription id {subscription_id!r}") from exc

    def has_profile_id(self, profile_id: str) -> bool:
        """Return ``True`` when some subscription registers ``profile_id``."""
        return profile_id in self._by_profile_id

    def by_profile_id(self, profile_id: str) -> Subscription:
        """Return the subscription registered for a profile id."""
        try:
            return self._subscriptions[self._by_profile_id[profile_id]]
        except KeyError as exc:
            raise SubscriptionError(f"no subscription for profile id {profile_id!r}") from exc

    def subscribers(self) -> list[str]:
        """Return the distinct subscriber names."""
        return sorted({s.subscriber for s in self._subscriptions.values()})

    def profile_set(self) -> ProfileSet:
        """Return a fresh profile set of all subscribed profiles."""
        return ProfileSet(self._schema, (s.profile for s in self._subscriptions.values()))

    @property
    def schema(self) -> Schema:
        return self._schema
