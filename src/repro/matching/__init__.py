"""Event-filtering algorithms.

Three matcher families, all implementing the same
:class:`~repro.matching.interfaces.Matcher` interface and the same
comparison-operation accounting:

* :class:`~repro.matching.naive.NaiveMatcher` — evaluate every profile
  (simple-algorithm baseline);
* :class:`~repro.matching.counting.CountingMatcher` — predicate counting
  with shared predicate evaluation (clustering-style baseline);
* :class:`~repro.matching.tree.TreeMatcher` — the profile-tree filter the
  paper improves with distribution-based reordering.
"""

from repro.matching.counting import CountingMatcher
from repro.matching.interfaces import Matcher, MatchResult, match_all
from repro.matching.naive import NaiveMatcher
from repro.matching.statistics import FilterStatistics, RunningMean
from repro.matching.tree import (
    ProfileTree,
    SearchStrategy,
    TreeConfiguration,
    TreeMatcher,
    ValueOrder,
    build_tree,
)

__all__ = [
    "CountingMatcher",
    "FilterStatistics",
    "MatchResult",
    "Matcher",
    "NaiveMatcher",
    "ProfileTree",
    "RunningMean",
    "SearchStrategy",
    "TreeConfiguration",
    "TreeMatcher",
    "ValueOrder",
    "build_tree",
    "match_all",
]
