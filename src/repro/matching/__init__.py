"""Event-filtering algorithms.

Five matcher families, all implementing the same
:class:`~repro.matching.interfaces.Matcher` interface (including the batch
API ``match_batch``) and the same comparison-operation accounting:

* :class:`~repro.matching.naive.NaiveMatcher` — evaluate every profile
  (simple-algorithm baseline);
* :class:`~repro.matching.counting.CountingMatcher` — predicate counting
  with shared predicate evaluation (clustering-style baseline);
* :class:`~repro.matching.tree.TreeMatcher` — the profile-tree filter the
  paper improves with distribution-based reordering;
* :class:`~repro.matching.index.PredicateIndexMatcher` — counting over
  per-(attribute, operator) index buckets, planned by the
  selectivity-aware :class:`~repro.matching.index.IndexPlanner`;
* :class:`~repro.matching.sharded.ShardedMatcher` — the index matcher
  partitioned over N shards, batches fanned out across a worker pool and
  merged bit-identically to the unsharded engine.

The families the adaptive service can drive are declared in the
**engine registry** (:mod:`repro.matching.registry`): each registers a
factory, a cost estimator for the ``auto`` arbitration and capability
flags, and third-party families become selectable by registering an
:class:`~repro.matching.registry.EngineSpec` of their own.
"""

from repro.matching.counting import CountingMatcher
from repro.matching.index import (
    AttributePlan,
    IndexPlan,
    IndexPlanner,
    PredicateIndexMatcher,
)
from repro.matching.interfaces import Matcher, MatchResult, match_all, match_batch
from repro.matching.naive import NaiveMatcher
from repro.matching.registry import (
    EngineCandidate,
    EngineCapabilities,
    EngineContext,
    EngineRegistry,
    EngineSpec,
    ReoptimisationProposal,
    default_registry,
)
from repro.matching.sharded import ShardStats, ShardedMatcher
from repro.matching.statistics import FilterStatistics, RunningMean
from repro.matching.tree import (
    ProfileTree,
    SearchStrategy,
    TreeConfiguration,
    TreeMatcher,
    ValueOrder,
    build_tree,
)

__all__ = [
    "AttributePlan",
    "CountingMatcher",
    "EngineCandidate",
    "EngineCapabilities",
    "EngineContext",
    "EngineRegistry",
    "EngineSpec",
    "FilterStatistics",
    "IndexPlan",
    "IndexPlanner",
    "MatchResult",
    "Matcher",
    "NaiveMatcher",
    "PredicateIndexMatcher",
    "ProfileTree",
    "ReoptimisationProposal",
    "RunningMean",
    "SearchStrategy",
    "ShardStats",
    "ShardedMatcher",
    "TreeConfiguration",
    "TreeMatcher",
    "ValueOrder",
    "build_tree",
    "default_registry",
    "match_all",
    "match_batch",
]
