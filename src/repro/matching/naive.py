"""Naive sequential matcher (baseline).

The simplest of the three algorithm families the paper distinguishes
("simple algorithms, clustering, and tree-based algorithms", Section 2):
evaluate every profile against the event, predicate by predicate, with no
shared index structure.  Its cost grows linearly with the number of profiles
and serves as the baseline the tree matcher is compared against in the
``baselines`` benchmark.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.events import Event
from repro.core.profiles import Profile, ProfileSet
from repro.matching.interfaces import MatchResult, remove_profile_strict

__all__ = ["NaiveMatcher"]


class NaiveMatcher:
    """Evaluate each profile independently against each event.

    One comparison operation is counted per predicate evaluation; evaluation
    of a profile stops at its first failing predicate (short-circuit), which
    is the standard optimisation even for the naive approach.
    """

    def __init__(self, profiles: ProfileSet) -> None:
        self.profiles = profiles

    def add_profile(self, profile: Profile) -> None:
        """Register an additional profile."""
        self.profiles.add(profile)

    def add_profiles(self, profiles: Iterable[Profile]) -> None:
        """Register a batch of profiles."""
        for profile in profiles:
            self.profiles.add(profile)

    def remove_profile(self, profile_id: str) -> None:
        """Unregister a profile.

        Raises :class:`~repro.core.errors.MatchingError` for an unknown
        profile id (the cross-matcher contract).
        """
        remove_profile_strict(self.profiles, profile_id)

    def match(self, event: Event) -> MatchResult:
        """Filter one event by scanning all profiles."""
        if len(self.profiles) == 0:
            return MatchResult(tuple(), 0, 0)
        operations = 0
        matched: list[str] = []
        for profile in self.profiles:
            satisfied = True
            for attribute, predicate in profile.predicates.items():
                if predicate.is_dont_care:
                    continue
                operations += 1
                if attribute not in event or not predicate.matches(event[attribute]):
                    satisfied = False
                    break
            if satisfied:
                matched.append(profile.profile_id)
        return MatchResult(tuple(matched), operations, visited_levels=len(self.profiles))

    def match_batch(self, events: Iterable[Event]) -> list[MatchResult]:
        """Filter a sequence of events (amortised dispatch)."""
        match = self.match
        return [match(event) for event in events]
