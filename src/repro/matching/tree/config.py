"""Profile-tree configuration: attribute order, value orders, search strategy.

The distribution-based algorithm of the paper reorders

* the **tree levels** (attribute order) according to an attribute-selectivity
  measure (A1-A3), and
* the **edges within each node** (value order) according to a
  value-selectivity measure (V1-V3), natural order, or leaves them to binary
  search.

A :class:`TreeConfiguration` captures one concrete choice of all three and is
all that is needed to (re)build a tree: the same profile set with two
different configurations yields the paper's "original" and "reordered" trees
(Fig. 1 vs Fig. 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.core.errors import TreeConstructionError
from repro.core.schema import Schema
from repro.core.subranges import AttributePartition

__all__ = ["SearchStrategy", "ValueOrder", "TreeConfiguration"]


class SearchStrategy(str, enum.Enum):
    """How the edges of a tree node are probed during matching."""

    #: Linear scan in the configured value order with early termination.
    LINEAR = "linear"
    #: Binary search over the natural (ascending) order of the node's edges.
    BINARY = "binary"


@dataclass(frozen=True)
class ValueOrder:
    """Probe order of the sub-ranges of one attribute.

    ``positions[i]`` is the 1-based probe position of the partition's
    sub-range with index ``i`` — this is exactly the lookup table of the
    paper's Example 5 ("the table contains a position for each element,
    where position relates to the reference of the value in the defined
    order").
    """

    attribute: str
    positions: tuple[int, ...]

    def __post_init__(self) -> None:
        if sorted(self.positions) != list(range(1, len(self.positions) + 1)):
            raise TreeConstructionError(
                f"value order for {self.attribute!r} must be a permutation of "
                f"1..{len(self.positions)}, got {self.positions}"
            )

    @classmethod
    def natural(cls, attribute: str, subrange_count: int) -> "ValueOrder":
        """Return the natural ascending order (identity permutation)."""
        return cls(attribute, tuple(range(1, subrange_count + 1)))

    @classmethod
    def from_ranking(cls, attribute: str, ranked_indices: Sequence[int]) -> "ValueOrder":
        """Build an order from sub-range indices listed best-first.

        ``ranked_indices[k]`` is the partition sub-range index probed at
        position ``k + 1``.
        """
        positions = [0] * len(ranked_indices)
        for probe_position, subrange_index in enumerate(ranked_indices, start=1):
            if not 0 <= subrange_index < len(ranked_indices):
                raise TreeConstructionError(
                    f"sub-range index {subrange_index} out of range for {attribute!r}"
                )
            if positions[subrange_index]:
                raise TreeConstructionError(
                    f"sub-range index {subrange_index} listed twice for {attribute!r}"
                )
            positions[subrange_index] = probe_position
        return cls(attribute, tuple(positions))

    def position_of(self, subrange_index: int) -> int:
        """Return the probe position (1-based) of one sub-range."""
        return self.positions[subrange_index]

    def ranked_indices(self) -> list[int]:
        """Return sub-range indices sorted by probe position (best first)."""
        return sorted(range(len(self.positions)), key=lambda i: self.positions[i])

    def __len__(self) -> int:
        return len(self.positions)


@dataclass(frozen=True)
class TreeConfiguration:
    """A complete configuration of the profile tree.

    Attributes
    ----------
    attribute_order:
        Attribute names from the root level downwards.
    value_orders:
        Per-attribute probe order of the partition sub-ranges; attributes
        without an entry use natural order.
    search:
        Probe strategy inside each node (linear with early termination, or
        binary search over the natural order).
    label:
        Free-form description used in reports (e.g. ``"V1 + A2"``).
    """

    attribute_order: tuple[str, ...]
    value_orders: Mapping[str, ValueOrder] = field(default_factory=dict)
    search: SearchStrategy = SearchStrategy.LINEAR
    label: str = "natural"

    def __post_init__(self) -> None:
        object.__setattr__(self, "attribute_order", tuple(self.attribute_order))
        object.__setattr__(self, "value_orders", dict(self.value_orders))
        for attribute, order in self.value_orders.items():
            if attribute not in self.attribute_order:
                raise TreeConstructionError(
                    f"value order given for attribute {attribute!r} which is not "
                    f"in the attribute order {self.attribute_order}"
                )
            if order.attribute != attribute:
                raise TreeConstructionError(
                    f"value order labelled {order.attribute!r} assigned to {attribute!r}"
                )

    @classmethod
    def natural_for_schema(
        cls, schema: Schema, *, search: SearchStrategy = SearchStrategy.LINEAR
    ) -> "TreeConfiguration":
        """Return the un-reordered configuration (schema order, natural values)."""
        return cls(tuple(schema.names), {}, search, label="natural")

    def value_order_for(
        self, attribute: str, partition: AttributePartition
    ) -> ValueOrder:
        """Return the value order of ``attribute`` (natural when unspecified)."""
        order = self.value_orders.get(attribute)
        if order is None:
            return ValueOrder.natural(attribute, len(partition.subranges))
        if len(order) != len(partition.subranges):
            raise TreeConstructionError(
                f"value order for {attribute!r} covers {len(order)} sub-ranges but the "
                f"partition has {len(partition.subranges)}"
            )
        return order

    def with_attribute_order(
        self, names: Sequence[str], *, label: str | None = None
    ) -> "TreeConfiguration":
        """Return a copy with a different attribute (level) order."""
        return replace(
            self,
            attribute_order=tuple(names),
            label=label if label is not None else self.label,
        )

    def with_value_order(self, order: ValueOrder) -> "TreeConfiguration":
        """Return a copy with the value order of one attribute replaced."""
        orders = dict(self.value_orders)
        orders[order.attribute] = order
        return replace(self, value_orders=orders)

    def with_search(self, search: SearchStrategy) -> "TreeConfiguration":
        """Return a copy using a different node search strategy."""
        return replace(self, search=search)

    def with_label(self, label: str) -> "TreeConfiguration":
        """Return a copy with a different report label."""
        return replace(self, label=label)
