"""Profile-tree construction.

From a profile set the builder derives, per attribute, the sub-range
partition (Section 3) and then recursively constructs the tree of height
``n``: level ``j`` branches on the attribute at position ``j`` of the
configured attribute order, profiles that do not constrain the attribute are
replicated under every edge (preserving the single-path property of the
DFSA), and an additional residual ``*``/``(*)`` edge collects events whose
value is outside all defined edges but that may still match don't-care
profiles.  Rebuilding with a different
:class:`~repro.matching.tree.config.TreeConfiguration` performs the
distribution-based restructuring of Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import TreeConstructionError
from repro.core.profiles import ProfileSet
from repro.core.schema import Schema
from repro.core.subranges import AttributePartition, build_partitions
from repro.matching.tree.config import TreeConfiguration
from repro.matching.tree.nodes import TreeEdge, TreeElement, TreeLeaf, TreeNode

__all__ = ["ProfileTree", "build_tree"]


@dataclass(frozen=True)
class ProfileTree:
    """An immutable, fully built profile tree plus its construction inputs."""

    schema: Schema
    configuration: TreeConfiguration
    partitions: Mapping[str, AttributePartition]
    root: TreeElement
    profile_count: int

    # -- structural statistics -------------------------------------------------
    def node_count(self) -> int:
        """Return the total number of nodes (internal and leaves)."""
        return self.root.node_count()

    def leaf_count(self) -> int:
        """Return the number of leaves."""
        return self.root.leaf_count()

    def height(self) -> int:
        """Return the height of the tree in edges (``n`` for a full tree)."""
        return self.root.max_depth()

    def partition_for(self, attribute: str) -> AttributePartition:
        """Return the sub-range partition of one attribute."""
        try:
            return self.partitions[attribute]
        except KeyError as exc:
            raise TreeConstructionError(f"no partition for attribute {attribute!r}") from exc

    def describe(self, *, max_edges: int = 12) -> str:
        """Return an indented textual rendering of the tree (Fig. 1 style)."""
        lines: list[str] = [
            f"profile tree [{self.configuration.label}] "
            f"(attributes: {', '.join(self.configuration.attribute_order)})"
        ]

        def render(element: TreeElement, indent: int, edge_label: str) -> None:
            prefix = "  " * indent
            if element.is_leaf:
                profiles = ", ".join(element.profile_ids) or "-"
                lines.append(f"{prefix}{edge_label} -> {{{profiles}}}")
                return
            lines.append(f"{prefix}{edge_label} [{element.attribute}]")
            shown = 0
            for edge in element.edges:
                if shown >= max_edges:
                    lines.append(f"{prefix}  ... ({element.edge_count - shown} more edges)")
                    break
                render(edge.child, indent + 1, edge.label())
                shown += 1
            if element.residual is not None:
                label = "*" if not element.edges else "(*)"
                render(element.residual, indent + 1, label)

        render(self.root, 0, "root")
        return "\n".join(lines)


def build_tree(
    profiles: ProfileSet,
    configuration: TreeConfiguration | None = None,
    *,
    partitions: Mapping[str, AttributePartition] | None = None,
) -> ProfileTree:
    """Build the profile tree for ``profiles`` under ``configuration``.

    ``partitions`` may be supplied to avoid recomputing the per-attribute
    sub-range decompositions when the same profile set is rebuilt under many
    configurations (as the reordering experiments do).
    """
    schema = profiles.schema
    if configuration is None:
        configuration = TreeConfiguration.natural_for_schema(schema)
    unknown = [a for a in configuration.attribute_order if a not in schema]
    if unknown:
        raise TreeConstructionError(f"configuration references unknown attributes {unknown}")
    if sorted(configuration.attribute_order) != sorted(schema.names):
        raise TreeConstructionError(
            "configuration attribute order must be a permutation of the schema "
            f"attributes {schema.names}, got {list(configuration.attribute_order)}"
        )
    if partitions is None:
        partitions = build_partitions(profiles)

    profile_by_id = {p.profile_id: p for p in profiles}
    all_ids = tuple(profile_by_id)
    if not all_ids:
        return ProfileTree(schema, configuration, dict(partitions), TreeLeaf(tuple()), 0)

    value_orders = {
        name: configuration.value_order_for(name, partitions[name])
        for name in configuration.attribute_order
    }

    def build_level(candidates: tuple[str, ...], level: int) -> TreeElement:
        if level == len(configuration.attribute_order):
            return TreeLeaf(candidates)
        attribute = configuration.attribute_order[level]
        partition = partitions[attribute]
        order = value_orders[attribute]

        constraining = [
            pid for pid in candidates if profile_by_id[pid].constrains(attribute)
        ]
        dont_care = tuple(
            pid for pid in candidates if not profile_by_id[pid].constrains(attribute)
        )
        # Defined edges: one per partition sub-range accepted by at least one
        # constraining candidate; don't-care candidates are replicated under
        # every edge so the single-path property holds.
        edge_specs: list[tuple[int, tuple[str, ...]]] = []
        for subrange in partition.subranges:
            owners = [pid for pid in constraining if pid in subrange.profile_ids]
            if not owners:
                continue
            child_candidates = tuple(owners) + dont_care
            edge_specs.append((subrange.index, child_candidates))

        # Natural positions follow the partition's natural sub-range order;
        # probe positions follow the configured value order.
        natural_rank = {
            subrange_index: rank + 1
            for rank, (subrange_index, _) in enumerate(edge_specs)
        }
        probe_rank_source = sorted(
            edge_specs, key=lambda spec: order.position_of(spec[0])
        )
        probe_rank = {
            subrange_index: rank + 1
            for rank, (subrange_index, _) in enumerate(probe_rank_source)
        }

        edges = []
        for subrange_index, child_candidates in probe_rank_source:
            subrange = partition.subranges[subrange_index]
            child = build_level(child_candidates, level + 1)
            edges.append(
                TreeEdge(
                    subrange=subrange,
                    child=child,
                    probe_position=probe_rank[subrange_index],
                    natural_position=natural_rank[subrange_index],
                )
            )
        natural_edges = tuple(sorted(edges, key=lambda e: e.natural_position))

        residual: TreeElement | None = None
        if dont_care:
            residual = build_level(dont_care, level + 1)

        if not edges and residual is None:
            # No candidate profile can match any event at this node; this can
            # only happen for an empty candidate set, which the recursion
            # never produces, but guard against it for robustness.
            return TreeLeaf(tuple())

        return TreeNode(
            attribute=attribute,
            edges=tuple(edges),
            natural_edges=natural_edges,
            residual=residual,
            candidate_profile_ids=candidates,
        )

    root = build_level(all_ids, 0)
    return ProfileTree(schema, configuration, dict(partitions), root, len(all_ids))
