"""The profile-tree matcher.

This is the runtime filter component of the paper: events are matched by
following a single root-to-leaf path through the profile tree, probing the
edges of every node with the configured search strategy and counting the
comparison operations.  The matcher can be *restructured* at any time by
supplying a new :class:`~repro.matching.tree.config.TreeConfiguration`
(value and/or attribute reordering) — this is the mechanism the adaptive
filter component of the service layer uses.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.errors import MatchingError
from repro.core.events import Event
from repro.core.profiles import Profile, ProfileSet
from repro.core.subranges import AttributePartition
from repro.matching.interfaces import MatchResult, remove_profile_strict
from repro.matching.tree.builder import ProfileTree, build_tree
from repro.matching.tree.config import TreeConfiguration
from repro.matching.tree.nodes import TreeLeaf, TreeNode
from repro.matching.tree.search import search_node

__all__ = ["TreeMatcher"]


class TreeMatcher:
    """Tree-based content filter with pluggable ordering configuration."""

    def __init__(
        self,
        profiles: ProfileSet,
        configuration: TreeConfiguration | None = None,
    ) -> None:
        self.profiles = profiles
        self._configuration = configuration or TreeConfiguration.natural_for_schema(
            profiles.schema
        )
        self._tree = build_tree(profiles, self._configuration)

    # -- structure access ---------------------------------------------------------
    @property
    def tree(self) -> ProfileTree:
        """Return the currently built profile tree."""
        return self._tree

    @property
    def configuration(self) -> TreeConfiguration:
        """Return the active tree configuration."""
        return self._configuration

    def partitions(self) -> Mapping[str, AttributePartition]:
        """Return the per-attribute sub-range partitions."""
        return self._tree.partitions

    # -- profile maintenance --------------------------------------------------------
    def add_profile(self, profile: Profile) -> None:
        """Register a profile and rebuild the tree.

        Sub-range boundaries may shift when new ranges arrive, so the
        partitions are recomputed from scratch; the configured value orders
        are dropped back to natural order if their length no longer matches
        (the adaptive component re-optimises afterwards).
        """
        self.profiles.add(profile)
        self._rebuild_after_profile_change()

    def add_profiles(self, profiles: Iterable[Profile]) -> None:
        """Register a batch of profiles with a single tree rebuild.

        Rebuilds even when a mid-batch add fails, so the tree always
        describes the profile set exactly.
        """
        try:
            for profile in profiles:
                self.profiles.add(profile)
        finally:
            self._rebuild_after_profile_change()

    def remove_profile(self, profile_id: str) -> None:
        """Unregister a profile and rebuild the tree.

        Raises :class:`~repro.core.errors.MatchingError` for an unknown
        profile id (the cross-matcher contract).
        """
        remove_profile_strict(self.profiles, profile_id)
        self._rebuild_after_profile_change()

    def _rebuild_after_profile_change(self) -> None:
        try:
            self._tree = build_tree(self.profiles, self._configuration)
        except Exception:
            # Value orders sized for the previous partitions can become
            # stale; fall back to natural orders but keep attribute order
            # and search strategy.
            fallback = TreeConfiguration(
                attribute_order=self._configuration.attribute_order,
                value_orders={},
                search=self._configuration.search,
                label=self._configuration.label,
            )
            self._configuration = fallback
            self._tree = build_tree(self.profiles, fallback)

    def reconfigure(self, configuration: TreeConfiguration) -> None:
        """Rebuild the tree under a new configuration (tree restructuring)."""
        self._tree = build_tree(
            self.profiles, configuration, partitions=dict(self._tree.partitions)
        )
        self._configuration = configuration

    def adopt(self, tree: ProfileTree, configuration: TreeConfiguration) -> None:
        """Install an externally built tree without rebuilding.

        The caller guarantees ``tree`` was built from this matcher's
        profile set under ``configuration`` — the adaptive engine uses
        this to reuse the candidate tree it already built for costing.
        """
        self._tree = tree
        self._configuration = configuration

    @classmethod
    def from_built(
        cls,
        profiles: ProfileSet,
        tree: ProfileTree,
        configuration: TreeConfiguration,
    ) -> "TreeMatcher":
        """Wrap an already-built tree (same contract as :meth:`adopt`)."""
        matcher = cls.__new__(cls)
        matcher.profiles = profiles
        matcher._configuration = configuration
        matcher._tree = tree
        return matcher

    # -- matching ----------------------------------------------------------------------
    def match(self, event: Event) -> MatchResult:
        """Filter one event along its single root-to-leaf path."""
        element = self._tree.root
        strategy = self._configuration.search
        operations = 0
        levels = 0
        while isinstance(element, TreeNode):
            attribute = element.attribute
            if attribute not in event:
                raise MatchingError(
                    f"event {event} does not carry attribute {attribute!r} required "
                    "by the profile tree"
                )
            value = event[attribute]
            partition = self._tree.partitions[attribute]
            located = partition.locate(value)
            if located is not None:
                target_index: int | None = located.index
                rank = located.index
            else:
                target_index = None
                rank = partition.natural_rank(value)
            outcome = search_node(element, target_index, rank, strategy)
            operations += outcome.operations
            levels += 1
            if outcome.edge is not None:
                element = outcome.edge.child
            elif outcome.took_residual:
                element = element.residual  # type: ignore[assignment]
            else:
                return MatchResult(tuple(), operations, levels)
        assert isinstance(element, TreeLeaf)
        return MatchResult(element.profile_ids, operations, levels)

    def match_all(self, events: Iterable[Event]) -> list[MatchResult]:
        """Filter a sequence of events (alias of :meth:`match_batch`)."""
        return self.match_batch(events)

    def match_batch(self, events: Iterable[Event]) -> list[MatchResult]:
        """Filter a sequence of events (amortised dispatch)."""
        match = self.match
        return [match(event) for event in events]
