"""Profile-tree node structures.

The profile tree has height ``n`` (one level per attribute).  Every internal
node carries

* **defined edges** — one per sub-range of the attribute that at least one
  candidate profile constrains (Fig. 1's labelled edges such as ``[30, 35)``),
  stored both in configured probe order and in natural ascending order, and
* an optional **residual edge** — the ``*`` / ``(*)`` edge of Fig. 1 taken by
  events whose value falls outside all defined edges, present whenever some
  candidate profile does not constrain the attribute.

Leaves carry the ids of the profiles matched by every event reaching them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.core.subranges import Subrange

__all__ = ["TreeLeaf", "TreeEdge", "TreeNode", "TreeElement"]


@dataclass(frozen=True)
class TreeLeaf:
    """A leaf: the profiles matched by events that reach it."""

    profile_ids: tuple[str, ...]

    @property
    def is_leaf(self) -> bool:
        return True

    def node_count(self) -> int:
        return 1

    def leaf_count(self) -> int:
        return 1

    def max_depth(self) -> int:
        return 0


@dataclass(frozen=True)
class TreeEdge:
    """A defined edge of an internal node.

    ``probe_position`` is the 1-based position of the edge in the node's
    configured probe order (the value-ordering lookup table restricted to
    this node); ``natural_position`` is its 1-based position in the natural
    ascending order of the node's edges, used by binary search and by the
    early-termination rejection rule.
    """

    subrange: Subrange
    child: "TreeElement"
    probe_position: int
    natural_position: int

    def label(self) -> str:
        return self.subrange.label()


@dataclass(frozen=True)
class TreeNode:
    """An internal node of the profile tree (one attribute level)."""

    attribute: str
    #: Defined edges sorted by probe position (the order the matcher scans).
    edges: tuple[TreeEdge, ...]
    #: The same edges sorted by natural ascending order of their sub-ranges.
    natural_edges: tuple[TreeEdge, ...]
    #: Child for events not covered by any defined edge (``*`` / ``(*)``),
    #: present when at least one candidate profile ignores the attribute.
    residual: "TreeElement | None"
    #: Candidate profiles at this node (kept for introspection/statistics).
    candidate_profile_ids: tuple[str, ...]

    @property
    def is_leaf(self) -> bool:
        return False

    @property
    def edge_count(self) -> int:
        """Return the number of defined edges."""
        return len(self.edges)

    @property
    def has_residual(self) -> bool:
        return self.residual is not None

    @property
    def is_star_only(self) -> bool:
        """Return ``True`` for a pure ``*`` node (no candidate constrains
        the attribute)."""
        return not self.edges and self.residual is not None

    def edge_for_subrange(self, subrange_index: int) -> TreeEdge | None:
        """Return the defined edge for a partition sub-range index, if any."""
        for edge in self.edges:
            if edge.subrange.index == subrange_index:
                return edge
        return None

    def children(self) -> Iterator["TreeElement"]:
        """Iterate over all children (defined edges first, then residual)."""
        for edge in self.edges:
            yield edge.child
        if self.residual is not None:
            yield self.residual

    # -- structural statistics -------------------------------------------------
    def node_count(self) -> int:
        """Return the number of nodes (internal + leaves) in this subtree."""
        return 1 + sum(child.node_count() for child in self.children())

    def leaf_count(self) -> int:
        """Return the number of leaves in this subtree."""
        return sum(child.leaf_count() for child in self.children())

    def max_depth(self) -> int:
        """Return the height of this subtree in edges."""
        depths = [child.max_depth() for child in self.children()]
        return 1 + (max(depths) if depths else 0)


#: A tree element is either an internal node or a leaf.
TreeElement = Union[TreeNode, TreeLeaf]
