"""Tree-based matching: the paper's core filtering algorithm.

The profile tree (after Gough & Smith and Aguilera et al.) has one level per
attribute; its edges are the sub-ranges the profiles define.  The
distribution-based improvement of the paper reorders both the edges within a
node (value selectivity, Measures V1-V3) and the levels of the tree
(attribute selectivity, Measures A1-A3); both reorderings are expressed as a
:class:`TreeConfiguration` and applied by rebuilding the tree.
"""

from repro.matching.tree.builder import ProfileTree, build_tree
from repro.matching.tree.config import SearchStrategy, TreeConfiguration, ValueOrder
from repro.matching.tree.matcher import TreeMatcher
from repro.matching.tree.nodes import TreeEdge, TreeElement, TreeLeaf, TreeNode
from repro.matching.tree.search import (
    NodeSearchOutcome,
    absence_cost_for_gap,
    absence_max_cost,
    binary_search_depth,
    binary_search_max_depth,
    find_cost,
    gap_index_for_rank,
    search_node,
)

__all__ = [
    "NodeSearchOutcome",
    "ProfileTree",
    "SearchStrategy",
    "TreeConfiguration",
    "TreeEdge",
    "TreeElement",
    "TreeLeaf",
    "TreeMatcher",
    "TreeNode",
    "ValueOrder",
    "absence_cost_for_gap",
    "absence_max_cost",
    "binary_search_depth",
    "binary_search_max_depth",
    "build_tree",
    "find_cost",
    "gap_index_for_rank",
    "search_node",
]
