"""Node search strategies and their operation-cost accounting.

The paper's prototype implements two search strategies inside a tree node
(Section 4.2): (1) following the edges in the defined (possibly
probability-based) order with early termination, and (2) binary search on
the natural order.  Performance is measured in *visited edges / comparison
steps*, so this module defines, for both strategies,

* the cost of locating a defined edge,
* the cost of concluding that the searched value is on no defined edge
  (after which the residual ``*``/``(*)`` edge — if present — is taken at
  the cost of one more visited edge), and
* the helpers shared by the runtime matcher and the analytical cost model.

Cost conventions (documented in DESIGN.md and validated against the paper's
Example 2):

* linear search: finding the edge at probe position ``k`` costs ``k``
  operations; concluding absence costs the early-termination position in the
  *natural ascending* order — one probe past the last edge that precedes the
  value, capped at the number of edges;
* binary search: finding the edge at natural position ``i`` of ``k`` costs
  the depth of ``i`` in the binary-search probe sequence; concluding absence
  costs the maximum depth ``floor(log2(k)) + 1``;
* taking the residual edge costs one additional operation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import MatchingError
from repro.matching.tree.config import SearchStrategy
from repro.matching.tree.nodes import TreeEdge, TreeNode

__all__ = [
    "binary_search_depth",
    "binary_search_max_depth",
    "NodeSearchOutcome",
    "search_node",
    "find_cost",
    "absence_cost_for_gap",
    "absence_max_cost",
    "gap_index_for_rank",
]


def binary_search_depth(position: int, count: int) -> int:
    """Return the number of probes binary search needs to find an element.

    ``position`` is the 0-based index of the element in the sorted order of
    ``count`` elements.  The classic midpoint-halving search is simulated so
    the cost profile matches the paper's Example 2 (for three elements the
    middle one costs 1, the outer ones cost 2).
    """
    if not 0 <= position < count:
        raise MatchingError(f"position {position} out of range for {count} elements")
    low, high = 0, count - 1
    probes = 0
    while low <= high:
        mid = (low + high) // 2
        probes += 1
        if mid == position:
            return probes
        if position < mid:
            high = mid - 1
        else:
            low = mid + 1
    raise MatchingError("binary search failed to terminate")  # pragma: no cover


def binary_search_max_depth(count: int) -> int:
    """Return the probes binary search needs to conclude a value is absent."""
    if count <= 0:
        return 0
    return int(math.floor(math.log2(count))) + 1


def find_cost(node: TreeNode, edge: TreeEdge, strategy: SearchStrategy) -> int:
    """Return the probes needed to locate ``edge`` at ``node``."""
    if strategy is SearchStrategy.BINARY:
        return binary_search_depth(edge.natural_position - 1, node.edge_count)
    return edge.probe_position


def gap_index_for_rank(node: TreeNode, natural_rank: int) -> int:
    """Return the node-level gap index of a value that is on no defined edge.

    ``natural_rank`` is the value's position in the *partition's* natural
    order: the index of the sub-range containing it, or — for values in the
    zero-subdomain — the number of partition sub-ranges lying entirely below
    it.  The gap index is the number of node edges preceding the value,
    which drives the early-termination rejection cost.
    """
    return sum(1 for edge in node.natural_edges if edge.subrange.index < natural_rank)


def absence_cost_for_gap(node: TreeNode, gap_index: int, strategy: SearchStrategy) -> int:
    """Return the probes needed to conclude a value is on no defined edge.

    ``gap_index`` identifies where the value falls relative to the node's
    edges in natural ascending order: ``0`` = before the first edge,
    ``i`` = between edge ``i`` and edge ``i + 1``, ``edge_count`` = after the
    last edge.  With linear search the scan stops at the first edge beyond
    the value (early termination); with binary search the cost is the
    worst-case probe depth regardless of the gap.
    """
    count = node.edge_count
    if count == 0:
        return 0
    if not 0 <= gap_index <= count:
        raise MatchingError(f"gap index {gap_index} out of range for {count} edges")
    if strategy is SearchStrategy.BINARY:
        return binary_search_max_depth(count)
    return min(gap_index + 1, count)


def absence_max_cost(node: TreeNode, strategy: SearchStrategy) -> int:
    """Return the worst-case absence cost at ``node``."""
    return absence_cost_for_gap(node, node.edge_count, strategy)


@dataclass(frozen=True)
class NodeSearchOutcome:
    """Result of probing one node for an event value."""

    #: The defined edge containing the value, or ``None``.
    edge: TreeEdge | None
    #: Whether the residual edge was taken instead of a defined edge.
    took_residual: bool
    #: Comparison operations spent at the node (including the residual probe).
    operations: int


def search_node(
    node: TreeNode,
    target_subrange_index: int | None,
    natural_rank: int,
    strategy: SearchStrategy,
) -> NodeSearchOutcome:
    """Probe ``node`` for an event value and account the operations.

    Parameters
    ----------
    target_subrange_index:
        Index of the partition sub-range containing the event value, or
        ``None`` when the value lies in the zero-subdomain ``D_0``.
    natural_rank:
        The value's natural-order rank within the partition (equal to
        ``target_subrange_index`` when that is not ``None``); used for the
        early-termination rejection cost.
    strategy:
        Linear (configured order) or binary (natural order) probing.
    """
    if target_subrange_index is not None:
        edge = node.edge_for_subrange(target_subrange_index)
        if edge is not None:
            return NodeSearchOutcome(edge, False, find_cost(node, edge, strategy))

    gap = gap_index_for_rank(node, natural_rank)
    operations = absence_cost_for_gap(node, gap, strategy)
    if node.has_residual:
        return NodeSearchOutcome(None, True, operations + 1)
    return NodeSearchOutcome(None, False, operations)
