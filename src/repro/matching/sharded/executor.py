"""Pluggable execution backends for the sharded matcher.

The :class:`~repro.matching.sharded.matcher.ShardedMatcher` fans one
batch of events out across its shards through a **shard executor** — a
tiny seam with exactly one job: run ``fn(shard)`` for every shard and
return the results in shard order.  Two backends ship today:

* :class:`SerialShardExecutor` runs the shards one after another on the
  calling thread.  This is the reference backend: zero threads, zero
  synchronisation, and — because every backend must return bit-identical
  results — the oracle the parallel backends are tested against.
* :class:`ThreadShardExecutor` runs the shards on a lazily created,
  **persistent** :class:`~concurrent.futures.ThreadPoolExecutor`.  Each
  shard owns its own scratch state, so shard-level parallelism needs no
  locking.  Under the default (GIL-enabled) CPython build the threads
  interleave rather than overlap, so wall-clock scaling needs a
  free-threaded build (3.13t+) or a future process backend; the seam is
  deliberately executor-shaped so a process pool can slot in without
  touching the matcher.

The pool is created on the first parallel fan-out, not at construction:
a sharded matcher used only for per-event :meth:`match` calls never
starts a thread.  :meth:`ThreadShardExecutor.close` shuts the pool down;
a closed executor degrades to serial execution instead of raising, so a
service that keeps reading statistics after ``close()`` stays usable.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Protocol, Sequence, TypeVar, runtime_checkable

from repro.core.errors import MatchingError

__all__ = [
    "SerialShardExecutor",
    "ShardExecutor",
    "ThreadShardExecutor",
    "default_shard_count",
    "resolve_shard_executor",
]

_S = TypeVar("_S")
_R = TypeVar("_R")

#: Shard counts beyond this stop paying for themselves on realistic
#: profile populations (merge overhead grows linearly with the count).
_MAX_DEFAULT_SHARDS = 8


def default_shard_count() -> int:
    """Return the cores-based default shard count (clamped to [1, 8])."""
    return max(1, min(os.cpu_count() or 1, _MAX_DEFAULT_SHARDS))


@runtime_checkable
class ShardExecutor(Protocol):
    """Strategy for running one callable across every shard."""

    #: Backend name surfaced in :class:`~repro.matching.sharded.ShardStats`.
    mode: str

    def map_shards(
        self, fn: Callable[[_S], _R], shards: Sequence[_S]
    ) -> list[_R]:
        """Run ``fn`` on every shard, returning results in shard order."""
        ...

    def close(self) -> None:
        """Release backend resources (idempotent)."""
        ...


class SerialShardExecutor:
    """Run the shards sequentially on the calling thread."""

    mode = "serial"

    def map_shards(
        self, fn: Callable[[_S], _R], shards: Sequence[_S]
    ) -> list[_R]:
        return [fn(shard) for shard in shards]

    def close(self) -> None:
        pass


class ThreadShardExecutor:
    """Run the shards on a persistent, lazily created thread pool."""

    mode = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise MatchingError("max_workers must be at least 1")
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    def map_shards(
        self, fn: Callable[[_S], _R], shards: Sequence[_S]
    ) -> list[_R]:
        if self._closed or len(shards) <= 1:
            return [fn(shard) for shard in shards]
        if self._pool is None:
            workers = self._max_workers or len(shards)
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            )
        # Executor.map preserves input order, so results stay shard-aligned.
        return list(self._pool.map(fn, shards))

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def resolve_shard_executor(
    executor: "str | ShardExecutor | None", shard_count: int
) -> ShardExecutor:
    """Resolve an executor choice to a backend instance.

    ``None`` picks threads for a genuinely sharded matcher and serial for
    a single shard (where fan-out has nothing to overlap); the strings
    ``"serial"`` / ``"threads"`` name the built-in backends; any object
    with the :class:`ShardExecutor` shape is used as given (the seam a
    future process backend plugs into).
    """
    if executor is None:
        return ThreadShardExecutor() if shard_count > 1 else SerialShardExecutor()
    if isinstance(executor, str):
        if executor == "serial":
            return SerialShardExecutor()
        if executor == "threads":
            return ThreadShardExecutor()
        raise MatchingError(
            f"unknown shard executor {executor!r}; expected 'serial' or 'threads'"
        )
    if isinstance(executor, ShardExecutor):
        return executor
    raise MatchingError(
        f"shard executor must be 'serial', 'threads' or a ShardExecutor, "
        f"got {type(executor).__name__}"
    )
