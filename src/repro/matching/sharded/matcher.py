"""The sharded parallel matcher (partitioned predicate indexes).

:class:`ShardedMatcher` partitions the profile population across N
independent :class:`~repro.matching.index.matcher.PredicateIndexMatcher`
shards and filters every event against all of them, merging the per-shard
results.  Profiles are routed by **dense id modulo shard count**: a global
allocator with a free list assigns each profile a dense integer id (ids
are recycled on churn, exactly like the index matcher's own allocator),
and ``dense % shard_count`` names the owning shard — so placement is
deterministic, balanced under churn, and independent of profile-id
strings.

Equivalence contract
--------------------
Matching is **bit-identical** to the single-shard index engine for every
shard count: each shard reports its matches in global profile-insertion
order (a shard's profile set receives its profiles in global insertion
order, and the index matcher reports in insertion order), and the merge
re-sorts the concatenation by a global monotone insertion stamp — the
same stamp discipline ``PredicateIndexMatcher._order_pos`` uses.  Match
sets and their order therefore equal the unsharded engine's exactly; the
hypothesis suite in ``tests/matching/test_sharded.py`` locks this.

**Operation accounting** is the sum over shards.  Every shard answers an
event with its own planner-chosen probe pipeline over its own (smaller)
buckets, so at ``shard_count=1`` the count equals the single-shard index
engine's exactly, while at higher counts it remains deterministic for a
given add/remove history (the benchmark baseline gates it) but differs
from the unsharded count — N probes instead of one buy the parallelism.

Parallelism
-----------
:meth:`match_batch` fans the *whole* batch to every shard through the
pluggable :mod:`~repro.matching.sharded.executor` seam (threads by
default; each shard owns its scratch state, so no locking is needed) and
merges the per-shard result lists event by event.  Per-event
:meth:`match` stays serial — fan-out overhead cannot amortise on one
event.  Churn (:meth:`add_profile` / :meth:`remove_profile`) routes
through the owning shard's incremental postings-delta path, so
subscription churn stays O(delta) and never touches the other shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.errors import MatchingError
from repro.core.events import Event
from repro.core.profiles import Profile, ProfileSet
from repro.distributions.base import Distribution
from repro.matching.index import kernel
from repro.matching.index.matcher import PredicateIndexMatcher
from repro.matching.index.planner import IndexPlanner
from repro.matching.interfaces import MatchResult
from repro.matching.sharded.executor import (
    ShardExecutor,
    default_shard_count,
    resolve_shard_executor,
)

__all__ = ["ShardStats", "ShardedMatcher"]


@dataclass(frozen=True)
class ShardStats:
    """Snapshot of a sharded matcher's partitioning (for observability)."""

    #: Number of index shards the profile population is partitioned over.
    shard_count: int
    #: Shard-executor backend name (``"serial"`` / ``"threads"`` / custom).
    executor: str
    #: Live profiles per shard, in shard order.
    profiles_per_shard: tuple[int, ...]

    @property
    def total_profiles(self) -> int:
        """Return the live profile count across all shards."""
        return sum(self.profiles_per_shard)

    @property
    def imbalance(self) -> float:
        """Return largest-shard / ideal-share load (1.0 = perfectly even)."""
        total = self.total_profiles
        if total == 0:
            return 1.0
        ideal = total / self.shard_count
        return max(self.profiles_per_shard) / ideal


class ShardedMatcher:
    """Partition-parallel counting matcher over N predicate-index shards."""

    def __init__(
        self,
        profiles: ProfileSet,
        *,
        shard_count: int | None = None,
        planner: IndexPlanner | None = None,
        min_columnar_batch: int | None = None,
        executor: "str | ShardExecutor | None" = None,
    ) -> None:
        if shard_count is None:
            shard_count = default_shard_count()
        if shard_count < 1:
            raise MatchingError("shard_count must be at least 1")
        self.profiles = profiles
        self.shard_count = shard_count
        self._executor = resolve_shard_executor(executor, shard_count)
        #: Dense-id allocator with a free list: ``dense % shard_count``
        #: names the owning shard, and recycled ids land on the shard the
        #: departed profile occupied (deterministic placement under churn).
        self._id_of: dict[str, int] = {}
        self._free_ids: list[int] = []
        self._next_dense = 0
        #: Global monotone insertion stamps — the merge key that keeps the
        #: merged match order identical to the unsharded engine's.
        self._order_of: dict[str, int] = {}
        self._order_counter = 0
        self._shard_of: dict[str, int] = {}

        schema = profiles.schema
        shard_sets = [ProfileSet(schema) for _ in range(shard_count)]
        for profile in profiles:
            shard_sets[self._register(profile.profile_id)].add(profile)
        planner = planner if planner is not None else IndexPlanner()
        self._shards: tuple[PredicateIndexMatcher, ...] = tuple(
            PredicateIndexMatcher(
                shard_set, planner=planner, min_columnar_batch=min_columnar_batch
            )
            for shard_set in shard_sets
        )

    # -- routing ------------------------------------------------------------------
    def _register(self, profile_id: str) -> int:
        """Allocate a dense id + insertion stamp; return the owning shard."""
        if self._free_ids:
            dense = self._free_ids.pop()
        else:
            dense = self._next_dense
            self._next_dense += 1
        self._id_of[profile_id] = dense
        self._order_of[profile_id] = self._order_counter
        self._order_counter += 1
        shard_index = dense % self.shard_count
        self._shard_of[profile_id] = shard_index
        return shard_index

    @property
    def shards(self) -> tuple[PredicateIndexMatcher, ...]:
        """Return the per-shard index matchers, in shard order."""
        return self._shards

    @property
    def executor(self) -> ShardExecutor:
        """Return the shard-execution backend."""
        return self._executor

    def shard_of(self, profile_id: str) -> int:
        """Return the shard index owning ``profile_id`` (raises if unknown)."""
        try:
            return self._shard_of[profile_id]
        except KeyError as exc:
            raise MatchingError(f"unknown profile id {profile_id!r}") from exc

    def shard_stats(self) -> ShardStats:
        """Return a partitioning snapshot (feeds ``ServiceStats.shards``)."""
        return ShardStats(
            shard_count=self.shard_count,
            executor=self._executor.mode,
            profiles_per_shard=tuple(len(shard.profiles) for shard in self._shards),
        )

    # -- maintenance --------------------------------------------------------------
    def add_profile(self, profile: Profile) -> None:
        """Register a profile through its owning shard's postings deltas."""
        self.profiles.add(profile)
        shard_index = self._register(profile.profile_id)
        self._shards[shard_index].add_profile(profile)

    def add_profiles(self, profiles: Iterable[Profile]) -> None:
        """Register a batch, grouped per shard for the shards' bulk path.

        Mirrors the index matcher's semantics on a mid-batch failure
        (e.g. a duplicate id): the successfully registered prefix stays
        live — the shards absorb it before the error propagates.
        """
        staged: list[tuple[Profile, int]] = []
        try:
            for profile in profiles:
                self.profiles.add(profile)
                staged.append((profile, self._register(profile.profile_id)))
        finally:
            groups: dict[int, list[Profile]] = {}
            for profile, shard_index in staged:
                groups.setdefault(shard_index, []).append(profile)
            for shard_index, group in groups.items():
                self._shards[shard_index].add_profiles(group)

    def remove_profile(self, profile_id: str) -> None:
        """Unregister a profile from its owning shard (O(delta) churn).

        Raises :class:`~repro.core.errors.MatchingError` for an unknown
        profile id (the cross-matcher contract); the freed dense id is
        recycled, so a later add reuses the departed profile's shard slot.
        """
        shard_index = self._shard_of.get(profile_id)
        if shard_index is None:
            raise MatchingError(f"unknown profile id {profile_id!r}")
        self._shards[shard_index].remove_profile(profile_id)
        self.profiles.remove(profile_id)
        self._free_ids.append(self._id_of.pop(profile_id))
        del self._order_of[profile_id]
        del self._shard_of[profile_id]

    # -- planning -----------------------------------------------------------------
    def replan(self, event_distributions: Mapping[str, Distribution]) -> None:
        """Replan every shard with distribution-aware planning."""
        for shard in self._shards:
            shard.replan(event_distributions)

    def estimated_cost(
        self, event_distributions: Mapping[str, Distribution] | None = None
    ) -> float:
        """Return the expected comparisons/event summed over the shards."""
        return sum(
            shard.estimated_cost(event_distributions) for shard in self._shards
        )

    @property
    def min_columnar_batch(self) -> int:
        """Return the shards' effective columnar-kernel cutover."""
        return self._shards[0].min_columnar_batch

    @property
    def kernel_stats(self) -> kernel.KernelStats:
        """Return the columnar-kernel accounting folded across the shards.

        Computed on read (the shards own the live counters), so the fold
        is exact at any point — including after churn and replans, whose
        per-shard stats survive inside each shard instance.
        """
        total = kernel.KernelStats()
        for shard in self._shards:
            total.merge(shard.kernel_stats)
        return total

    # -- matching -----------------------------------------------------------------
    def _merge_one(self, results: Iterable[MatchResult]) -> MatchResult:
        """Merge one event's per-shard results (order, ops, levels)."""
        matched: list[str] = []
        operations = 0
        visited = 0
        for result in results:
            matched.extend(result.matched_profile_ids)
            operations += result.operations
            if result.visited_levels > visited:
                visited = result.visited_levels
        if len(matched) > 1:
            # Each shard list is already in global insertion order, so the
            # sort only interleaves the per-shard subsequences.
            matched.sort(key=self._order_of.__getitem__)
        return MatchResult(tuple(matched), operations, visited_levels=visited)

    def match(self, event: Event) -> MatchResult:
        """Filter one event against every shard, serially.

        The per-event path never fans out: dispatch overhead cannot
        amortise on a single event, and keeping it serial preserves the
        non-reentrant shards' single-threaded assumption outside batches.
        """
        if self.shard_count == 1:
            return self._shards[0].match(event)
        return self._merge_one([shard.match(event) for shard in self._shards])

    def match_batch(self, events: Iterable[Event]) -> list[MatchResult]:
        """Filter a batch by fanning it across the shard executor.

        Every shard filters the *whole* batch (through its own columnar
        kernel when the batch clears the cutover); the per-shard result
        lists — one entry per input event, in input order — are merged
        event by event.  Results are bit-identical to running the shards
        serially, whatever backend executes them.
        """
        events = events if isinstance(events, list) else list(events)
        if not events:
            return []
        if self.shard_count == 1:
            return self._shards[0].match_batch(events)
        per_shard = self._executor.map_shards(
            lambda shard: shard.match_batch(events), self._shards
        )
        merge = self._merge_one
        return [merge(row) for row in zip(*per_shard)]

    def match_all(self, events: Iterable[Event]) -> list[MatchResult]:
        """Alias of :meth:`match_batch` (tree-matcher compatible)."""
        return self.match_batch(events)

    # -- life-cycle ---------------------------------------------------------------
    def close(self) -> None:
        """Shut the shard executor down (idempotent).

        Matching stays functional afterwards — the thread backend
        degrades to serial execution — so statistics and late reads keep
        working on a closed service.
        """
        self._executor.close()

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"ShardedMatcher(shards={self.shard_count}, "
            f"profiles={len(self.profiles)}, executor={self._executor.mode!r})"
        )
