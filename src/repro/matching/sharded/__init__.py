"""Sharded parallel matching (partitioned predicate indexes).

The subscription space is partitioned across N independent
:class:`~repro.matching.index.matcher.PredicateIndexMatcher` shards;
batches fan out across a pluggable executor seam and the per-shard
results merge back bit-identically to the unsharded index engine.  The
family registers as ``engine="sharded"`` in the engine registry, so the
service layer drives it with no special cases.  See
:mod:`repro.matching.sharded.matcher` for the equivalence contract and
:mod:`repro.matching.sharded.executor` for the backend seam.
"""

from repro.matching.sharded.executor import (
    SerialShardExecutor,
    ShardExecutor,
    ThreadShardExecutor,
    default_shard_count,
    resolve_shard_executor,
)
from repro.matching.sharded.matcher import ShardedMatcher, ShardStats

__all__ = [
    "SerialShardExecutor",
    "ShardExecutor",
    "ShardStats",
    "ShardedMatcher",
    "ThreadShardExecutor",
    "default_shard_count",
    "resolve_shard_executor",
]
