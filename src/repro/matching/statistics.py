"""Filtering statistics.

The paper's prototype keeps "statistic objects with counters for events,
attributes, operators, and values" (Section 4.2) and reports performance as

* average operations **per event** (Fig. 5(a)),
* average operations **per profile**, i.e. per delivered notification for a
  given profile (Fig. 5(b)), and
* average operations **per event and profile** (Fig. 5(c)).

:class:`FilterStatistics` accumulates these aggregates over a stream of
:class:`~repro.matching.interfaces.MatchResult` values and also implements
the 95 %-precision stopping rule used by the test scenarios TV1/TV2: the run
may stop once the half-width of the confidence interval of the mean
operation count drops below 5 % of the mean.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Mapping

from repro.core.errors import MatchingError
from repro.matching.interfaces import MatchResult

__all__ = ["FilterStatistics", "RunningMean"]


class RunningMean:
    """Numerically stable running mean/variance (Welford's algorithm)."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Add one observation."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Return the sample variance (0 for fewer than two observations)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def confidence_halfwidth(self, z: float = 1.96) -> float:
        """Return the half-width of the ``z``-sigma confidence interval."""
        if self._count < 2:
            return math.inf
        return z * self.stddev / math.sqrt(self._count)

    def relative_precision(self, z: float = 1.96) -> float:
        """Return the confidence half-width relative to the mean."""
        if self.mean == 0:
            return 0.0 if self._count >= 2 and self.stddev == 0 else math.inf
        return self.confidence_halfwidth(z) / abs(self.mean)


class FilterStatistics:
    """Aggregated filtering statistics over a stream of match results."""

    def __init__(self) -> None:
        self._operations = RunningMean()
        self._matches_per_event = RunningMean()
        self._events = 0
        self._matched_events = 0
        self._total_operations = 0
        self._total_notifications = 0
        self._per_profile_notifications: Counter = Counter()
        self._per_profile_operations: Counter = Counter()

    # -- recording ---------------------------------------------------------------
    def record(self, result: MatchResult) -> None:
        """Record the outcome of filtering one event."""
        self._events += 1
        self._operations.add(result.operations)
        self._matches_per_event.add(len(result.matched_profile_ids))
        self._total_operations += result.operations
        self._total_notifications += len(result.matched_profile_ids)
        if result.is_match:
            self._matched_events += 1
        for profile_id in result.matched_profile_ids:
            self._per_profile_notifications[profile_id] += 1
            # The operations spent on the event are attributed to every
            # profile it notifies; per-profile averages therefore measure how
            # quickly *this* profile's notifications are produced.
            self._per_profile_operations[profile_id] += result.operations

    # -- aggregate metrics ----------------------------------------------------------
    @property
    def events(self) -> int:
        """Return the number of filtered events."""
        return self._events

    @property
    def matched_events(self) -> int:
        """Return the number of events that matched at least one profile."""
        return self._matched_events

    @property
    def total_operations(self) -> int:
        return self._total_operations

    @property
    def total_notifications(self) -> int:
        return self._total_notifications

    def average_operations_per_event(self) -> float:
        """Return the paper's primary metric (Fig. 4, Fig. 5(a), Fig. 6)."""
        if self._events == 0:
            raise MatchingError("no events recorded")
        return self._operations.mean

    def average_matches_per_event(self) -> float:
        """Return the average number of notified profiles per event."""
        if self._events == 0:
            raise MatchingError("no events recorded")
        return self._matches_per_event.mean

    def match_rate(self) -> float:
        """Return the fraction of events matching at least one profile."""
        if self._events == 0:
            raise MatchingError("no events recorded")
        return self._matched_events / self._events

    def average_operations_per_profile(self, profile_id: str) -> float:
        """Return the average operations per notification of one profile."""
        notifications = self._per_profile_notifications.get(profile_id, 0)
        if notifications == 0:
            raise MatchingError(f"profile {profile_id!r} received no notifications")
        return self._per_profile_operations[profile_id] / notifications

    def average_operations_over_profiles(self) -> float:
        """Return the Fig. 5(b) metric: the per-profile averages, averaged
        over all profiles that received at least one notification."""
        values = [
            self._per_profile_operations[pid] / count
            for pid, count in self._per_profile_notifications.items()
            if count
        ]
        if not values:
            raise MatchingError("no profile received a notification")
        return sum(values) / len(values)

    def average_operations_per_event_and_profile(self) -> float:
        """Return the Fig. 5(c) metric: operations per delivered notification.

        Defined as total operations divided by the total number of
        (event, profile) notification pairs, i.e. the cost of producing one
        notification.
        """
        if self._total_notifications == 0:
            raise MatchingError("no notifications recorded")
        return self._total_operations / self._total_notifications

    def notifications_of(self, profile_id: str) -> int:
        """Return how many notifications a profile received."""
        return self._per_profile_notifications.get(profile_id, 0)

    def per_profile_notification_counts(self) -> Mapping[str, int]:
        """Return a copy of the per-profile notification counters."""
        return dict(self._per_profile_notifications)

    # -- stopping rule ----------------------------------------------------------------
    def precision_reached(self, target: float = 0.05, *, minimum_events: int = 30) -> bool:
        """Return ``True`` once the mean operation count is estimated with
        the requested relative precision (the paper's "95 % precision").
        """
        if self._events < minimum_events:
            return False
        return self._operations.relative_precision() <= target

    def summary(self) -> dict[str, float]:
        """Return the headline metrics as a plain dictionary."""
        return {
            "events": float(self._events),
            "avg_operations_per_event": self.average_operations_per_event(),
            "avg_matches_per_event": self.average_matches_per_event(),
            "match_rate": self.match_rate(),
            "avg_operations_per_profile": (
                self.average_operations_over_profiles()
                if self._total_notifications
                else float("nan")
            ),
            "avg_operations_per_event_and_profile": (
                self.average_operations_per_event_and_profile()
                if self._total_notifications
                else float("nan")
            ),
        }
