"""Common matcher interface.

Every filtering algorithm in the library — the naive baseline, the
counting-based baseline, the (distribution-aware) profile-tree matcher and
the predicate-index matcher — implements the :class:`Matcher` interface:
given an event, return the set of matching profile ids *and* the number of
comparison operations spent, since the paper measures filter performance
"in comparison steps (# operations)".

Matchers additionally expose a **batch API**, :meth:`Matcher.match_batch`,
which filters a sequence of events in one call.  Semantically it equals
mapping :meth:`Matcher.match` over the events; implementations use it to
amortise per-event dispatch (bound-method reuse, index locals), and the
service layer (:meth:`repro.service.broker.Broker.publish_batch`) builds on
it.  :func:`match_batch` is the generic helper for matcher-like objects
that predate the method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, runtime_checkable

from repro.core.events import Event
from repro.core.profiles import Profile, ProfileSet

__all__ = ["MatchResult", "Matcher", "match_all", "match_batch"]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of filtering one event.

    Attributes
    ----------
    matched_profile_ids:
        Ids of all profiles the event satisfies, in deterministic order.
    operations:
        Number of comparison steps the matcher spent on this event.
    visited_levels:
        Number of tree levels (or passes) the matcher descended before the
        decision; equals the number of schema attributes for a full match
        and less for an early rejection.
    """

    matched_profile_ids: tuple[str, ...]
    operations: int
    visited_levels: int = 0

    @property
    def is_match(self) -> bool:
        """Return ``True`` when at least one profile matched."""
        return bool(self.matched_profile_ids)

    def __len__(self) -> int:
        return len(self.matched_profile_ids)

    def __contains__(self, profile_id: object) -> bool:
        return profile_id in self.matched_profile_ids


@runtime_checkable
class Matcher(Protocol):
    """Protocol implemented by all filtering algorithms."""

    #: The profile set the matcher was built for.
    profiles: ProfileSet

    def match(self, event: Event) -> MatchResult:
        """Filter one event and return the matching profiles with cost."""
        ...

    def match_batch(self, events: Iterable[Event]) -> list[MatchResult]:
        """Filter a sequence of events, one result per event."""
        ...

    def add_profile(self, profile: Profile) -> None:
        """Register an additional profile (rebuilding indexes as needed)."""
        ...

    def remove_profile(self, profile_id: str) -> None:
        """Unregister a profile."""
        ...


def match_all(matcher: Matcher, events: Iterable[Event]) -> list[MatchResult]:
    """Filter a sequence of events, returning one result per event."""
    return [matcher.match(event) for event in events]


def match_batch(matcher: Matcher, events: Iterable[Event]) -> list[MatchResult]:
    """Batch-filter ``events``, using the matcher's own batch path if any."""
    batch = getattr(matcher, "match_batch", None)
    if batch is not None:
        return batch(events)
    return match_all(matcher, events)
