"""Common matcher interface.

Every filtering algorithm in the library — the naive baseline, the
counting-based baseline, the (distribution-aware) profile-tree matcher and
the predicate-index matcher — implements the :class:`Matcher` interface:
given an event, return the set of matching profile ids *and* the number of
comparison operations spent, since the paper measures filter performance
"in comparison steps (# operations)".

Matchers additionally expose a **batch API**, :meth:`Matcher.match_batch`,
which filters a sequence of events in one call.  Semantically it equals
mapping :meth:`Matcher.match` over the events; implementations use it to
amortise per-event dispatch (bound-method reuse, index locals), and the
service layer (:meth:`repro.service.broker.Broker.publish_batch`) builds on
it.  :func:`match_batch` is the generic helper for matcher-like objects
that predate the method.

**Maintenance contract.**  :meth:`Matcher.add_profile` registers a profile
(validating it against the schema and rejecting duplicate ids) and
:meth:`Matcher.remove_profile` unregisters one; every matcher family
raises :class:`~repro.core.errors.MatchingError` for an unknown profile id
on removal, so callers can rely on one exception type across families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, runtime_checkable

from repro.core.errors import MatchingError, ProfileError
from repro.core.events import Event
from repro.core.profiles import Profile, ProfileSet

__all__ = ["MatchResult", "Matcher", "match_all", "match_batch", "remove_profile_strict"]


def remove_profile_strict(profiles: ProfileSet, profile_id: str) -> Profile:
    """Remove a profile under the cross-matcher maintenance contract.

    Translates the profile set's :class:`~repro.core.errors.ProfileError`
    into the :class:`~repro.core.errors.MatchingError` every matcher
    family raises for an unknown profile id — the contract lives here so
    the families cannot drift apart.
    """
    try:
        return profiles.remove(profile_id)
    except ProfileError as exc:
        raise MatchingError(f"unknown profile id {profile_id!r}") from exc


@dataclass(frozen=True)
class MatchResult:
    """Outcome of filtering one event.

    Attributes
    ----------
    matched_profile_ids:
        Ids of all profiles the event satisfies, in deterministic order.
    operations:
        Number of comparison steps the matcher spent on this event.
    visited_levels:
        Number of tree levels (or passes) the matcher descended before the
        decision; equals the number of schema attributes for a full match
        and less for an early rejection.
    """

    matched_profile_ids: tuple[str, ...]
    operations: int
    visited_levels: int = 0

    @property
    def is_match(self) -> bool:
        """Return ``True`` when at least one profile matched."""
        return bool(self.matched_profile_ids)

    def __len__(self) -> int:
        return len(self.matched_profile_ids)

    def __contains__(self, profile_id: object) -> bool:
        return profile_id in self.matched_profile_ids


@runtime_checkable
class Matcher(Protocol):
    """Protocol implemented by all filtering algorithms."""

    #: The profile set the matcher was built for.
    profiles: ProfileSet

    def match(self, event: Event) -> MatchResult:
        """Filter one event and return the matching profiles with cost."""
        ...

    def match_batch(self, events: Iterable[Event]) -> list[MatchResult]:
        """Filter a sequence of events, one result per event."""
        ...

    def add_profile(self, profile: Profile) -> None:
        """Register an additional profile (rebuilding indexes as needed)."""
        ...

    def add_profiles(self, profiles: Iterable[Profile]) -> None:
        """Register a batch of profiles (one rebuild where the family
        rebuilds; per-profile deltas where maintenance is incremental)."""
        ...

    def remove_profile(self, profile_id: str) -> None:
        """Unregister a profile."""
        ...


def match_all(matcher: Matcher, events: Iterable[Event]) -> list[MatchResult]:
    """Filter a sequence of events, returning one result per event."""
    return [matcher.match(event) for event in events]


def match_batch(matcher: Matcher, events: Iterable[Event]) -> list[MatchResult]:
    """Batch-filter ``events``, using the matcher's own batch path if any."""
    batch = getattr(matcher, "match_batch", None)
    if batch is not None:
        return batch(events)
    return match_all(matcher, events)
