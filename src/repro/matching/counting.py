"""Counting-based matcher (baseline).

The second algorithm family of the related work ("clustering"/counting
approaches such as Le Subscribe and the predicate-counting algorithm of
Aguilera et al. / Fabret et al.): all *distinct* predicates are evaluated
once per event through a per-attribute index, and a counter per profile
records how many of its predicates are satisfied; profiles whose counter
reaches their predicate count match the event.

This gives sub-linear behaviour when many profiles share predicates, and is
the natural middle ground between the naive scan and the profile tree.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from repro.core.events import Event
from repro.core.predicates import Equals, Predicate
from repro.core.profiles import Profile, ProfileSet
from repro.matching.interfaces import MatchResult, remove_profile_strict

__all__ = ["CountingMatcher"]


@dataclass(frozen=True)
class _PredicateKey:
    """Canonical identity of a predicate occurrence on one attribute."""

    attribute: str
    predicate: Predicate


class CountingMatcher:
    """Predicate-counting matcher with an equality fast path.

    Distinct ``(attribute, predicate)`` pairs are stored once.  Equality
    predicates are indexed in a hash table per attribute so that, per event
    and attribute, only the predicates on the observed value are touched
    (cost 1 per satisfied equality predicate plus one lookup); all other
    predicate kinds are evaluated individually (cost 1 each).

    .. note::
       The reported ``operations`` count comparison steps only.  The
       per-profile counter increments and the final collection pass over
       the profile set (``O(p)`` per event in this baseline) are *not*
       counted, so the metric is a lower bound that is not directly
       comparable with the tree matcher's edge-probe counts — see the
       baselines benchmark.
       :class:`~repro.matching.index.PredicateIndexMatcher` is the
       production descendant of this algorithm: planned buckets, bisect
       range probes and touched-profile collection.
    """

    def __init__(self, profiles: ProfileSet) -> None:
        self.profiles = profiles
        self._rebuild()

    # -- index maintenance -----------------------------------------------------
    def _rebuild(self) -> None:
        # predicate key -> profiles subscribing to it
        self._subscribers: dict[_PredicateKey, list[str]] = defaultdict(list)
        # attribute -> value -> equality predicate keys on that value
        self._equality_index: dict[str, dict[object, list[_PredicateKey]]] = defaultdict(
            lambda: defaultdict(list)
        )
        # attribute -> non-equality predicate keys
        self._general_index: dict[str, list[_PredicateKey]] = defaultdict(list)
        # profile -> number of constrained attributes it needs satisfied
        self._required_counts: dict[str, int] = {}

        seen_general: dict[str, set[_PredicateKey]] = defaultdict(set)
        for profile in self.profiles:
            required = 0
            for attribute, predicate in profile.predicates.items():
                if predicate.is_dont_care:
                    continue
                required += 1
                key = _PredicateKey(attribute, predicate)
                self._subscribers[key].append(profile.profile_id)
                if isinstance(predicate, Equals):
                    values = self._equality_index[attribute][predicate.value]
                    if key not in values:
                        values.append(key)
                else:
                    if key not in seen_general[attribute]:
                        seen_general[attribute].add(key)
                        self._general_index[attribute].append(key)
            self._required_counts[profile.profile_id] = required

    def add_profile(self, profile: Profile) -> None:
        """Register an additional profile and rebuild the predicate index."""
        self.profiles.add(profile)
        self._rebuild()

    def add_profiles(self, profiles: Iterable[Profile]) -> None:
        """Register a batch of profiles with a single rebuild.

        Rebuilds even when a mid-batch add fails, so the index always
        describes the profile set exactly.
        """
        try:
            for profile in profiles:
                self.profiles.add(profile)
        finally:
            self._rebuild()

    def remove_profile(self, profile_id: str) -> None:
        """Unregister a profile and rebuild the predicate index.

        Raises :class:`~repro.core.errors.MatchingError` for an unknown
        profile id (the cross-matcher contract).
        """
        remove_profile_strict(self.profiles, profile_id)
        self._rebuild()

    # -- matching ---------------------------------------------------------------
    def match(self, event: Event) -> MatchResult:
        """Filter one event by counting satisfied predicates per profile."""
        operations = 0
        satisfied_counts: dict[str, int] = defaultdict(int)

        for attribute, value in event.values.items():
            # Equality fast path: one hash lookup, then one operation per
            # predicate registered exactly on this value.
            equality_hits = self._equality_index.get(attribute, {}).get(value, [])
            for key in equality_hits:
                operations += 1
                for profile_id in self._subscribers[key]:
                    satisfied_counts[profile_id] += 1
            # All other predicate kinds are evaluated one by one.
            for key in self._general_index.get(attribute, []):
                operations += 1
                if key.predicate.matches(value):
                    for profile_id in self._subscribers[key]:
                        satisfied_counts[profile_id] += 1

        matched = []
        for profile in self.profiles:
            required = self._required_counts[profile.profile_id]
            if required == 0:
                # A profile with only don't-care predicates matches everything.
                matched.append(profile.profile_id)
            elif satisfied_counts.get(profile.profile_id, 0) >= required:
                matched.append(profile.profile_id)
        return MatchResult(tuple(matched), operations, visited_levels=len(event))

    def match_batch(self, events: Iterable[Event]) -> list[MatchResult]:
        """Filter a sequence of events (amortised dispatch)."""
        match = self.match
        return [match(event) for event in events]
