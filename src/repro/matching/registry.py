"""Pluggable roster of matcher families (the engine registry).

The adaptive service used to hard-code its roster as a string tuple
(``ENGINES = ("tree", "index", "auto")``) validated in two places and
switch on ``isinstance`` checks whenever it needed family-specific
behaviour.  This module replaces that with a declarative registry: every
matcher family registers one :class:`EngineSpec` bundling

* a **factory** building a fresh matcher for a profile set,
* a **cost estimator** (:attr:`EngineSpec.candidate`) producing the
  family's best candidate — predicted comparisons/event plus an install
  closure — under given event distributions, which is what the ``auto``
  arbitration of :class:`~repro.service.adaptive.AdaptiveFilterEngine`
  compares across families,
* a same-family **re-optimisation hook** (:attr:`EngineSpec.reoptimize`)
  for the fixed engines (a tree restructure, an index replan), and
* **capability flags** (:class:`EngineCapabilities`) the service layer
  consults instead of hard-coding family names: whether subscription
  churn is incremental, whether a columnar batch kernel exists.

``"auto"`` is not a family: it is the reserved arbitration mode that
pits every registered family's candidate against the current matcher.
:func:`default_registry` returns the process-wide registry, pre-populated
with the built-in ``tree``, ``index`` and ``hybrid`` families, the
partition-parallel ``sharded`` family, and the ``counting`` and ``naive``
baselines
(``sharded`` and the baselines are selectable by name, but — with no cost
estimator — never part of the ``auto`` arbitration); third-party engines
become selectable by registering a spec — no change to ``repro.service``
required::

    from repro.matching.registry import EngineSpec, default_registry

    default_registry().register(
        EngineSpec(name="bitmap", factory=lambda ctx: BitmapMatcher(ctx.profiles))
    )
    Broker(schema, adaptation_policy=AdaptationPolicy(engine="bitmap"))

A custom :class:`EngineRegistry` can also be carried per policy
(:attr:`repro.service.adaptive.AdaptationPolicy.registry`), which keeps
experiment-local engines out of the global roster.  The registry is
consulted at construction and re-optimisation points only — never on the
per-event hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterator, Mapping

from repro.core.errors import MatchingError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.profiles import ProfileSet
    from repro.distributions.base import Distribution
    from repro.matching.index.planner import IndexPlanner
    from repro.matching.interfaces import Matcher
    from repro.matching.tree.config import SearchStrategy, TreeConfiguration
    from repro.selectivity.attribute_measures import AttributeMeasure
    from repro.selectivity.value_measures import ValueMeasure

__all__ = [
    "AUTO_ENGINE",
    "EngineCandidate",
    "EngineCapabilities",
    "EngineContext",
    "EngineRegistry",
    "EngineSpec",
    "ReoptimisationProposal",
    "default_registry",
]

#: Reserved engine name selecting cross-family arbitration instead of one
#: fixed family.  Not registrable.
AUTO_ENGINE = "auto"


@dataclass(frozen=True)
class EngineCapabilities:
    """What a matcher family can do, for the service layer to consult."""

    #: ``add_profile``/``remove_profile`` apply deltas instead of
    #: rebuilding, so subscription churn is cheap.
    incremental_maintenance: bool = False
    #: ``match_batch`` runs a dedicated batch kernel (columnar execution)
    #: rather than a per-event loop.
    batch_kernel: bool = False


@dataclass(frozen=True)
class EngineContext:
    """Everything a spec callback may need to build or cost a matcher.

    Built by the adaptive engine from its profile set and policy; carried
    into :attr:`EngineSpec.factory` / :attr:`EngineSpec.candidate` /
    :attr:`EngineSpec.reoptimize` so specs never import the service layer.
    """

    profiles: "ProfileSet"
    attribute_measure: "AttributeMeasure"
    value_measure: "ValueMeasure"
    search: "SearchStrategy"
    initial_configuration: "TreeConfiguration | None" = None
    #: Effective columnar-batch cutover for families with a batch kernel
    #: (``None`` keeps the kernel's module default).  Resolved from
    #: ``AdaptationPolicy.min_columnar_batch`` falling back to the
    #: registry entry's :attr:`EngineSpec.min_columnar_batch`.
    min_columnar_batch: int | None = None
    #: Shard count for partition-parallel families (today: ``sharded``).
    #: ``None`` leaves the family on its cores-based default
    #: (:func:`repro.matching.sharded.default_shard_count`); resolved
    #: from :attr:`repro.service.adaptive.AdaptationPolicy.shard_count`.
    shard_count: int | None = None


@dataclass(frozen=True)
class EngineCandidate:
    """One family's best candidate under given event distributions.

    ``install()`` makes the candidate the live matcher — mutating the
    current matcher in place (same-family replan/restructure) or building
    a new one (family switch) — and returns it.  Costing must therefore
    be side-effect free until ``install`` runs.
    """

    family: str
    #: Predicted comparison operations per event (the paper's currency).
    cost: float
    label: str
    install: Callable[[], "Matcher"]


@dataclass(frozen=True)
class ReoptimisationProposal:
    """A same-family re-optimisation decision, before thresholding.

    Returned by :attr:`EngineSpec.reoptimize`; the adaptive engine applies
    its ``improvement_threshold`` economics and calls ``install()`` only
    when the predicted improvement clears it.
    """

    predicted_current: float
    predicted_candidate: float
    label: str
    install: Callable[[], "Matcher"]


@dataclass(frozen=True)
class EngineSpec:
    """Registration record of one matcher family."""

    #: Family name users select via ``AdaptationPolicy(engine=...)``.
    name: str
    #: Build a fresh matcher over ``ctx.profiles``.
    factory: Callable[[EngineContext], "Matcher"]
    capabilities: EngineCapabilities = field(default_factory=EngineCapabilities)
    #: ``isinstance``-style ownership test mapping a live matcher back to
    #: its family (used by the arbitration to know what is running).
    owns: Callable[["Matcher"], bool] | None = None
    #: Attribute measures the family can rank by (``None`` = any).
    supported_measures: tuple["AttributeMeasure", ...] | None = None
    #: Cost the family's best candidate under distributions (``None``:
    #: the family does not participate in the ``auto`` arbitration).
    candidate: (
        Callable[
            [EngineContext, "Matcher | None", Mapping[str, "Distribution"]],
            EngineCandidate | None,
        ]
        | None
    ) = None
    #: Optional calibration-aware costing hook.  When set, the ``auto``
    #: arbitration calls it instead of :attr:`candidate`, passing the
    #: engine's :class:`~repro.analysis.calibration.CostCalibrator` so the
    #: family can apply (or refine) its own correction.  It returns
    #: ``(candidate, calibrated_cost)`` — the candidate carries the *raw*
    #: model cost (recorded on the adaptation record), while
    #: ``calibrated_cost`` is the corrected number the arbitration
    #: compares — or ``None`` to abstain.  When the hook is ``None`` the
    #: arbitration falls back to ``candidate`` and scales its cost by the
    #: calibrator's learned per-family factor.
    calibrated_candidate: (
        Callable[
            [EngineContext, "Matcher | None", Mapping[str, "Distribution"], object],
            "tuple[EngineCandidate, float] | None",
        ]
        | None
    ) = None
    #: Predicted comparisons/event of the *currently running* matcher.
    current_cost: Callable[["Matcher", Mapping[str, "Distribution"]], float] | None = None
    #: Same-family re-optimisation hook for the fixed engines (``None``:
    #: the engine filters without periodic restructuring).
    reoptimize: (
        Callable[
            [EngineContext, "Matcher", Mapping[str, "Distribution"]],
            ReoptimisationProposal | None,
        ]
        | None
    ) = None
    #: Tie-break and start preference of the ``auto`` arbitration: lower
    #: ranks are preferred on equal cost and chosen as the warmup family.
    auto_rank: int = 100
    #: Default columnar-batch cutover of the family's batch kernel, when
    #: it has one (``None`` = the kernel's own module default).  A policy
    #: ``min_columnar_batch`` overrides this per engine instance.
    min_columnar_batch: int | None = None
    description: str = ""

    def matcher_owned(self, matcher: "Matcher") -> bool:
        """Return ``True`` when ``matcher`` belongs to this family."""
        return self.owns is not None and self.owns(matcher)


class EngineRegistry:
    """Mutable name → :class:`EngineSpec` roster."""

    def __init__(self, specs: "tuple[EngineSpec, ...] | list[EngineSpec]" = ()) -> None:
        self._specs: dict[str, EngineSpec] = {}
        for spec in specs:
            self.register(spec)

    # -- registration -----------------------------------------------------------
    def register(self, spec: EngineSpec, *, replace: bool = False) -> EngineSpec:
        """Add a family; ``replace=True`` overrides an existing entry."""
        if spec.name == AUTO_ENGINE:
            raise MatchingError(
                f"{AUTO_ENGINE!r} is the reserved arbitration mode, not a registrable family"
            )
        if not replace and spec.name in self._specs:
            raise MatchingError(
                f"engine {spec.name!r} is already registered; pass replace=True to override"
            )
        self._specs[spec.name] = spec
        return spec

    def unregister(self, name: str) -> EngineSpec:
        """Remove and return a family's spec."""
        try:
            return self._specs.pop(name)
        except KeyError as exc:
            raise MatchingError(f"engine {name!r} is not registered") from exc

    # -- lookup -----------------------------------------------------------------
    def spec(self, name: str) -> EngineSpec:
        """Return the spec for ``name`` (helpful error on a miss)."""
        try:
            return self._specs[name]
        except KeyError as exc:
            raise MatchingError(
                f"unknown engine {name!r}; registered engines: "
                f"{', '.join(self.engine_names())}"
            ) from exc

    def validate_engine(self, name: str) -> None:
        """Raise unless ``name`` is a registered family or ``"auto"``."""
        if name != AUTO_ENGINE:
            self.spec(name)

    def names(self) -> tuple[str, ...]:
        """Return the registered family names, in registration order."""
        return tuple(self._specs)

    def engine_names(self) -> tuple[str, ...]:
        """Return every selectable engine name (families + ``"auto"``)."""
        return tuple(self._specs) + (AUTO_ENGINE,)

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[EngineSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    # -- arbitration support ----------------------------------------------------
    def arbitrating_specs(self) -> list[EngineSpec]:
        """Return the families that cost candidates, in ``auto_rank`` order."""
        specs = [spec for spec in self._specs.values() if spec.candidate is not None]
        specs.sort(key=lambda spec: spec.auto_rank)
        return specs

    def auto_start(self) -> EngineSpec:
        """Return the family ``engine="auto"`` starts on (cheapest build)."""
        specs = self.arbitrating_specs()
        if not specs:
            raise MatchingError(
                "the auto engine needs at least one registered family with a "
                f"cost estimator; registered: {', '.join(self.names()) or '(none)'}"
            )
        return specs[0]

    def owner_of(self, matcher: "Matcher") -> EngineSpec | None:
        """Return the spec whose family owns ``matcher`` (``None``: unknown)."""
        for spec in self._specs.values():
            if spec.matcher_owned(matcher):
                return spec
        return None

    def copy(self) -> "EngineRegistry":
        """Return an independent registry with the same specs."""
        return EngineRegistry(tuple(self._specs.values()))


# -- built-in families -----------------------------------------------------------
#
# The callbacks import their machinery lazily: the registry module stays
# import-light (``repro.matching`` pulls it in) and free of cycles with
# ``repro.selectivity`` / ``repro.analysis``.


def _tree_factory(ctx: EngineContext) -> "Matcher":
    from repro.matching.tree.matcher import TreeMatcher

    return TreeMatcher(ctx.profiles, ctx.initial_configuration)


def _tree_owns(matcher: "Matcher") -> bool:
    from repro.matching.tree.matcher import TreeMatcher

    return isinstance(matcher, TreeMatcher)


def _tree_current_cost(matcher: "Matcher", distributions) -> float:
    from repro.analysis.cost_model import expected_tree_cost

    return expected_tree_cost(matcher.tree, distributions).operations_per_event


def _tree_build_candidate(ctx: EngineContext, partitions, distributions):
    """Cost the optimizer's candidate tree under ``distributions``.

    Shared by the pure-tree re-optimisation and the ``auto`` arbitration
    so both use one costing recipe.  Returns ``(configuration, tree,
    operations_per_event)``; the built tree is returned so an applied
    decision can adopt it instead of rebuilding.
    """
    from repro.analysis.cost_model import expected_tree_cost
    from repro.matching.tree.builder import build_tree
    from repro.selectivity.optimizer import TreeOptimizer

    partitions = dict(partitions)
    optimizer = TreeOptimizer(ctx.profiles, distributions, partitions=partitions)
    configuration = optimizer.configuration(
        value_measure=ctx.value_measure,
        attribute_measure=ctx.attribute_measure,
        search=ctx.search,
    )
    tree = build_tree(ctx.profiles, configuration, partitions=partitions)
    cost = expected_tree_cost(tree, distributions).operations_per_event
    return configuration, tree, cost


def _tree_candidate(
    ctx: EngineContext, matcher: "Matcher | None", distributions
) -> EngineCandidate | None:
    from repro.core.errors import ReproError
    from repro.core.subranges import build_partitions
    from repro.matching.tree.matcher import TreeMatcher

    # Workloads the tree model cannot express (partition construction
    # fails) simply leave the family out of the arbitration.
    try:
        if isinstance(matcher, TreeMatcher):
            partitions = matcher.partitions()
        else:
            partitions = build_partitions(ctx.profiles)
        configuration, tree, cost = _tree_build_candidate(ctx, partitions, distributions)
    except ReproError:
        return None

    def install() -> "Matcher":
        if isinstance(matcher, TreeMatcher):
            # Install the tree already built for costing — no second build.
            matcher.adopt(tree, configuration)
            return matcher
        return TreeMatcher.from_built(ctx.profiles, tree, configuration)

    return EngineCandidate("tree", cost, f"tree[{configuration.label}]", install)


def _tree_reoptimize(
    ctx: EngineContext, matcher: "Matcher", distributions
) -> ReoptimisationProposal | None:
    configuration, tree, cost = _tree_build_candidate(
        ctx, matcher.partitions(), distributions
    )
    predicted_current = _tree_current_cost(matcher, distributions)

    def install() -> "Matcher":
        matcher.adopt(tree, configuration)
        return matcher

    return ReoptimisationProposal(predicted_current, cost, configuration.label, install)


def _index_factory(ctx: EngineContext) -> "Matcher":
    from repro.matching.index.matcher import PredicateIndexMatcher
    from repro.matching.index.planner import IndexPlanner

    return PredicateIndexMatcher(
        ctx.profiles,
        planner=IndexPlanner(attribute_measure=ctx.attribute_measure),
        min_columnar_batch=ctx.min_columnar_batch,
    )


def _index_owns(matcher: "Matcher") -> bool:
    from repro.matching.index.matcher import PredicateIndexMatcher

    # A hybrid-planned matcher is the same class with a different planner
    # mode; it belongs to the ``hybrid`` family.
    return isinstance(matcher, PredicateIndexMatcher) and not matcher.planner.hybrid


def _index_current_cost(matcher: "Matcher", distributions) -> float:
    return matcher.estimated_cost(distributions)


def _index_replanned(ctx: EngineContext, distributions, attribute_measure) -> "Matcher":
    from repro.matching.index.matcher import PredicateIndexMatcher
    from repro.matching.index.planner import IndexPlanner

    return PredicateIndexMatcher(
        ctx.profiles,
        planner=IndexPlanner(distributions, attribute_measure=attribute_measure),
        min_columnar_batch=ctx.min_columnar_batch,
    )


def _index_candidate(
    ctx: EngineContext, matcher: "Matcher | None", distributions
) -> EngineCandidate | None:
    from repro.matching.index.planner import IndexPlanner

    if _index_owns(matcher):
        # A cheap recost of the live buckets; an applied decision replans
        # (rebuilds) in place, keeping the matcher object and its stats.
        recosted = matcher.recost_plans(distributions)
        cost = sum(plan.chosen_cost for plan in recosted.values())

        def install() -> "Matcher":
            matcher.replan(distributions)
            return matcher

    else:
        # Bucket-free estimate: cost the family without building it.
        plans = IndexPlanner(
            distributions, attribute_measure=ctx.attribute_measure
        ).plan_profiles(ctx.profiles)
        cost = sum(plan.chosen_cost for plan in plans.values())

        def install() -> "Matcher":
            return _index_replanned(ctx, distributions, ctx.attribute_measure)

    return EngineCandidate("index", cost, "index[P_e estimated]", install)


def _index_reoptimize(
    ctx: EngineContext, matcher: "Matcher", distributions
) -> ReoptimisationProposal | None:
    """Replan the index buckets from the history.

    One cheap recosting pass yields both sides of the comparison —
    predicted cost of the *current* strategy choices vs a fresh
    distribution-aware plan over the same buckets; the replanned matcher
    is only built when the improvement is applied, mirroring the tree
    path's restructuring economics.
    """
    recosted = matcher.recost_plans(distributions)
    current_plan = matcher.plan
    predicted_current = 0.0
    predicted_candidate = 0.0
    for attribute, candidate_plan in recosted.items():
        attribute_plan = current_plan.plan_for(attribute)
        current_uses_index = (
            attribute_plan.use_index if attribute_plan is not None else candidate_plan.use_index
        )
        predicted_current += (
            candidate_plan.index_cost if current_uses_index else candidate_plan.scan_cost
        )
        predicted_candidate += candidate_plan.chosen_cost
    indexed = sum(1 for plan in recosted.values() if plan.use_index)

    def install() -> "Matcher":
        return _index_replanned(ctx, distributions, matcher.planner.attribute_measure)

    return ReoptimisationProposal(
        predicted_current,
        predicted_candidate,
        f"index[{indexed} indexed, P_e estimated]",
        install,
    )


def _hybrid_planner(ctx: EngineContext, distributions=None) -> "IndexPlanner":
    from repro.matching.index.planner import IndexPlanner

    return IndexPlanner(
        distributions, attribute_measure=ctx.attribute_measure, hybrid=True
    )


def _hybrid_factory(ctx: EngineContext) -> "Matcher":
    from repro.matching.index.matcher import PredicateIndexMatcher

    return PredicateIndexMatcher(
        ctx.profiles,
        planner=_hybrid_planner(ctx),
        min_columnar_batch=ctx.min_columnar_batch,
    )


def _hybrid_owns(matcher: "Matcher") -> bool:
    from repro.matching.index.matcher import PredicateIndexMatcher

    return isinstance(matcher, PredicateIndexMatcher) and matcher.planner.hybrid


def _hybrid_candidate(
    ctx: EngineContext, matcher: "Matcher | None", distributions
) -> EngineCandidate | None:
    if _hybrid_owns(matcher):
        # Same recipe as the index family: recost the live buckets (the
        # hybrid planner picks per-structure minima), replan in place.
        recosted = matcher.recost_plans(distributions)
        cost = sum(plan.chosen_cost for plan in recosted.values())

        def install() -> "Matcher":
            matcher.replan(distributions)
            return matcher

    else:
        plans = _hybrid_planner(ctx, distributions).plan_profiles(ctx.profiles)
        cost = sum(plan.chosen_cost for plan in plans.values())

        def install() -> "Matcher":
            from repro.matching.index.matcher import PredicateIndexMatcher

            return PredicateIndexMatcher(
                ctx.profiles,
                planner=_hybrid_planner(ctx, distributions),
                min_columnar_batch=ctx.min_columnar_batch,
            )

    return EngineCandidate("hybrid", cost, "hybrid[P_e estimated]", install)


def _hybrid_calibrated_candidate(
    ctx: EngineContext, matcher: "Matcher | None", distributions, calibrator
) -> "tuple[EngineCandidate, float] | None":
    """Score the hybrid candidate, borrowing the index factor when new.

    The hybrid family shares the index family's cost model and executor,
    so until the calibrator has measured a hybrid interval directly, the
    index family's learned correction is the best available estimate.
    Without the fallback a never-run hybrid would carry the neutral
    factor 1.0 and win arbitrations against an honestly-calibrated index
    plan it cannot beat (the two produce identical plans on homogeneous
    workloads).
    """
    candidate = _hybrid_candidate(ctx, matcher, distributions)
    if candidate is None:
        return None
    family = "hybrid" if calibrator.has_observed("hybrid") else "index"
    return candidate, candidate.cost * calibrator.factor(family)


def _hybrid_reoptimize(
    ctx: EngineContext, matcher: "Matcher", distributions
) -> ReoptimisationProposal | None:
    """Replan the hybrid matcher's buckets from the history.

    ``estimated_cost`` already recosts the *current* per-structure
    choices under the new distributions, so it is the current side of the
    comparison; the candidate side takes each attribute's component-wise
    minimum.
    """
    recosted = matcher.recost_plans(distributions)
    predicted_current = matcher.estimated_cost(distributions)
    predicted_candidate = sum(plan.chosen_cost for plan in recosted.values())
    indexed = sum(1 for plan in recosted.values() if plan.use_hash or plan.use_interval)
    mixed = sum(1 for plan in recosted.values() if plan.is_hybrid)

    def install() -> "Matcher":
        matcher.replan(distributions)
        return matcher

    return ReoptimisationProposal(
        predicted_current,
        predicted_candidate,
        f"hybrid[{indexed} indexed, {mixed} mixed, P_e estimated]",
        install,
    )


def _sharded_factory(ctx: EngineContext) -> "Matcher":
    from repro.matching.index.planner import IndexPlanner
    from repro.matching.sharded.matcher import ShardedMatcher

    return ShardedMatcher(
        ctx.profiles,
        shard_count=ctx.shard_count,
        planner=IndexPlanner(attribute_measure=ctx.attribute_measure),
        min_columnar_batch=ctx.min_columnar_batch,
    )


def _sharded_owns(matcher: "Matcher") -> bool:
    from repro.matching.sharded.matcher import ShardedMatcher

    return isinstance(matcher, ShardedMatcher)


def _sharded_current_cost(matcher: "Matcher", distributions) -> float:
    return matcher.estimated_cost(distributions)


def _sharded_reoptimize(
    ctx: EngineContext, matcher: "Matcher", distributions
) -> ReoptimisationProposal | None:
    """Recost every shard's buckets and propose one collective replan.

    Folds the per-shard recosting passes (the same recipe as the index
    family's :func:`_index_reoptimize`, applied per shard) into one
    proposal: both predicted costs are sums over shards, and installing
    replans every shard under the shared distributions.
    """
    predicted_current = 0.0
    predicted_candidate = 0.0
    indexed = 0
    for shard in matcher.shards:
        recosted = shard.recost_plans(distributions)
        current_plan = shard.plan
        for attribute, candidate_plan in recosted.items():
            attribute_plan = current_plan.plan_for(attribute)
            current_uses_index = (
                attribute_plan.use_index
                if attribute_plan is not None
                else candidate_plan.use_index
            )
            predicted_current += (
                candidate_plan.index_cost if current_uses_index else candidate_plan.scan_cost
            )
            predicted_candidate += candidate_plan.chosen_cost
        indexed += sum(1 for plan in recosted.values() if plan.use_index)

    def install() -> "Matcher":
        matcher.replan(distributions)
        return matcher

    return ReoptimisationProposal(
        predicted_current,
        predicted_candidate,
        f"sharded[{matcher.shard_count} shards, {indexed} indexed, P_e estimated]",
        install,
    )


def _counting_factory(ctx: EngineContext) -> "Matcher":
    from repro.matching.counting import CountingMatcher

    return CountingMatcher(ctx.profiles)


def _counting_owns(matcher: "Matcher") -> bool:
    from repro.matching.counting import CountingMatcher

    # Exact type, not isinstance: a subclass registered as its own
    # family (a common third-party pattern in the tests) must not be
    # claimed by the baseline it derives from.
    return type(matcher) is CountingMatcher


def _naive_factory(ctx: EngineContext) -> "Matcher":
    from repro.matching.naive import NaiveMatcher

    return NaiveMatcher(ctx.profiles)


def _naive_owns(matcher: "Matcher") -> bool:
    from repro.matching.naive import NaiveMatcher

    return type(matcher) is NaiveMatcher


def _builtin_specs() -> tuple[EngineSpec, ...]:
    from repro.matching.index.planner import IndexPlanner

    tree = EngineSpec(
        name="tree",
        factory=_tree_factory,
        capabilities=EngineCapabilities(incremental_maintenance=False, batch_kernel=False),
        owns=_tree_owns,
        supported_measures=None,
        candidate=_tree_candidate,
        current_cost=_tree_current_cost,
        reoptimize=_tree_reoptimize,
        auto_rank=1,
        description="the paper's profile tree, restructured via the TreeOptimizer",
    )
    index = EngineSpec(
        name="index",
        factory=_index_factory,
        capabilities=EngineCapabilities(incremental_maintenance=True, batch_kernel=True),
        owns=_index_owns,
        supported_measures=tuple(IndexPlanner.SUPPORTED_MEASURES),
        candidate=_index_candidate,
        current_cost=_index_current_cost,
        reoptimize=_index_reoptimize,
        # ``auto`` starts on the index matcher (the cheaper build) and
        # prefers it on equal predicted cost.
        auto_rank=0,
        min_columnar_batch=None,
        description="predicate-index counting matcher, replanned via the IndexPlanner",
    )
    hybrid = EngineSpec(
        name="hybrid",
        factory=_hybrid_factory,
        capabilities=EngineCapabilities(incremental_maintenance=True, batch_kernel=True),
        owns=_hybrid_owns,
        supported_measures=tuple(IndexPlanner.SUPPORTED_MEASURES),
        candidate=_hybrid_candidate,
        calibrated_candidate=_hybrid_calibrated_candidate,
        current_cost=_index_current_cost,
        reoptimize=_hybrid_reoptimize,
        # Arbitrates after index/tree: on workloads where a homogeneous
        # plan is already optimal the hybrid ties, and the tie goes to the
        # established family.
        auto_rank=2,
        min_columnar_batch=None,
        description=(
            "predicate-index matcher with per-attribute hybrid plans "
            "(hash/interval/scan chosen independently)"
        ),
    )
    sharded = EngineSpec(
        name="sharded",
        factory=_sharded_factory,
        capabilities=EngineCapabilities(incremental_maintenance=True, batch_kernel=True),
        owns=_sharded_owns,
        supported_measures=tuple(IndexPlanner.SUPPORTED_MEASURES),
        # No candidate: sharding is a deployment decision (core budget),
        # not something the per-event cost currency can arbitrate — the
        # summed probe cost always looks worse than one unsharded probe.
        candidate=None,
        current_cost=_sharded_current_cost,
        reoptimize=_sharded_reoptimize,
        auto_rank=10,
        min_columnar_batch=None,
        description="partition-parallel predicate-index shards merged bit-identically",
    )
    # The two baseline families of the paper's related work, registered
    # so the experiment harness and the benchmarks drive *every* matcher
    # through one ``AdaptationPolicy(engine=...)`` switch.  Neither
    # carries a cost estimator: they never participate in the ``auto``
    # arbitration and never restructure periodically.
    counting = EngineSpec(
        name="counting",
        factory=_counting_factory,
        capabilities=EngineCapabilities(incremental_maintenance=False, batch_kernel=False),
        owns=_counting_owns,
        auto_rank=50,
        description="predicate-counting baseline (shared predicates, rebuilt per change)",
    )
    naive = EngineSpec(
        name="naive",
        factory=_naive_factory,
        # add/remove are O(1) set edits — trivially incremental.
        capabilities=EngineCapabilities(incremental_maintenance=True, batch_kernel=False),
        owns=_naive_owns,
        auto_rank=60,
        description="sequential per-profile scan baseline",
    )
    return (tree, index, hybrid, sharded, counting, naive)


_DEFAULT: EngineRegistry | None = None


def default_registry() -> EngineRegistry:
    """Return the process-wide registry (built-ins registered lazily)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = EngineRegistry(_builtin_specs())
    return _DEFAULT


def builtin_specs() -> tuple[EngineSpec, ...]:
    """Return fresh copies of the built-in specs (for custom registries)."""
    return tuple(replace(spec) for spec in _builtin_specs())
