"""The predicate-index matcher (dense-id counting core).

:class:`PredicateIndexMatcher` decomposes every profile predicate into the
per-(attribute, operator) buckets of :mod:`repro.matching.index.buckets`
and satisfies profiles by *counting over index hits*: each distinct
``(attribute, predicate)`` pair is one entry shared by all subscribing
profiles; per event and attribute a single probe returns the satisfied
entries, their subscribers' counters are incremented, and the profiles
whose counter reaches their constrained-attribute count match.

Dense-id layout
---------------
The hot loop never touches profile-id strings.  Every profile is assigned a
**dense integer id** by an allocator with a free list (``_id_of`` /
``_pid_of`` / ``_free_ids``), so subscription churn recycles ids instead of
growing the id space.  Everything per-profile is an array indexed by dense
id:

* ``_required[dense]`` — number of constrained attributes (the match
  threshold);
* ``_order_pos[dense]`` — monotone insertion stamp used to report matches
  in profile-set insertion order;
* ``_counts[dense]`` — the per-event hit counter, a preallocated list of
  ints (a plain list beats ``bytearray``/``array('I')`` here: CPython
  specialises list subscripts, and unboxed arrays re-box every value on
  read).

Posting lists are flattened into contiguous slabs of dense ids, built
lazily per distinct entry-id tuple and memoised in a per-attribute cache
that maintenance simply drops.  Per event the counter is reset by walking
the *touched* dense ids — never by reallocating — so :meth:`match` /
:meth:`match_batch` allocate nothing per event beyond the result object.

Incremental maintenance
-----------------------
:meth:`add_profile` / :meth:`remove_profile` apply **postings deltas**: the
profile's entries are spliced into (or out of) the hash, slab and scan
buckets in place (slab buckets splice endpoints via ``bisect.insort``-style
edits, see :class:`~repro.matching.index.buckets.IntervalBucket`), which
makes the cost of one churn operation proportional to the profile's own
predicates — not to the total predicate population.  Strategy decisions
(index-vs-scan per attribute, the probe order) are *not* recomputed per
churn op; maintenance merely raises a deferred-replan flag and the planner
recosts lazily the next time :attr:`plan` (or an estimated cost) is asked
for.  A full :meth:`replan` rebuild also compacts ids and stale slab
boundaries.

Maintenance must go through the matcher's own methods; mutating the wrapped
:class:`~repro.core.profiles.ProfileSet` directly desynchronises the index.

Operation accounting follows the suite's convention (one comparison per
probe step and per satisfied/scanned entry; counter bookkeeping is free —
see ``CountingMatcher`` and the baselines benchmark for the caveat this
implies).  The matcher is not reentrant: the counter and touched list are
shared scratch state, so concurrent :meth:`match` calls on one instance
are not supported.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.errors import MatchingError
from repro.core.events import Event
from repro.core.predicates import Equals, OneOf, Predicate, RangePredicate
from repro.core.profiles import Profile, ProfileSet
from repro.distributions.base import Distribution
from repro.matching.index import kernel
from repro.matching.index.buckets import HashBucket, IntervalBucket
from repro.matching.index.planner import AttributePlan, IndexPlan, IndexPlanner
from repro.matching.interfaces import MatchResult

__all__ = ["PredicateIndexMatcher"]

#: Entry kinds: hash bucket (Equals/OneOf), slab bucket (ranges), scan.
_HASH, _RANGE, _SCAN = 0, 1, 2


def _classify(predicate: Predicate) -> int:
    if isinstance(predicate, (Equals, OneOf)):
        return _HASH
    if isinstance(predicate, RangePredicate):
        return _RANGE
    return _SCAN


class _Entry:
    """One distinct ``(attribute, predicate)`` pair and its subscribers."""

    __slots__ = ("entry_id", "predicate", "kind", "postings")

    def __init__(self, entry_id: int, predicate: Predicate, kind: int) -> None:
        self.entry_id = entry_id
        self.predicate = predicate
        self.kind = kind
        #: Dense ids of the subscribing profiles (unordered).
        self.postings: list[int] = []


class _AttributeState:
    """Mutable per-attribute index state.

    ``posting_cache`` maps an entry-id tuple (a hash-bucket hit or a slab
    cover) to its flattened ``(dense-id tuple, entry count)`` posting slab.
    ``np_posting_cache`` memoises the same slabs (plus per-scan-entry
    postings, keyed by the bare entry id) as contiguous numpy arrays for
    the columnar batch kernel (:mod:`repro.matching.index.kernel`).
    Maintenance rebinds both caches to ``{}``; the hot loops re-flatten
    each distinct tuple once on its next probe.
    """

    __slots__ = (
        "entries",
        "entry_by_id",
        "next_entry_id",
        "hash_bucket",
        "hash_table",
        "interval_bucket",
        "range_entry_count",
        "scan_entries",
        "use_index",
        "use_hash",
        "use_interval",
        "view_hash",
        "view_interval",
        "view_scan",
        "constraining",
        "reject_fast",
        "posting_cache",
        "np_posting_cache",
    )

    def __init__(self) -> None:
        self.entries: dict[Predicate, _Entry] = {}
        self.entry_by_id: dict[int, _Entry] = {}
        self.next_entry_id = 0
        self.hash_bucket: HashBucket | None = None
        #: Mirror of ``hash_bucket.table`` (same dict object) so the hot
        #: loop probes it without a method call; ``None`` with the bucket.
        self.hash_table: Mapping[object, tuple[int, ...]] | None = None
        self.interval_bucket: IntervalBucket | None = None
        self.range_entry_count = 0
        self.scan_entries: list[_Entry] = []
        self.use_index = False
        #: Per-structure verdicts (see :class:`AttributePlan`): a binary
        #: planner couples both to ``use_index``; a hybrid planner may
        #: route the hash side through its bucket while the interval side
        #: scans, or vice versa.
        self.use_hash = False
        self.use_interval = False
        #: Hot-loop probe view: when the planner picks an indexed strategy
        #: for a structure these expose its bucket plus the residual scan
        #: entries; a demoted structure's entries join ``view_scan``
        #: instead, so the one loop shape serves every strategy mix
        #: without a per-event branch.
        self.view_hash: Mapping[object, tuple[int, ...]] | None = None
        self.view_interval: IntervalBucket | None = None
        self.view_scan: Iterable[_Entry] = self.scan_entries
        #: Number of live profiles constraining the attribute (each profile
        #: carries at most one predicate per attribute, so this equals the
        #: distinct-profile count).
        self.constraining = 0
        #: ``True`` when *every* live profile constrains the attribute, so
        #: a zero-hit probe rejects the event outright; refreshed by the
        #: matcher whenever the live-profile count or ``constraining``
        #: changes (see ``_refresh_reject_flags``).
        self.reject_fast = False
        self.posting_cache: dict[tuple[int, ...], tuple[tuple[int, ...], int]] = {}
        self.np_posting_cache: dict[object, object] = {}

    def refresh_view(self) -> None:
        """Recompile the probe view after a strategy or bucket change.

        In the homogeneous cases ``view_scan`` aliases live containers
        (``scan_entries`` or the ``entries`` dict view), so posting edits
        need no refresh — only bucket creation/teardown and strategy
        flips do.  A *mixed* plan (one structure indexed, the other
        demoted to scan) materialises the demoted entries into a list;
        entry creation/removal re-lands here, so the list stays exact.
        """
        self.view_hash = self.hash_table if self.use_hash else None
        self.view_interval = self.interval_bucket if self.use_interval else None
        if self.use_hash and self.use_interval:
            self.view_scan = self.scan_entries
        elif not self.use_hash and not self.use_interval:
            self.view_hash = None
            self.view_interval = None
            self.view_scan = self.entries.values()
        else:
            demoted = _RANGE if self.use_hash else _HASH
            self.view_scan = [
                entry
                for entry in self.entries.values()
                if entry.kind == _SCAN or entry.kind == demoted
            ]

    def flatten(self, entry_ids: tuple[int, ...]) -> tuple[tuple[int, ...], int]:
        """Flatten and memoise the posting slab of an entry-id tuple.

        The slab is a tuple of dense ids rather than an ``array('I')``:
        iterating an unboxed array re-boxes every id above the small-int
        cache on every event, which measures slower than reusing the int
        objects a tuple keeps alive.
        """
        flat: list[int] = []
        by_id = self.entry_by_id
        for entry_id in entry_ids:
            flat.extend(by_id[entry_id].postings)
        posting = (tuple(flat), len(entry_ids))
        self.posting_cache[entry_ids] = posting
        return posting


class PredicateIndexMatcher:
    """Counting matcher over per-attribute predicate indexes."""

    def __init__(
        self,
        profiles: ProfileSet,
        *,
        planner: IndexPlanner | None = None,
        min_columnar_batch: int | None = None,
    ) -> None:
        self.profiles = profiles
        self._planner = planner if planner is not None else IndexPlanner()
        if min_columnar_batch is not None and min_columnar_batch < 0:
            raise MatchingError("min_columnar_batch must be non-negative")
        #: Columnar-kernel cutover override; ``None`` tracks the module
        #: default :data:`~repro.matching.index.kernel.MIN_COLUMNAR_BATCH`.
        self._min_columnar_batch = min_columnar_batch
        #: Executed-work accounting accumulated over every columnar batch
        #: this matcher instance has run (survives incremental maintenance
        #: and in-place :meth:`replan` rebuilds).
        self.kernel_stats = kernel.KernelStats()
        self._rebuild()

    # -- dense-id allocation ----------------------------------------------------
    def _allocate_id(self, profile_id: str) -> int:
        if self._free_ids:
            dense = self._free_ids.pop()
            self._pid_of[dense] = profile_id
            self._order_pos[dense] = self._order_counter
        else:
            dense = len(self._pid_of)
            self._pid_of.append(profile_id)
            self._required.append(0)
            self._order_pos.append(self._order_counter)
            self._counts.append(0)
        self._order_counter += 1
        self._id_of[profile_id] = dense
        return dense

    # -- index maintenance ------------------------------------------------------
    def _rebuild(self) -> None:
        """Batch-(re)build every structure from the profile set.

        Used at construction and by :meth:`replan`; ordinary churn goes
        through the postings-delta path instead.  The batch path builds the
        slab buckets with the O(k log k) endpoint sweep and compacts the
        dense-id space and any stale slab boundaries.
        """
        self._states: dict[str, _AttributeState] = {}
        self._id_of: dict[str, int] = {}
        self._pid_of: list[str | None] = []
        self._free_ids: list[int] = []
        self._required: list[int] = []
        self._order_pos: list[int] = []
        self._order_counter = 0
        self._counts: list[int] = []
        self._touched: list[int] = []
        self._always_match_ids: list[int] = []
        self._probe_order: tuple[str, ...] = ()
        self._probe_states: tuple[tuple[str, _AttributeState], ...] = ()
        self._probed: set[str] = set()
        self._replan_pending = True

        for profile in self.profiles:
            dense = self._allocate_id(profile.profile_id)
            constrained = 0
            for attribute, predicate in profile.predicates.items():
                if predicate.is_dont_care:
                    continue
                constrained += 1
                state = self._states.get(attribute)
                if state is None:
                    state = self._states[attribute] = _AttributeState()
                entry = state.entries.get(predicate)
                if entry is None:
                    entry = _Entry(state.next_entry_id, predicate, _classify(predicate))
                    state.next_entry_id += 1
                    state.entries[predicate] = entry
                    state.entry_by_id[entry.entry_id] = entry
                    if entry.kind == _SCAN:
                        state.scan_entries.append(entry)
                entry.postings.append(dense)
                state.constraining += 1
            self._set_required(dense, constrained)

        for state in self._states.values():
            hash_items: dict[object, list[int]] = {}
            interval_items = []
            for predicate, entry in state.entries.items():
                if entry.kind == _HASH:
                    if isinstance(predicate, Equals):
                        hash_items.setdefault(predicate.value, []).append(entry.entry_id)
                    else:
                        for value in predicate.values:
                            hash_items.setdefault(value, []).append(entry.entry_id)
                elif entry.kind == _RANGE:
                    interval_items.append((predicate.interval, entry.entry_id))
            state.hash_bucket = HashBucket(hash_items) if hash_items else None
            state.hash_table = state.hash_bucket.table if hash_items else None
            state.interval_bucket = IntervalBucket(interval_items) if interval_items else None
            state.range_entry_count = len(interval_items)
        self._recompute_plan()

    def _set_required(self, dense: int, constrained: int) -> None:
        self._required[dense] = constrained
        if constrained == 0:
            self._always_match_ids.append(dense)

    def _create_entry(self, state: _AttributeState, predicate: Predicate) -> _Entry:
        entry = _Entry(state.next_entry_id, predicate, _classify(predicate))
        state.next_entry_id += 1
        state.entries[predicate] = entry
        state.entry_by_id[entry.entry_id] = entry
        if entry.kind == _HASH:
            bucket = state.hash_bucket
            if bucket is None:
                bucket = state.hash_bucket = HashBucket({})
                state.hash_table = bucket.table
            if isinstance(predicate, Equals):
                bucket.add_entry(predicate.value, entry.entry_id)
            else:
                for value in predicate.values:
                    bucket.add_entry(value, entry.entry_id)
        elif entry.kind == _RANGE:
            bucket = state.interval_bucket
            if bucket is None:
                bucket = state.interval_bucket = IntervalBucket([])
            bucket.add(predicate.interval, entry.entry_id)
            state.range_entry_count += 1
        else:
            state.scan_entries.append(entry)
        state.refresh_view()
        return entry

    def _drop_entry(self, state: _AttributeState, predicate: Predicate, entry: _Entry) -> None:
        del state.entries[predicate]
        del state.entry_by_id[entry.entry_id]
        if entry.kind == _HASH:
            bucket = state.hash_bucket
            if isinstance(predicate, Equals):
                bucket.discard_entry(predicate.value, entry.entry_id)
            else:
                for value in predicate.values:
                    bucket.discard_entry(value, entry.entry_id)
            if len(bucket) == 0:
                state.hash_bucket = None
                state.hash_table = None
        elif entry.kind == _RANGE:
            state.interval_bucket.remove(predicate.interval, entry.entry_id)
            state.range_entry_count -= 1
            if state.range_entry_count == 0:
                # Dropping the empty bucket sheds its stale boundaries.
                state.interval_bucket = None
        else:
            state.scan_entries.remove(entry)
        state.refresh_view()

    def _insert_profile(self, profile: Profile) -> None:
        """Apply the postings delta of one added profile."""
        dense = self._allocate_id(profile.profile_id)
        constrained = 0
        new_attributes: list[str] = []
        for attribute, predicate in profile.predicates.items():
            if predicate.is_dont_care:
                continue
            constrained += 1
            state = self._states.get(attribute)
            if state is None:
                state = self._states[attribute] = _AttributeState()
            if attribute not in self._probed:
                # Probing the new attribute is required for correctness
                # immediately; its *position* is refined at the next replan.
                self._probed.add(attribute)
                self._probe_order = self._probe_order + (attribute,)
                self._probe_states = self._probe_states + ((attribute, state),)
                new_attributes.append(attribute)
            entry = state.entries.get(predicate)
            if entry is None:
                entry = self._create_entry(state, predicate)
            entry.postings.append(dense)
            state.constraining += 1
            state.posting_cache = {}
            state.np_posting_cache = {}
        self._set_required(dense, constrained)
        schema = self.profiles.schema
        for attribute in new_attributes:
            state = self._states[attribute]
            plan = self._planner.plan_attribute(
                attribute,
                schema.domain(attribute),
                hash_bucket=state.hash_bucket,
                interval_bucket=state.interval_bucket,
                scan_entry_count=len(state.scan_entries),
            )
            self._adopt_attribute_plan(state, plan)
        self._replan_pending = True

    @staticmethod
    def _adopt_attribute_plan(state: _AttributeState, plan: AttributePlan) -> None:
        """Install one attribute's strategy verdicts and recompile its view."""
        state.use_index = plan.use_index
        state.use_hash = bool(plan.use_hash)
        state.use_interval = bool(plan.use_interval)
        state.refresh_view()

    def add_profile(self, profile: Profile) -> None:
        """Register an additional profile via postings deltas.

        Cost is proportional to the profile's own predicates (plus slab
        splicing for any new range endpoints), never to the total predicate
        population; strategy recosting is deferred (see the module doc).
        """
        self.profiles.add(profile)
        self._insert_profile(profile)
        self._refresh_reject_flags()

    def add_profiles(self, profiles: Iterable[Profile]) -> None:
        """Register a batch of profiles.

        Small batches (churn) apply per-profile postings deltas; a batch
        comparable in size to the live population falls back to one full
        :meth:`_rebuild`, whose O(k log k) slab sweep beats k incremental
        endpoint splices when the ranges overlap heavily (bulk loads of
        overlapping ranges otherwise degrade to per-slab cover rebuilds).
        """
        batch = list(profiles)
        if len(batch) * 4 >= len(self.profiles) + len(batch):
            try:
                for profile in batch:
                    self.profiles.add(profile)
            finally:
                # Rebuild even on a mid-batch failure (e.g. a duplicate id)
                # so the index always describes the profile set exactly.
                self._rebuild()
            return
        try:
            for profile in batch:
                self.profiles.add(profile)
                self._insert_profile(profile)
        finally:
            # Refresh even on a mid-batch failure: the successfully
            # inserted prefix must not be shadowed by stale reject flags.
            self._refresh_reject_flags()

    def _refresh_reject_flags(self) -> None:
        """Re-derive every attribute's early-reject flag.

        O(#attributes) — the live-profile count enters every flag, so any
        churn op refreshes them all.
        """
        live = len(self._id_of)
        if live:
            for state in self._states.values():
                state.reject_fast = state.constraining == live
        else:
            for state in self._states.values():
                state.reject_fast = False

    def remove_profile(self, profile_id: str) -> None:
        """Unregister a profile via postings deltas.

        Raises :class:`~repro.core.errors.MatchingError` for an unknown
        profile id (the cross-matcher contract).
        """
        dense = self._id_of.get(profile_id)
        if dense is None:
            raise MatchingError(f"unknown profile id {profile_id!r}")
        profile = self.profiles.remove(profile_id)
        for attribute, predicate in profile.predicates.items():
            if predicate.is_dont_care:
                continue
            state = self._states[attribute]
            entry = state.entries[predicate]
            entry.postings.remove(dense)
            if not entry.postings:
                self._drop_entry(state, predicate, entry)
            state.constraining -= 1
            state.posting_cache = {}
            state.np_posting_cache = {}
        del self._id_of[profile_id]
        self._pid_of[dense] = None
        if self._required[dense] == 0:
            self._always_match_ids.remove(dense)
        self._required[dense] = 0
        self._free_ids.append(dense)
        self._refresh_reject_flags()
        self._replan_pending = True

    # -- planning introspection -------------------------------------------------
    def _recompute_plan(self) -> None:
        """Recost every attribute and adopt fresh strategy decisions.

        This is the deferred half of maintenance: churn only marks the plan
        stale, and the first subsequent :attr:`plan` / cost query lands
        here.  Attributes whose entries all churned away are pruned.
        """
        planner = self._planner
        schema = self.profiles.schema
        plans: dict[str, AttributePlan] = {}
        for attribute, state in list(self._states.items()):
            if not state.entries:
                del self._states[attribute]
                continue
            plan = planner.plan_attribute(
                attribute,
                schema.domain(attribute),
                hash_bucket=state.hash_bucket,
                interval_bucket=state.interval_bucket,
                scan_entry_count=len(state.scan_entries),
            )
            plans[attribute] = plan
            self._adopt_attribute_plan(state, plan)
        states = self._states
        self._probe_order = tuple(
            name for name in planner.probe_order(self.profiles) if name in states
        )
        self._probed = set(self._probe_order)
        #: Precompiled (attribute, state) pairs — the hot loop iterates
        #: these so it never chases the states dict per event.
        self._probe_states = tuple((name, states[name]) for name in self._probe_order)
        self._plan = IndexPlan(attributes=plans, probe_order=self._probe_order)
        self._refresh_reject_flags()
        self._replan_pending = False

    @property
    def plan(self) -> IndexPlan:
        """Return the planner's per-attribute decisions (recosted if stale)."""
        if self._replan_pending:
            self._recompute_plan()
        return self._plan

    @property
    def replan_pending(self) -> bool:
        """Return ``True`` while maintenance deltas await a lazy recost."""
        return self._replan_pending

    @property
    def planner(self) -> IndexPlanner:
        return self._planner

    def replan(self, event_distributions: Mapping[str, Distribution]) -> None:
        """Rebuild the indexes with distribution-aware planning.

        The full rebuild also compacts the dense-id space and any slab
        boundaries left stale by incremental removals.
        """
        self._planner = IndexPlanner(
            event_distributions,
            attribute_measure=self._planner.attribute_measure,
            hybrid=self._planner.hybrid,
        )
        self._rebuild()

    def estimated_cost(
        self, event_distributions: Mapping[str, Distribution] | None = None
    ) -> float:
        """Return the expected comparisons/event of the *current* plan.

        With ``event_distributions`` the current strategy choices are
        re-costed under the given distributions (used by the adaptive
        engine to judge whether replanning would pay off); without, the
        plan's own estimate is returned.  Costing always goes through
        :meth:`IndexPlanner.plan_attribute`, so both sides of a replan
        comparison use one cost model.
        """
        plan = self.plan
        if event_distributions is None:
            return plan.estimated_operations_per_event
        total = 0.0
        for attribute, recosted in self.recost_plans(event_distributions).items():
            current = plan.plan_for(attribute) or recosted
            total += (
                recosted.hash_index_cost if current.use_hash else recosted.hash_scan_cost
            )
            total += (
                recosted.interval_index_cost
                if current.use_interval
                else recosted.interval_scan_cost
            )
            total += recosted.residual_scan_cost
        return total

    def recost_plans(
        self, event_distributions: Mapping[str, Distribution]
    ) -> dict[str, AttributePlan]:
        """Re-cost the existing buckets under new distributions.

        Returns what a fresh plan over the *current* bucket contents would
        decide per attribute — without rebuilding any index structure, so
        the adaptive engine can estimate a replan's payoff cheaply and only
        build the replanned matcher when it actually applies.
        """
        planner = IndexPlanner(
            event_distributions,
            attribute_measure=self._planner.attribute_measure,
            hybrid=self._planner.hybrid,
        )
        schema = self.profiles.schema
        return {
            attribute: planner.plan_attribute(
                attribute,
                schema.domain(attribute),
                hash_bucket=state.hash_bucket,
                interval_bucket=state.interval_bucket,
                scan_entry_count=len(state.scan_entries),
            )
            for attribute, state in self._states.items()
            if state.entries
        }

    # -- matching ---------------------------------------------------------------
    def match(self, event: Event) -> MatchResult:
        """Filter one event by counting satisfied entries per profile.

        The loop allocates nothing per event: hits are counted into the
        preallocated dense counter and reset by walking the touched list.
        """
        counts = self._counts
        touched = self._touched
        if touched:
            # A previous match aborted mid-way (a predicate comparison
            # raised): heal the shared scratch state before counting.
            for dense in touched:
                counts[dense] = 0
            del touched[:]
        operations = 0
        values = event.values
        for attribute, state in self._probe_states:
            try:
                value = values[attribute]
            except KeyError:
                # Partial event: the attribute is simply unconstrainable.
                continue
            hits = 0
            hash_table = state.view_hash
            if hash_table is not None:
                operations += 1
                entry_ids = hash_table.get(value)
                if entry_ids:
                    posting = state.posting_cache.get(entry_ids)
                    if posting is None:
                        posting = state.flatten(entry_ids)
                    ids, comparisons = posting
                    operations += comparisons
                    hits = len(ids)
                    for dense in ids:
                        count = counts[dense]
                        if count == 0:
                            touched.append(dense)
                        counts[dense] = count + 1
            interval_bucket = state.view_interval
            if interval_bucket is not None:
                operations += interval_bucket.probe_cost
                cover = interval_bucket.lookup(value)
                if cover:
                    posting = state.posting_cache.get(cover)
                    if posting is None:
                        posting = state.flatten(cover)
                    ids, comparisons = posting
                    operations += comparisons
                    hits += len(ids)
                    for dense in ids:
                        count = counts[dense]
                        if count == 0:
                            touched.append(dense)
                        counts[dense] = count + 1
            # In index mode this scans the residual (NotEquals-style)
            # entries only; in scan mode view_scan is every entry of the
            # attribute (the planner judged a probe more expensive than
            # evaluating each predicate once).
            for entry in state.view_scan:
                operations += 1
                if entry.predicate.matches(value):
                    postings = entry.postings
                    hits += len(postings)
                    for dense in postings:
                        count = counts[dense]
                        if count == 0:
                            touched.append(dense)
                        counts[dense] = count + 1
            # Early rejection is sound only when *every* live profile
            # constrains the attribute (precomputed per state): a zero-hit
            # probe then proves that no profile can match.
            if hits == 0 and state.reject_fast:
                if touched:
                    for dense in touched:
                        counts[dense] = 0
                    del touched[:]
                return MatchResult(tuple(), operations, visited_levels=len(values))

        if touched:
            required = self._required
            matched = [dense for dense in touched if counts[dense] == required[dense]]
            for dense in touched:
                counts[dense] = 0
            del touched[:]
        else:
            matched = []
        if self._always_match_ids:
            matched.extend(self._always_match_ids)
        matched.sort(key=self._order_pos.__getitem__)
        pid_of = self._pid_of
        return MatchResult(
            tuple([pid_of[dense] for dense in matched]),
            operations,
            visited_levels=len(values),
        )

    def match_batch(self, events: Iterable[Event]) -> list[MatchResult]:
        """Filter a sequence of events, batch-size-aware.

        Batches of at least :attr:`min_columnar_batch` events (the
        constructor knob, defaulting to
        :data:`~repro.matching.index.kernel.MIN_COLUMNAR_BATCH`; the
        adaptive service threads
        :attr:`~repro.service.adaptive.AdaptationPolicy.min_columnar_batch`
        through here) run through the columnar batch kernel
        (:func:`~repro.matching.index.kernel.match_batch_columnar`):
        cache-aware scheduling, per-column probe dedup and — with numpy
        available — vectorized slab counting.  Smaller batches keep the
        per-event loop, whose fixed overhead is lower.  Both paths return
        exactly what sequential :meth:`match` calls would.
        """
        events = events if isinstance(events, list) else list(events)
        if len(events) >= self.min_columnar_batch:
            return kernel.match_batch_columnar(self, events, stats=self.kernel_stats)
        match = self.match
        return [match(event) for event in events]

    @property
    def min_columnar_batch(self) -> int:
        """Return the effective columnar-kernel cutover of this matcher."""
        if self._min_columnar_batch is not None:
            return self._min_columnar_batch
        return kernel.MIN_COLUMNAR_BATCH

    def match_all(self, events: Iterable[Event]) -> list[MatchResult]:
        """Alias of :meth:`match_batch` (tree-matcher compatible)."""
        return self.match_batch(events)
