"""The predicate-index matcher.

:class:`PredicateIndexMatcher` decomposes every profile predicate into the
per-(attribute, operator) buckets of :mod:`repro.matching.index.buckets`
and satisfies profiles by *counting over index hits*: each distinct
``(attribute, predicate)`` pair is one entry shared by all subscribing
profiles; per event and attribute a single probe returns the satisfied
entries, their subscribers' counters are incremented, and the profiles
whose counter reaches their constrained-attribute count match.

Compared with the :class:`~repro.matching.counting.CountingMatcher`
baseline this replaces the per-predicate scan of range predicates with one
bisect probe into precomputed slabs, lets the
:class:`~repro.matching.index.planner.IndexPlanner` fall back to a scan
where a probe would not pay off, collects matches from the touched
profiles only (never the full profile set), and probes attributes in
descending selectivity order so fully-constrained attributes without hits
reject the event early.

Operation accounting follows the suite's convention (one comparison per
probe step and per satisfied/scanned entry; counter bookkeeping is free —
see ``CountingMatcher`` and the baselines benchmark for the caveat this
implies).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.events import Event
from repro.core.intervals import Interval
from repro.core.predicates import Equals, OneOf, Predicate, RangePredicate
from repro.core.profiles import Profile, ProfileSet
from repro.distributions.base import Distribution
from repro.matching.index.buckets import HashBucket, IntervalBucket
from repro.matching.index.planner import AttributePlan, IndexPlan, IndexPlanner
from repro.matching.interfaces import MatchResult

__all__ = ["PredicateIndexMatcher"]


class _AttributeIndex:
    """Compiled per-attribute lookup state.

    ``hash_postings`` / ``slab postings`` flatten each bucket region into a
    ``(profile_ids, comparisons)`` pair so the hot loop touches no entry
    objects: ``profile_ids`` concatenates the subscribers of every entry in
    the region and ``comparisons`` is the number of entries (the operation
    cost charged for the hits).
    """

    __slots__ = ("hash_table", "interval_bucket", "slab_postings", "scan", "probe_cost")

    def __init__(
        self,
        hash_table: dict[object, tuple[tuple[str, ...], int]] | None,
        interval_bucket: IntervalBucket | None,
        slab_postings: dict[tuple[int, ...], tuple[tuple[str, ...], int]],
        scan: tuple[tuple[Predicate, tuple[str, ...]], ...],
        probe_cost: int,
    ) -> None:
        self.hash_table = hash_table
        self.interval_bucket = interval_bucket
        self.slab_postings = slab_postings
        self.scan = scan
        self.probe_cost = probe_cost


class PredicateIndexMatcher:
    """Counting matcher over per-attribute predicate indexes."""

    def __init__(
        self,
        profiles: ProfileSet,
        *,
        planner: IndexPlanner | None = None,
    ) -> None:
        self.profiles = profiles
        self._planner = planner if planner is not None else IndexPlanner()
        self._rebuild()

    # -- index maintenance ------------------------------------------------------
    def _rebuild(self) -> None:
        planner = self._planner
        schema = self.profiles.schema

        # 1. Collect distinct (attribute, predicate) entries and subscribers.
        entry_ids: dict[str, dict[Predicate, int]] = {}
        subscribers: dict[str, list[list[str]]] = {}
        required: dict[str, int] = {}
        always_match: list[str] = []
        order_index: dict[str, int] = {}
        for position, profile in enumerate(self.profiles):
            order_index[profile.profile_id] = position
            constrained = 0
            for attribute, predicate in profile.predicates.items():
                if predicate.is_dont_care:
                    continue
                constrained += 1
                per_attribute = entry_ids.setdefault(attribute, {})
                entry = per_attribute.get(predicate)
                if entry is None:
                    entry = len(per_attribute)
                    per_attribute[predicate] = entry
                    subscribers.setdefault(attribute, []).append([])
                subscribers[attribute][entry].append(profile.profile_id)
            required[profile.profile_id] = constrained
            if constrained == 0:
                always_match.append(profile.profile_id)
        self._required = required
        self._always_match = tuple(always_match)
        self._order_index = order_index

        # 2. Classify entries into bucket kinds per attribute.
        plans: dict[str, AttributePlan] = {}
        indexes: dict[str, _AttributeIndex] = {}
        buckets: dict[str, tuple[HashBucket | None, IntervalBucket | None, int]] = {}
        reject_fast: set[str] = set()
        profile_count = len(self.profiles)
        for attribute, predicates in entry_ids.items():
            attribute_subscribers = subscribers[attribute]
            hash_items: dict[object, list[int]] = {}
            interval_items: list[tuple[Interval, int]] = []
            scan_items: list[tuple[int, Predicate]] = []
            for predicate, entry in predicates.items():
                if isinstance(predicate, Equals):
                    hash_items.setdefault(predicate.value, []).append(entry)
                elif isinstance(predicate, OneOf):
                    for value in predicate.values:
                        hash_items.setdefault(value, []).append(entry)
                elif isinstance(predicate, RangePredicate):
                    interval_items.append((predicate.interval, entry))
                else:
                    scan_items.append((entry, predicate))

            hash_bucket = HashBucket(hash_items) if hash_items else None
            interval_bucket = IntervalBucket(interval_items) if interval_items else None
            buckets[attribute] = (hash_bucket, interval_bucket, len(scan_items))
            domain = schema.domain(attribute)
            plan = planner.plan_attribute(
                attribute,
                domain,
                hash_bucket=hash_bucket,
                interval_bucket=interval_bucket,
                scan_entry_count=len(scan_items),
            )
            plans[attribute] = plan

            def postings(entries: Iterable[int]) -> tuple[tuple[str, ...], int]:
                flat: list[str] = []
                count = 0
                for entry in entries:
                    count += 1
                    flat.extend(attribute_subscribers[entry])
                return tuple(flat), count

            if plan.use_index:
                hash_table = (
                    {value: postings(ids) for value, ids in hash_bucket.items()}
                    if hash_bucket is not None
                    else None
                )
                slab_postings: dict[tuple[int, ...], tuple[tuple[str, ...], int]] = {}
                if interval_bucket is not None:
                    for _, cover in interval_bucket.slabs():
                        if cover not in slab_postings:
                            slab_postings[cover] = postings(cover)
                scan = tuple(
                    (predicate, tuple(attribute_subscribers[entry]))
                    for entry, predicate in scan_items
                )
                probe_cost = interval_bucket.probe_cost if interval_bucket is not None else 0
                indexes[attribute] = _AttributeIndex(
                    hash_table, interval_bucket, slab_postings, scan, probe_cost
                )
            else:
                # The planner judged a probe more expensive than evaluating
                # every predicate: route everything through the scan bucket.
                scan_all: list[tuple[Predicate, tuple[str, ...]]] = []
                for predicate, entry in predicates.items():
                    scan_all.append((predicate, tuple(attribute_subscribers[entry])))
                indexes[attribute] = _AttributeIndex(None, None, {}, tuple(scan_all), 0)

            # Early rejection is sound only when *every* profile constrains
            # the attribute: a zero-hit probe then proves no profile matches.
            constraining = sum(len(ids) for ids in attribute_subscribers)
            if constraining >= profile_count and profile_count > 0:
                distinct_profiles = {pid for ids in attribute_subscribers for pid in ids}
                if len(distinct_profiles) == profile_count:
                    reject_fast.add(attribute)

        self._indexes = indexes
        self._attribute_buckets = buckets
        probe_order = [name for name in planner.probe_order(self.profiles) if name in indexes]
        self._probe_order = tuple(probe_order)
        self._reject_fast = frozenset(reject_fast)
        self._plan = IndexPlan(attributes=plans, probe_order=self._probe_order)

    def add_profile(self, profile: Profile) -> None:
        """Register an additional profile and rebuild the indexes."""
        self.profiles.add(profile)
        self._rebuild()

    def remove_profile(self, profile_id: str) -> None:
        """Unregister a profile and rebuild the indexes."""
        self.profiles.remove(profile_id)
        self._rebuild()

    # -- planning introspection -------------------------------------------------
    @property
    def plan(self) -> IndexPlan:
        """Return the planner's per-attribute decisions."""
        return self._plan

    @property
    def planner(self) -> IndexPlanner:
        return self._planner

    def replan(self, event_distributions: Mapping[str, Distribution]) -> None:
        """Rebuild the indexes with distribution-aware planning."""
        self._planner = IndexPlanner(
            event_distributions, attribute_measure=self._planner.attribute_measure
        )
        self._rebuild()

    def estimated_cost(
        self, event_distributions: Mapping[str, Distribution] | None = None
    ) -> float:
        """Return the expected comparisons/event of the *current* plan.

        With ``event_distributions`` the current strategy choices are
        re-costed under the given distributions (used by the adaptive
        engine to judge whether replanning would pay off); without, the
        plan's own estimate is returned.  Costing always goes through
        :meth:`IndexPlanner.plan_attribute`, so both sides of a replan
        comparison use one cost model.
        """
        if event_distributions is None:
            return self._plan.estimated_operations_per_event
        total = 0.0
        for attribute, recosted in self.recost_plans(event_distributions).items():
            current = self._plan.plan_for(attribute)
            use_index = current.use_index if current is not None else recosted.use_index
            total += recosted.index_cost if use_index else recosted.scan_cost
        return total

    def recost_plans(
        self, event_distributions: Mapping[str, Distribution]
    ) -> dict[str, AttributePlan]:
        """Re-cost the existing buckets under new distributions.

        Returns what a fresh plan over the *current* bucket contents would
        decide per attribute — without rebuilding any index structure, so
        the adaptive engine can estimate a replan's payoff cheaply and only
        build the replanned matcher when it actually applies.
        """
        planner = IndexPlanner(
            event_distributions, attribute_measure=self._planner.attribute_measure
        )
        schema = self.profiles.schema
        return {
            attribute: planner.plan_attribute(
                attribute,
                schema.domain(attribute),
                hash_bucket=hash_bucket,
                interval_bucket=interval_bucket,
                scan_entry_count=scan_count,
            )
            for attribute, (hash_bucket, interval_bucket, scan_count) in (
                self._attribute_buckets.items()
            )
        }

    # -- matching ---------------------------------------------------------------
    def match(self, event: Event) -> MatchResult:
        """Filter one event by counting satisfied entries per profile."""
        counts: dict[str, int] = {}
        operations = 0
        values = event.values
        reject_fast = self._reject_fast
        for attribute in self._probe_order:
            if attribute not in values:
                continue
            value = values[attribute]
            index = self._indexes[attribute]
            attribute_hits = 0
            hash_table = index.hash_table
            if hash_table is not None:
                operations += 1
                hit = hash_table.get(value)
                if hit is not None:
                    profile_ids, comparisons = hit
                    operations += comparisons
                    attribute_hits += len(profile_ids)
                    for profile_id in profile_ids:
                        counts[profile_id] = counts.get(profile_id, 0) + 1
            interval_bucket = index.interval_bucket
            if interval_bucket is not None:
                operations += index.probe_cost
                cover = interval_bucket.lookup(value)
                if cover:
                    profile_ids, comparisons = index.slab_postings[cover]
                    operations += comparisons
                    attribute_hits += len(profile_ids)
                    for profile_id in profile_ids:
                        counts[profile_id] = counts.get(profile_id, 0) + 1
            for predicate, profile_ids in index.scan:
                operations += 1
                if predicate.matches(value):
                    attribute_hits += len(profile_ids)
                    for profile_id in profile_ids:
                        counts[profile_id] = counts.get(profile_id, 0) + 1
            if attribute_hits == 0 and attribute in reject_fast:
                return MatchResult(tuple(), operations, visited_levels=len(values))

        required = self._required
        matched = [
            profile_id for profile_id, count in counts.items() if count == required[profile_id]
        ]
        if self._always_match:
            matched.extend(self._always_match)
        matched.sort(key=self._order_index.__getitem__)
        return MatchResult(tuple(matched), operations, visited_levels=len(values))

    def match_batch(self, events: Iterable[Event]) -> list[MatchResult]:
        """Filter a sequence of events with amortised dispatch."""
        match = self.match
        return [match(event) for event in events]

    def match_all(self, events: Iterable[Event]) -> list[MatchResult]:
        """Alias of :meth:`match_batch` (tree-matcher compatible)."""
        return self.match_batch(events)
