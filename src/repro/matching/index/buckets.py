"""Per-(attribute, operator) index buckets.

Each bucket maps one event value to the set of *predicate entries* it
satisfies, where an entry is one distinct ``(attribute, predicate)`` pair
shared by every profile that subscribes to it (the Le Subscribe /
predicate-counting factoring the :mod:`repro.matching.counting` baseline
gestures at, made into a first-class data structure):

* :class:`HashBucket` — ``Equals`` / ``OneOf`` entries.  One hash probe per
  event resolves *exactly* the equality entries registered on the observed
  value; a ``OneOf`` entry is registered once per accepted value.
* :class:`IntervalBucket` — range entries (``RangePredicate``).  The raw,
  possibly overlapping intervals are decomposed into *slabs*: every distinct
  endpoint becomes a point slab and every open gap between two consecutive
  endpoints becomes a gap slab.  Each slab stores the tuple of entries whose
  interval covers it, so a single :func:`bisect.bisect_left` probe returns
  every satisfied range entry with exact open/closed endpoint semantics and
  no per-entry comparison.
``NotEquals`` and any predicate kind without a natural index fall back to
a linear scan (one evaluation per distinct entry, like the counting
baseline's general index); the
:class:`~repro.matching.index.planner.IndexPlanner` also demotes hash and
range entries to that scan path when its cost model says a probe would not
pay off.  The scan path lives inside the matcher — it needs no bucket
structure.

Buckets deal in opaque integer entry ids; the matcher owns the mapping from
entry id to subscribing profiles.

Both bucket kinds support *incremental maintenance* so subscription churn
never rebuilds a bucket from scratch:

* :meth:`HashBucket.add_entry` / :meth:`HashBucket.discard_entry` edit one
  value's entry tuple;
* :meth:`IntervalBucket.add` splices any new endpoints into the sorted
  boundary list (a :func:`bisect.insort`-style edit that splits the
  enclosing gap slab into gap/point/gap) and then adds the entry to every
  covered slab; :meth:`IntervalBucket.remove` deletes the entry from its
  covered slabs but normally leaves the boundaries in place — a stale
  boundary is semantically invisible (its point cover equals the merged
  neighbouring gap covers).  The bucket tracks per-endpoint reference
  counts, and once more than :data:`STALE_COMPACTION_FRACTION` of the
  boundaries are dead, :meth:`IntervalBucket.remove` compacts in place —
  dropping the dead boundaries and merging their (provably equal) slab
  covers — so heavy churn cannot grow the slab structure without bound
  between full rebuilds (a planner-driven replan still compacts too).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.intervals import Interval

__all__ = ["HashBucket", "IntervalBucket", "STALE_COMPACTION_FRACTION"]

#: When removals leave more than this fraction of an interval bucket's
#: boundaries without any live referencing endpoint, :meth:`IntervalBucket.remove`
#: compacts the slab structure in place instead of waiting for a replan.
STALE_COMPACTION_FRACTION = 0.5


class HashBucket:
    """Hash index over equality-style entries of one attribute."""

    __slots__ = ("_table",)

    #: A hash probe costs one comparison, like the counting baseline's
    #: equality fast path.
    probe_cost = 1

    def __init__(self, table: Mapping[object, Iterable[int]]) -> None:
        self._table: dict[object, tuple[int, ...]] = {
            value: tuple(entry_ids) for value, entry_ids in table.items()
        }

    def lookup(self, value: object) -> tuple[int, ...]:
        """Return the entry ids satisfied by ``value``."""
        return self._table.get(value, ())

    @property
    def table(self) -> Mapping[object, tuple[int, ...]]:
        """Live value-to-entry-ids mapping (the matcher's hot loop probes
        this directly to skip a method call; treat it as read-only)."""
        return self._table

    def add_entry(self, value: object, entry_id: int) -> None:
        """Register ``entry_id`` under ``value`` (incremental maintenance)."""
        existing = self._table.get(value)
        self._table[value] = (entry_id,) if existing is None else existing + (entry_id,)

    def discard_entry(self, value: object, entry_id: int) -> None:
        """Unregister ``entry_id`` from ``value``; drops empty value rows."""
        existing = self._table.get(value)
        if existing is None or entry_id not in existing:
            return
        remaining = tuple(e for e in existing if e != entry_id)
        if remaining:
            self._table[value] = remaining
        else:
            del self._table[value]

    def __len__(self) -> int:
        return len(self._table)

    def items(self) -> Iterator[tuple[object, tuple[int, ...]]]:
        """Iterate over ``(value, entry_ids)`` pairs (for cost estimation)."""
        return iter(self._table.items())


class IntervalBucket:
    """Sorted slab index over the range entries of one attribute.

    The constructor decomposes the input intervals into point slabs (one per
    distinct endpoint) and gap slabs (the open interval between consecutive
    endpoints).  Duplicate boundaries collapse into a single point slab, and
    open/closed endpoints are honoured exactly: an entry's interval covers
    its endpoint's point slab only when that side is closed.
    """

    __slots__ = (
        "_boundaries",
        "_point_cover",
        "_gap_cover",
        "_endpoint_refs",
        "_stale_boundaries",
        "probe_cost",
    )

    def __init__(self, items: Sequence[tuple[Interval, int]]) -> None:
        boundaries = sorted({b for interval, _ in items for b in (interval.low, interval.high)})
        self._boundaries = boundaries
        #: Live endpoint reference counts per boundary value; a boundary
        #: whose count drops to zero is *stale* (see ``remove``).
        refs: dict[float, int] = {}
        for interval, _ in items:
            refs[interval.low] = refs.get(interval.low, 0) + 1
            refs[interval.high] = refs.get(interval.high, 0) + 1
        self._endpoint_refs = refs
        self._stale_boundaries = 0
        # One sweep over the slab sequence gap_0, point_0, gap_1, ...,
        # point_{n-1}, gap_n (slab position 2j for gap j, 2i+1 for point i)
        # builds every cover in O(k log k): each interval covers a single
        # contiguous slab range determined by its endpoints' openness, so a
        # start/stop event diff plus an insertion-ordered active set gives
        # the exact cover without any per-slab containment probing.
        boundary_index = {value: index for index, value in enumerate(boundaries)}
        slab_count = 2 * len(boundaries) + 1
        starts: list[list[int]] = [[] for _ in range(slab_count + 1)]
        stops: list[list[int]] = [[] for _ in range(slab_count + 1)]
        for interval, entry_id in items:
            low_index = boundary_index[interval.low]
            high_index = boundary_index[interval.high]
            first = 2 * low_index + 1 if interval.low_closed else 2 * low_index + 2
            last = 2 * high_index + 1 if interval.high_closed else 2 * high_index
            starts[first].append(entry_id)
            stops[last + 1].append(entry_id)
        active: dict[int, None] = {}
        covers: list[tuple[int, ...]] = []
        for position in range(slab_count):
            for entry_id in stops[position]:
                del active[entry_id]
            for entry_id in starts[position]:
                active[entry_id] = None
            covers.append(tuple(sorted(active)))
        self._gap_cover = covers[0::2]
        self._point_cover = covers[1::2]
        #: Comparisons charged per bisect probe: the depth of the binary
        #: search over the boundary list.
        self.probe_cost = max(1, len(boundaries).bit_length())

    def lookup(self, value: object) -> tuple[int, ...]:
        """Return the entry ids whose interval contains ``value``."""
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return ()
        boundaries = self._boundaries
        position = bisect_left(boundaries, value)
        if position < len(boundaries) and boundaries[position] == value:
            return self._point_cover[position]
        return self._gap_cover[position]

    # -- incremental maintenance ----------------------------------------------
    def _ensure_boundary(self, value: float) -> bool:
        """Splice ``value`` into the boundary list if it is not one yet.

        Inserting a boundary splits its enclosing gap slab into
        gap/point/gap.  The new point slab and both gap halves inherit the
        old gap's cover: the value was strictly inside the open gap, so
        exactly the intervals covering the gap cover it.  Returns whether
        the boundary was freshly inserted.
        """
        boundaries = self._boundaries
        position = bisect_left(boundaries, value)
        if position < len(boundaries) and boundaries[position] == value:
            return False
        boundaries.insert(position, value)
        split_cover = self._gap_cover[position]
        self._point_cover.insert(position, split_cover)
        self._gap_cover.insert(position + 1, split_cover)
        self.probe_cost = max(1, len(boundaries).bit_length())
        return True

    def _register_endpoint(self, value: float) -> None:
        """Ensure ``value`` is a boundary and count one live endpoint on it.

        Bumping a pre-existing boundary whose reference count had dropped
        to zero revives a stale boundary.
        """
        inserted = self._ensure_boundary(value)
        refs = self._endpoint_refs
        count = refs.get(value, 0)
        refs[value] = count + 1
        if not inserted and count == 0:
            self._stale_boundaries -= 1

    def _slab_span(self, interval: Interval) -> tuple[int, int]:
        """Return the first/last covered slab positions of ``interval``.

        Positions follow the sweep numbering of the constructor: ``2j`` is
        gap ``j`` and ``2i + 1`` is point ``i``.  Both endpoints must
        already be boundaries.
        """
        boundaries = self._boundaries
        low_index = bisect_left(boundaries, interval.low)
        high_index = bisect_left(boundaries, interval.high)
        first = 2 * low_index + 1 if interval.low_closed else 2 * low_index + 2
        last = 2 * high_index + 1 if interval.high_closed else 2 * high_index
        return first, last

    def add(self, interval: Interval, entry_id: int) -> None:
        """Add one range entry in place (incremental maintenance)."""
        self._register_endpoint(interval.low)
        self._register_endpoint(interval.high)
        first, last = self._slab_span(interval)
        point_cover, gap_cover = self._point_cover, self._gap_cover
        for position in range(first, last + 1):
            index, is_point = divmod(position, 2)
            cover = point_cover[index] if is_point else gap_cover[index]
            updated = tuple(sorted(cover + (entry_id,)))
            if is_point:
                point_cover[index] = updated
            else:
                gap_cover[index] = updated

    def remove(self, interval: Interval, entry_id: int) -> None:
        """Remove one range entry from its covered slabs.

        The entry's endpoints usually stay in the boundary list (a stale
        boundary is semantically invisible); once more than
        :data:`STALE_COMPACTION_FRACTION` of the boundaries are stale the
        slab structure is compacted in place, so heavy churn keeps the
        probe depth and slab count proportional to the *live* entries.
        """
        first, last = self._slab_span(interval)
        point_cover, gap_cover = self._point_cover, self._gap_cover
        for position in range(first, last + 1):
            index, is_point = divmod(position, 2)
            cover = point_cover[index] if is_point else gap_cover[index]
            updated = tuple(e for e in cover if e != entry_id)
            if is_point:
                point_cover[index] = updated
            else:
                gap_cover[index] = updated
        refs = self._endpoint_refs
        for value in (interval.low, interval.high):
            count = refs.get(value, 0) - 1
            if count > 0:
                refs[value] = count
            elif count == 0:
                refs[value] = 0
                self._stale_boundaries += 1
        if self._stale_boundaries > STALE_COMPACTION_FRACTION * len(self._boundaries):
            self._compact()

    def _compact(self) -> None:
        """Drop every stale boundary and merge its slabs in place.

        A stale boundary carries no live endpoint, so every live interval
        covering any of its three adjacent slabs (gap, point, gap) covers
        all of them — the covers are equal and collapse into one gap slab
        without changing any lookup result.
        """
        refs = self._endpoint_refs
        boundaries = self._boundaries
        point_cover, gap_cover = self._point_cover, self._gap_cover
        kept_boundaries: list[float] = []
        kept_points: list[tuple[int, ...]] = []
        kept_gaps: list[tuple[int, ...]] = [gap_cover[0]]
        for index, value in enumerate(boundaries):
            if refs.get(value, 0) > 0:
                kept_boundaries.append(value)
                kept_points.append(point_cover[index])
                kept_gaps.append(gap_cover[index + 1])
            else:
                # Stale: its point cover equals both neighbouring gap
                # covers, so skipping the boundary keeps the (identical)
                # gap already recorded.
                refs.pop(value, None)
        self._boundaries = kept_boundaries
        self._point_cover = kept_points
        self._gap_cover = kept_gaps
        self._stale_boundaries = 0
        self.probe_cost = max(1, len(kept_boundaries).bit_length())

    def __len__(self) -> int:
        return len(self._boundaries)

    def slabs(self) -> Iterator[tuple[Interval | None, tuple[int, ...]]]:
        """Iterate over ``(slab_interval, entry_ids)`` pairs.

        Point slabs yield degenerate intervals; interior gap slabs yield
        open intervals.  The two unbounded outer gaps yield ``None`` (their
        cover is empty by construction).
        """
        boundaries = self._boundaries
        for gap_index, cover in enumerate(self._gap_cover):
            if gap_index == 0 or gap_index == len(boundaries):
                yield None, cover
            else:
                low, high = boundaries[gap_index - 1], boundaries[gap_index]
                if low < high:
                    yield Interval(low, high, False, False), cover
                else:  # pragma: no cover - duplicate boundaries collapse
                    yield None, cover
        for value, cover in zip(boundaries, self._point_cover):
            if math.isinf(value):
                yield None, cover
            else:
                yield Interval.point(value), cover
