"""Per-(attribute, operator) index buckets.

Each bucket maps one event value to the set of *predicate entries* it
satisfies, where an entry is one distinct ``(attribute, predicate)`` pair
shared by every profile that subscribes to it (the Le Subscribe /
predicate-counting factoring the :mod:`repro.matching.counting` baseline
gestures at, made into a first-class data structure):

* :class:`HashBucket` — ``Equals`` / ``OneOf`` entries.  One hash probe per
  event resolves *exactly* the equality entries registered on the observed
  value; a ``OneOf`` entry is registered once per accepted value.
* :class:`IntervalBucket` — range entries (``RangePredicate``).  The raw,
  possibly overlapping intervals are decomposed into *slabs*: every distinct
  endpoint becomes a point slab and every open gap between two consecutive
  endpoints becomes a gap slab.  Each slab stores the tuple of entries whose
  interval covers it, so a single :func:`bisect.bisect_left` probe returns
  every satisfied range entry with exact open/closed endpoint semantics and
  no per-entry comparison.
``NotEquals`` and any predicate kind without a natural index fall back to
a linear scan (one evaluation per distinct entry, like the counting
baseline's general index); the
:class:`~repro.matching.index.planner.IndexPlanner` also demotes hash and
range entries to that scan path when its cost model says a probe would not
pay off.  The scan path lives inside the matcher as flattened
``(predicate, subscribers)`` tuples — it needs no bucket structure.

Buckets deal in opaque integer entry ids; the matcher owns the mapping from
entry id to subscribing profiles.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.intervals import Interval

__all__ = ["HashBucket", "IntervalBucket"]


class HashBucket:
    """Hash index over equality-style entries of one attribute."""

    __slots__ = ("_table",)

    #: A hash probe costs one comparison, like the counting baseline's
    #: equality fast path.
    probe_cost = 1

    def __init__(self, table: Mapping[object, Iterable[int]]) -> None:
        self._table: dict[object, tuple[int, ...]] = {
            value: tuple(entry_ids) for value, entry_ids in table.items()
        }

    def lookup(self, value: object) -> tuple[int, ...]:
        """Return the entry ids satisfied by ``value``."""
        return self._table.get(value, ())

    def __len__(self) -> int:
        return len(self._table)

    def items(self) -> Iterator[tuple[object, tuple[int, ...]]]:
        """Iterate over ``(value, entry_ids)`` pairs (for cost estimation)."""
        return iter(self._table.items())


class IntervalBucket:
    """Sorted slab index over the range entries of one attribute.

    The constructor decomposes the input intervals into point slabs (one per
    distinct endpoint) and gap slabs (the open interval between consecutive
    endpoints).  Duplicate boundaries collapse into a single point slab, and
    open/closed endpoints are honoured exactly: an entry's interval covers
    its endpoint's point slab only when that side is closed.
    """

    __slots__ = ("_boundaries", "_point_cover", "_gap_cover", "probe_cost")

    def __init__(self, items: Sequence[tuple[Interval, int]]) -> None:
        boundaries = sorted({b for interval, _ in items for b in (interval.low, interval.high)})
        self._boundaries = boundaries
        # One sweep over the slab sequence gap_0, point_0, gap_1, ...,
        # point_{n-1}, gap_n (slab position 2j for gap j, 2i+1 for point i)
        # builds every cover in O(k log k): each interval covers a single
        # contiguous slab range determined by its endpoints' openness, so a
        # start/stop event diff plus an insertion-ordered active set gives
        # the exact cover without any per-slab containment probing.
        boundary_index = {value: index for index, value in enumerate(boundaries)}
        slab_count = 2 * len(boundaries) + 1
        starts: list[list[int]] = [[] for _ in range(slab_count + 1)]
        stops: list[list[int]] = [[] for _ in range(slab_count + 1)]
        for interval, entry_id in items:
            low_index = boundary_index[interval.low]
            high_index = boundary_index[interval.high]
            first = 2 * low_index + 1 if interval.low_closed else 2 * low_index + 2
            last = 2 * high_index + 1 if interval.high_closed else 2 * high_index
            starts[first].append(entry_id)
            stops[last + 1].append(entry_id)
        active: dict[int, None] = {}
        covers: list[tuple[int, ...]] = []
        for position in range(slab_count):
            for entry_id in stops[position]:
                del active[entry_id]
            for entry_id in starts[position]:
                active[entry_id] = None
            covers.append(tuple(sorted(active)))
        self._gap_cover = covers[0::2]
        self._point_cover = covers[1::2]
        #: Comparisons charged per bisect probe: the depth of the binary
        #: search over the boundary list.
        self.probe_cost = max(1, len(boundaries).bit_length())

    def lookup(self, value: object) -> tuple[int, ...]:
        """Return the entry ids whose interval contains ``value``."""
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return ()
        boundaries = self._boundaries
        position = bisect_left(boundaries, value)
        if position < len(boundaries) and boundaries[position] == value:
            return self._point_cover[position]
        return self._gap_cover[position]

    def __len__(self) -> int:
        return len(self._boundaries)

    def slabs(self) -> Iterator[tuple[Interval | None, tuple[int, ...]]]:
        """Iterate over ``(slab_interval, entry_ids)`` pairs.

        Point slabs yield degenerate intervals; interior gap slabs yield
        open intervals.  The two unbounded outer gaps yield ``None`` (their
        cover is empty by construction).
        """
        boundaries = self._boundaries
        for gap_index, cover in enumerate(self._gap_cover):
            if gap_index == 0 or gap_index == len(boundaries):
                yield None, cover
            else:
                low, high = boundaries[gap_index - 1], boundaries[gap_index]
                if low < high:
                    yield Interval(low, high, False, False), cover
                else:  # pragma: no cover - duplicate boundaries collapse
                    yield None, cover
        for value, cover in zip(boundaries, self._point_cover):
            if math.isinf(value):
                yield None, cover
            else:
                yield Interval.point(value), cover
