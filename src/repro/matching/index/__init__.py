"""Predicate-index matching engine.

This subsystem generalises the predicate-counting idea (Le Subscribe,
Fabret et al. — see :mod:`repro.matching.counting`) into a planned,
per-(attribute, operator) index:

Bucket layout
-------------
Every distinct ``(attribute, predicate)`` pair becomes one *entry* shared
by all subscribing profiles.  Per attribute the entries are split by
operator into:

* a **hash bucket** (``Equals``, ``OneOf``) — ``{event value -> entries}``;
  one dict probe per event returns exactly the satisfied equality entries,
* an **interval bucket** (``RangePredicate``) — the overlapping ranges are
  decomposed into sorted *slabs* (point slabs at each distinct endpoint,
  open gap slabs between them), each carrying the entries that cover it;
  one ``bisect`` probe over the slab boundaries returns every satisfied
  range entry with exact open/closed-bound semantics,
* a **scan fallback** (``NotEquals`` and anything without a natural index)
  — entry objects inside the matcher, evaluated one by one like the
  counting baseline's general index.

The :class:`IndexPlanner` compares, per attribute, the expected cost of a
probe (``probe + E[hits]`` under the event distribution ``P_e``, mirroring
the ``E(X) + R_0`` decomposition of the paper's Eq. 2) against the cost of
scanning all entries, and demotes an attribute's buckets to the scan path
when the probe would not pay off.  It also ranks attributes by rejection
power (Measures A1/A2 of :mod:`repro.selectivity`) so the matcher probes
the most selective attribute first and can stop as soon as a
fully-constrained attribute yields no hit.

:class:`PredicateIndexMatcher` then satisfies profiles by counting index
hits per profile — never by evaluating profiles one at a time — and offers
a batch API (:meth:`PredicateIndexMatcher.match_batch`) that amortises
per-event dispatch for the service layer and the benchmarks.

The matcher counts into a **dense-id core** (integer profile ids from an
allocator with a free list, preallocated counters reset via a touched
list) and maintains its buckets **incrementally**: ``add_profile`` /
``remove_profile`` apply postings deltas — splicing slab endpoints in
place, with in-place slab compaction once churn leaves most boundaries
stale — instead of rebuilding, with planner recosting deferred to the
next plan query.  See :mod:`repro.matching.index.matcher` for the layout.

Columnar batch execution
------------------------
Batches of at least :data:`~repro.matching.index.kernel.MIN_COLUMNAR_BATCH`
events entering :meth:`PredicateIndexMatcher.match_batch` run through the
**columnar kernel** (:mod:`repro.matching.index.kernel`) instead of the
per-event loop: the batch is scheduled (sorted) on the highest-rejection-
power attribute so equal probe keys form contiguous runs, every distinct
``(attribute, value)`` probe is resolved once per batch, and the deferred
hit covers are counted either through a vectorized numpy ``(event,
profile)`` count matrix (hit-heavy tiles) or the scratch counter
(hit-sparse tiles, and whenever numpy is absent — the dependency stays
optional).  Results are bit-identical to sequential :meth:`match` calls,
including the per-event operation accounting; only the *executed* work
shrinks (observable via :class:`~repro.matching.index.kernel.KernelStats`).
Below the cutover the per-event fast path is kept, since its fixed
overhead is lower for tiny batches.
"""

from repro.matching.index import kernel
from repro.matching.index.buckets import HashBucket, IntervalBucket
from repro.matching.index.kernel import KernelStats, match_batch_columnar
from repro.matching.index.matcher import PredicateIndexMatcher
from repro.matching.index.planner import AttributePlan, IndexPlan, IndexPlanner

# ``kernel.HAS_NUMPY`` / ``kernel.MIN_COLUMNAR_BATCH`` are deliberately NOT
# re-exported as package attributes: the hot paths read them off the kernel
# module at call time, so only patching them *there* has any effect — a
# package-level value copy would make ``monkeypatch.setattr`` a silent
# no-op.  Reach them via the ``kernel`` submodule.
__all__ = [
    "AttributePlan",
    "HashBucket",
    "IndexPlan",
    "IndexPlanner",
    "IntervalBucket",
    "KernelStats",
    "PredicateIndexMatcher",
    "kernel",
    "match_batch_columnar",
]
