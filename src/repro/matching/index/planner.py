"""Selectivity-aware index planning.

The :class:`IndexPlanner` decides, per attribute, whether the
:class:`~repro.matching.index.matcher.PredicateIndexMatcher` should answer
that attribute through its hash/interval buckets or fall back to a linear
predicate scan.  The decision compares two expected per-event costs in the
suite's common currency (comparison operations, see
:mod:`repro.matching.interfaces`):

* ``scan_cost`` — the counting baseline's strategy: evaluate each of the
  ``k`` distinct predicates on the attribute once per event, i.e. ``k``
  comparisons regardless of the event value.
* ``index_cost = probe_cost + E[hits]`` — one probe (hash lookup, or the
  bisect depth over the slab boundaries) plus the expected number of
  satisfied entries, which mirrors the ``R = E(X) + R_0`` decomposition of
  the paper's Eq. 2 as computed by
  :func:`repro.analysis.cost_model.attribute_response_time`: a position
  term that depends on where the event value falls, plus a constant probe
  overhead.

``E[hits]`` is taken under the attribute's event distribution ``P_e`` when
one is supplied — the same distributions the selectivity measures V1-V3 /
A1-A3 of :mod:`repro.selectivity` consume — and under a uniform assumption
otherwise.  The planner also ranks attributes by their estimated rejection
power (the probability that an event value satisfies *no* entry, weighted
like Measure A2's zero-subdomain probability via
:func:`repro.selectivity.attribute_measures.attribute_selectivities`), so
the matcher can probe highly selective attributes first and cut matching
short as soon as a fully-constrained attribute yields no hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.core.domains import Domain
from repro.core.errors import ReproError, SelectivityError
from repro.core.predicates import Equals, OneOf, RangePredicate
from repro.core.subranges import build_partitions
from repro.distributions.base import Distribution, project_onto_partition
from repro.selectivity.attribute_measures import AttributeMeasure, attribute_selectivities

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.core.profiles import ProfileSet
    from repro.matching.index.buckets import HashBucket, IntervalBucket

__all__ = ["AttributePlan", "IndexPlan", "IndexPlanner"]


@dataclass(frozen=True)
class AttributePlan:
    """The planner's verdict for one attribute.

    The verdict is *per structure*, not just per attribute: the hash side
    (``Equals``/``OneOf`` entries) and the interval side (``RangePredicate``
    entries, answered by the sorted slab decomposition) are costed and
    chosen independently.  A binary (non-hybrid) planner couples both
    flags to the aggregate ``use_index`` decision, which reproduces the
    historical all-or-nothing behaviour exactly.
    """

    attribute: str
    #: ``True`` when the aggregate indexed strategy beats a full scan —
    #: the historical binary verdict, still used by non-hybrid planners.
    use_index: bool
    #: Expected comparisons for the indexed strategy (probe + E[hits]).
    index_cost: float
    #: Expected comparisons for the scan strategy (distinct predicate count).
    scan_cost: float
    #: Number of distinct predicate entries on the attribute.
    entry_count: int
    #: Per-structure verdicts; ``None`` means "couple to use_index"
    #: (resolved in ``__post_init__`` so binary plans stay constructible).
    use_hash: bool | None = None
    use_interval: bool | None = None
    #: Component costs.  ``*_index_cost`` is probe + E[hits] for that
    #: structure alone; ``*_scan_cost`` is its distinct entry count.
    hash_index_cost: float = 0.0
    hash_scan_cost: float = 0.0
    interval_index_cost: float = 0.0
    interval_scan_cost: float = 0.0
    #: Entries that can only ever be scanned (NotEquals and friends).
    residual_scan_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.use_hash is None:
            object.__setattr__(self, "use_hash", self.use_index)
        if self.use_interval is None:
            object.__setattr__(self, "use_interval", self.use_index)
        components = (
            self.hash_index_cost,
            self.hash_scan_cost,
            self.interval_index_cost,
            self.interval_scan_cost,
            self.residual_scan_cost,
        )
        if not any(components) and (self.index_cost or self.scan_cost):
            # Back-compat: a plan built from aggregate costs alone treats
            # the whole attribute as one hash-side component, so the
            # component-wise chosen_cost reproduces the binary formula.
            object.__setattr__(self, "hash_index_cost", self.index_cost)
            object.__setattr__(self, "hash_scan_cost", self.scan_cost)

    @property
    def chosen_cost(self) -> float:
        """Return the expected cost of the chosen per-structure mix."""
        hash_part = self.hash_index_cost if self.use_hash else self.hash_scan_cost
        interval_part = (
            self.interval_index_cost if self.use_interval else self.interval_scan_cost
        )
        return hash_part + interval_part + self.residual_scan_cost

    @property
    def is_hybrid(self) -> bool:
        """True when the two structure verdicts disagree (a mixed plan)."""
        return self.use_hash != self.use_interval


@dataclass(frozen=True)
class IndexPlan:
    """A full per-attribute plan plus the derived probe order."""

    attributes: Mapping[str, AttributePlan]
    #: Attribute probe order, most selective (highest rejection power) first.
    probe_order: tuple[str, ...]

    @property
    def estimated_operations_per_event(self) -> float:
        """Return the planner's predicted comparisons per event."""
        return sum(plan.chosen_cost for plan in self.attributes.values())

    @property
    def schedule_attribute(self) -> str | None:
        """Return the highest-rejection-power attribute (or ``None``).

        This is the first probe-order entry — the attribute most likely to
        reject an event outright — and the sort key the columnar batch
        kernel (:mod:`repro.matching.index.kernel`) schedules a batch by
        so that events sharing a probe value hit the same posting slabs
        back-to-back.
        """
        return self.probe_order[0] if self.probe_order else None

    def plan_for(self, attribute: str) -> AttributePlan | None:
        return self.attributes.get(attribute)


class IndexPlanner:
    """Chooses per-attribute index structures from selectivity estimates."""

    #: Measures probe_order() can rank by; A3 is a whole-order (tree) measure
    #: with no per-attribute score and is rejected at construction.
    SUPPORTED_MEASURES = (
        AttributeMeasure.NATURAL,
        AttributeMeasure.A1_ZERO_FRACTION,
        AttributeMeasure.A2_ZERO_PROBABILITY,
    )

    def __init__(
        self,
        event_distributions: Mapping[str, Distribution] | None = None,
        *,
        attribute_measure: AttributeMeasure = AttributeMeasure.A2_ZERO_PROBABILITY,
        hybrid: bool = False,
    ) -> None:
        if attribute_measure not in self.SUPPORTED_MEASURES:
            raise SelectivityError(
                f"IndexPlanner supports measures {[m.value for m in self.SUPPORTED_MEASURES]}, "
                f"not {attribute_measure.value!r}"
            )
        self.event_distributions = dict(event_distributions) if event_distributions else {}
        self.attribute_measure = attribute_measure
        #: Hybrid planners choose hash-vs-scan and interval-vs-scan
        #: independently per attribute; binary planners couple both to the
        #: aggregate use_index verdict (the historical behaviour).
        self.hybrid = hybrid

    def _decide(
        self, *, use_index: bool, indexable: int, index_cost: float, scan_cost: float
    ) -> bool:
        """Per-structure verdict: independent when hybrid, coupled otherwise."""
        if not self.hybrid:
            return use_index
        return indexable > 0 and index_cost < scan_cost

    # -- probability estimation -------------------------------------------------
    def _value_probability(self, attribute: str, domain: Domain, value: object) -> float:
        distribution = self.event_distributions.get(attribute)
        if distribution is not None:
            return distribution.probability_of_value(value)
        size = domain.size
        return 1.0 / size if size not in (0.0, float("inf")) else 0.0

    def _interval_probability(self, attribute: str, domain: Domain, interval) -> float:
        clamped = domain.clamp(interval)
        if clamped is None:
            return 0.0
        distribution = self.event_distributions.get(attribute)
        if distribution is not None:
            return distribution.probability_of_interval(clamped)
        size = domain.size
        return domain.measure(clamped) / size if size > 0 else 0.0

    # -- per-attribute costing --------------------------------------------------
    def expected_hash_hits(self, attribute: str, domain: Domain, bucket: "HashBucket") -> float:
        """Return ``E[hits]`` of a hash bucket under ``P_e``."""
        return sum(
            self._value_probability(attribute, domain, value) * len(entry_ids)
            for value, entry_ids in bucket.items()
        )

    def expected_interval_hits(
        self, attribute: str, domain: Domain, bucket: "IntervalBucket"
    ) -> float:
        """Return ``E[hits]`` of an interval bucket under ``P_e``."""
        expected = 0.0
        for slab, entry_ids in bucket.slabs():
            if slab is None or not entry_ids:
                continue
            expected += self._interval_probability(attribute, domain, slab) * len(entry_ids)
        return expected

    def plan_attribute(
        self,
        attribute: str,
        domain: Domain,
        *,
        hash_bucket: "HashBucket | None",
        interval_bucket: "IntervalBucket | None",
        scan_entry_count: int = 0,
    ) -> AttributePlan:
        """Cost one attribute's strategies and pick the cheaper one.

        ``scan_entry_count`` counts the predicates that can only ever be
        scanned (``NotEquals`` and friends); they contribute to both sides
        and therefore never change the decision, but they make the reported
        costs comparable across attributes.
        """
        hash_entries = 0
        hash_index_cost = 0.0
        if hash_bucket is not None and len(hash_bucket) > 0:
            # Distinct entries, not per-value registrations: a OneOf entry
            # appears under every accepted value but a scan evaluates the
            # predicate once, so scan_cost must count it once.
            hash_entries = len({i for _, ids in hash_bucket.items() for i in ids})
            hash_index_cost = hash_bucket.probe_cost + self.expected_hash_hits(
                attribute, domain, hash_bucket
            )
        range_entries = 0
        interval_index_cost = 0.0
        if interval_bucket is not None and len(interval_bucket) > 0:
            range_entries = len({i for _, ids in interval_bucket.slabs() for i in ids})
            interval_index_cost = interval_bucket.probe_cost + self.expected_interval_hits(
                attribute, domain, interval_bucket
            )
        return self._assemble_plan(
            attribute,
            hash_entries=hash_entries,
            hash_index_cost=hash_index_cost,
            range_entries=range_entries,
            interval_index_cost=interval_index_cost,
            scan_entries=scan_entry_count,
        )

    def _assemble_plan(
        self,
        attribute: str,
        *,
        hash_entries: int,
        hash_index_cost: float,
        range_entries: int,
        interval_index_cost: float,
        scan_entries: int,
    ) -> AttributePlan:
        """Fold component costs into aggregate + per-structure verdicts."""
        indexable = hash_entries + range_entries
        scan_cost = float(indexable + scan_entries)
        index_cost = hash_index_cost + interval_index_cost + float(scan_entries)
        use_index = indexable > 0 and index_cost < scan_cost
        return AttributePlan(
            attribute=attribute,
            use_index=use_index,
            index_cost=index_cost,
            scan_cost=scan_cost,
            entry_count=indexable + scan_entries,
            use_hash=self._decide(
                use_index=use_index,
                indexable=hash_entries,
                index_cost=hash_index_cost,
                scan_cost=float(hash_entries),
            ),
            use_interval=self._decide(
                use_index=use_index,
                indexable=range_entries,
                index_cost=interval_index_cost,
                scan_cost=float(range_entries),
            ),
            hash_index_cost=hash_index_cost,
            hash_scan_cost=float(hash_entries),
            interval_index_cost=interval_index_cost,
            interval_scan_cost=float(range_entries),
            residual_scan_cost=float(scan_entries),
        )

    def plan_profiles(self, profiles: "ProfileSet") -> dict[str, AttributePlan]:
        """Cost every attribute of a profile set *without* building buckets.

        Produces the same numbers :meth:`plan_attribute` yields over built
        buckets: ``E[hits]`` is the sum over distinct entries of their
        satisfaction probability, which both the hash table (per-value
        registration counts) and the slab decomposition (per-slab covers)
        preserve exactly.  The adaptive ``auto`` engine uses this to
        estimate the index family's cost while running the tree family,
        without paying a full index build per re-optimisation.
        """
        schema = profiles.schema
        per_attribute: dict[str, dict] = {}
        for profile in profiles:
            for attribute, predicate in profile.predicates.items():
                if predicate.is_dont_care:
                    continue
                per_attribute.setdefault(attribute, {})[predicate] = None
        plans: dict[str, AttributePlan] = {}
        for attribute, predicates in per_attribute.items():
            domain = schema.domain(attribute)
            hash_entries = 0
            range_entries = 0
            scan_entries = 0
            hash_hits = 0.0
            interval_hits = 0.0
            boundaries: set[float] = set()
            for predicate in predicates:
                if isinstance(predicate, Equals):
                    hash_entries += 1
                    hash_hits += self._value_probability(attribute, domain, predicate.value)
                elif isinstance(predicate, OneOf):
                    hash_entries += 1
                    hash_hits += sum(
                        self._value_probability(attribute, domain, value)
                        for value in predicate.values
                    )
                elif isinstance(predicate, RangePredicate):
                    range_entries += 1
                    interval_hits += self._interval_probability(
                        attribute, domain, predicate.interval
                    )
                    boundaries.add(predicate.interval.low)
                    boundaries.add(predicate.interval.high)
                else:
                    scan_entries += 1
            hash_index_cost = (1.0 + hash_hits) if hash_entries else 0.0
            interval_index_cost = (
                max(1, len(boundaries).bit_length()) + interval_hits
                if range_entries
                else 0.0
            )
            plans[attribute] = self._assemble_plan(
                attribute,
                hash_entries=hash_entries,
                hash_index_cost=hash_index_cost,
                range_entries=range_entries,
                interval_index_cost=interval_index_cost,
                scan_entries=scan_entries,
            )
        return plans

    # -- attribute ordering -----------------------------------------------------
    def rejection_scores(self, profiles: "ProfileSet") -> dict[str, float]:
        """Return the per-attribute rejection power under the configured measure.

        Higher scores mean an event value is more likely to satisfy *no*
        entry of the attribute: Measure A2 (zero-subdomain size weighted
        by its event probability) when the event distributions are
        available, degrading to Measure A1 (relative zero-subdomain size)
        without them.  Returns ``{}`` for ``NATURAL`` (no ranking) and for
        workloads the partition builder cannot model — callers fall back
        to schema order either way.  Besides driving :meth:`probe_order`,
        the scores pick the batch-scheduling attribute of the columnar
        kernel (see :attr:`IndexPlan.schedule_attribute`).
        """
        measure = self.attribute_measure
        if measure is AttributeMeasure.NATURAL:
            return {}
        try:
            partitions = build_partitions(profiles)
            projected = None
            if measure is AttributeMeasure.A2_ZERO_PROBABILITY and self.event_distributions:
                candidate = {
                    name: project_onto_partition(self.event_distributions[name], partition)
                    for name, partition in partitions.items()
                    if name in self.event_distributions
                }
                if len(candidate) == len(partitions):
                    projected = candidate
            if projected is not None:
                return dict(attribute_selectivities(measure, partitions, projected))
            return dict(
                attribute_selectivities(AttributeMeasure.A1_ZERO_FRACTION, partitions)
            )
        except ReproError:
            # Selectivity scoring is an optimisation, not a correctness
            # requirement: workloads the partition builder cannot model
            # (e.g. exotic predicate mixes) fall back to schema order.
            return {}

    def probe_order(self, profiles: "ProfileSet") -> tuple[str, ...]:
        """Return the attribute probe order, most selective first.

        Ranks by :meth:`rejection_scores`; ``NATURAL``, unknown attributes
        and unmodellable workloads keep the schema order.  Ties keep the
        schema order.
        """
        names = list(profiles.schema.names)
        scores = self.rejection_scores(profiles)
        if not scores:
            return tuple(names)
        position = {name: index for index, name in enumerate(names)}
        return tuple(sorted(names, key=lambda n: (-scores.get(n, 0.0), position[n])))
