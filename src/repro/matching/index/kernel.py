"""Columnar batch-matching kernel for the predicate-index matcher.

:func:`match_batch_columnar` executes a whole batch of events
*column-by-column* instead of event-by-event.  The per-event loop of
:meth:`~repro.matching.index.matcher.PredicateIndexMatcher.match` pays the
full probe pipeline — bucket lookup, posting-slab flatten, one counter
bump per posting id — once per event; the columnar kernel restructures
that work around the observation that real batches carry massive value
redundancy (a 1500-event stock-ticker batch observes ~40 distinct
symbols):

1. **Cache-aware scheduling.**  Event indices are sorted (grouped) by the
   value of the *highest-rejection-power* attribute — the first entry of
   the planner's probe order, see
   :meth:`~repro.matching.index.planner.IndexPlanner.rejection_scores` —
   so equal probe keys become **contiguous runs**: the first (and most
   selective) column is processed run-by-run with one probe and one slice
   of accounting per run, and consecutive events touch the same hash
   rows, posting slabs and count-matrix rows back-to-back.  Input order
   is restored on output.
2. **Per-column probe dedup.**  For every planned attribute the kernel
   resolves each *distinct* probe value exactly once per batch (memoised
   across row tiles): one bucket probe, one posting-slab flatten, one
   operation/hit accounting, shared by every event carrying the value.
   Early rejection stays exact — when a fully-constraining attribute
   yields zero hits, the whole value group dies at once — and rejected
   events of a run share one immutable :class:`MatchResult`.
3. **Adaptive vectorized counting.**  Hit covers are collected per value
   group and the counting strategy is chosen from the *observed* workload
   of each row tile: hit-heavy tiles (with numpy importable) accumulate
   into a 2-D ``(event, profile)`` count matrix via one vectorized
   fancy-indexed add per value group — posting slabs are memoised as
   contiguous ``intp`` arrays alongside the tuple slabs — and matches
   fall out of one vectorized ``counts == required`` comparison over the
   rows that counted anything; hit-sparse tiles (or no numpy) walk each
   event's pre-resolved covers through the matcher's scratch counter,
   which beats the matrix's fixed costs when almost nothing counts.  The
   matrix is processed in scheduled-order row tiles so memory stays
   bounded on huge batches.

numpy is therefore **optional**: without it (or with ``HAS_NUMPY`` forced
off) the kernel keeps scheduling, probe dedup and scratch counting.  Both
paths return results identical to per-event :meth:`match` — same matched
ids, same order, same operation accounting (operations are *charged* per
event as if each event had probed alone; the dedup shrinks the work
actually *executed*, reported separately via :class:`KernelStats`).

:meth:`PredicateIndexMatcher.match_batch` routes batches of at least
:data:`MIN_COLUMNAR_BATCH` events here; smaller batches keep the
per-event fast path whose fixed overhead is lower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.matching.interfaces import MatchResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, annotations only
    from repro.core.events import Event
    from repro.matching.index.matcher import PredicateIndexMatcher

try:
    import numpy as _np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised via HAS_NUMPY monkeypatch
    _np = None
    HAS_NUMPY = False

__all__ = ["HAS_NUMPY", "MIN_COLUMNAR_BATCH", "KernelStats", "match_batch_columnar"]

#: Batches below this size keep the per-event fast path: the columnar
#: kernel's scheduling/grouping setup only amortises once a batch carries
#: enough value redundancy to dedupe.
MIN_COLUMNAR_BATCH = 16

#: Upper bound on ``events x profiles`` cells per count-matrix tile; keeps
#: the numpy path's memory bounded (and cache-resident) on huge batches.
_MAX_TILE_CELLS = 4_000_000

#: Matrix counting pays a fixed toll (matrix zeroing, one vectorized
#: compare over the counting rows) that only amortises on hit-heavy
#: tiles; below this many scalar counter bumps the scratch path wins.
_MIN_MATRIX_BUMPS = 2048

#: Sentinel for "event does not carry the attribute" (values may be None).
_MISSING = object()


@dataclass
class KernelStats:
    """Executed-work accounting of one columnar run (optional).

    ``charged_operations`` is what the per-event cost model bills — the
    sum of the returned ``MatchResult.operations``, identical to the
    per-event loop by construction.  ``executed_operations`` counts each
    distinct probe once (the work the kernel actually performs after
    dedup), so ``charged / executed`` is the deterministic batch-dedup
    factor the benchmarks gate on.
    """

    events: int = 0
    charged_operations: int = 0
    #: Comparison operations actually executed: each distinct
    #: (attribute, value) probe of the batch counted once, and the
    #: flatten of an interval-slab cover shared by several distinct
    #: values counted once per cover.
    executed_operations: int = 0
    #: Distinct probes resolved (memo misses) vs probes the per-event
    #: loop would have issued.
    distinct_probes: int = 0
    #: Scalar counter bumps deferred to the counting phase.
    counter_bumps: int = 0
    #: Row tiles that chose the vectorized count matrix.
    matrix_tiles: int = 0
    #: Row tiles that chose scratch-counter counting.
    scratch_tiles: int = 0

    @property
    def dedup_factor(self) -> float:
        """Return charged/executed operations (>= 1.0 means dedup won)."""
        if self.executed_operations <= 0:
            return 1.0
        return self.charged_operations / self.executed_operations

    def merge(self, other: "KernelStats") -> "KernelStats":
        """Fold another accounting into this one (in place) and return it.

        Used by the service layer to aggregate executed-work stats across
        matcher instances retired by adaptive replanning.
        """
        self.events += other.events
        self.charged_operations += other.charged_operations
        self.executed_operations += other.executed_operations
        self.distinct_probes += other.distinct_probes
        self.counter_bumps += other.counter_bumps
        self.matrix_tiles += other.matrix_tiles
        self.scratch_tiles += other.scratch_tiles
        return self


def _schedule(events: list["Event"], probe_states):
    """Schedule the batch on the highest-rejection-power attribute.

    Returns ``(order, runs)``: ``order`` lists the event indices grouped
    (and, when the values are mutually orderable, sorted) by the first
    probe attribute's value, attribute-less events last; ``runs`` lists
    ``(value, start, end)`` half-open slices of ``order`` per distinct
    value, with one trailing ``(_MISSING, ...)`` run for the
    attribute-less tail.  Grouping guarantees one probe per distinct key
    serves a whole contiguous run; sorting additionally makes neighbouring
    interval-bucket slabs adjacent for range-heavy columns.
    """
    n = len(events)
    if not probe_states:
        return list(range(n)), [(_MISSING, 0, n)]
    attribute = probe_states[0][0]
    groups: dict[object, list[int]] = {}
    missing: list[int] = []
    for index, event in enumerate(events):
        value = event.values.get(attribute, _MISSING)
        if value is _MISSING:
            missing.append(index)
        else:
            group = groups.get(value)
            if group is None:
                groups[value] = [index]
            else:
                group.append(index)
    try:
        keys = sorted(groups)
    except TypeError:
        # Heterogeneous value types: grouping (first-seen order) is enough.
        keys = list(groups)
    order: list[int] = []
    runs: list[tuple[object, int, int]] = []
    for key in keys:
        start = len(order)
        order.extend(groups[key])
        runs.append((key, start, len(order)))
    if missing:
        start = len(order)
        order.extend(missing)
        runs.append((_MISSING, start, len(order)))
    return order, runs


def _probe_value(state, value, seen_covers):
    """Resolve one distinct probe value against one attribute's buckets.

    Returns ``(operations, executed, hits, parts)``: ``operations`` is
    exactly the accounting the per-event loop would charge any single
    event carrying ``value``; ``executed`` is the work a fresh probe of
    the value actually performs — identical except that the comparisons
    of an interval-slab cover already flattened for an *earlier distinct
    value of this batch* (tracked in ``seen_covers``) are not re-counted,
    since the posting cache serves them without re-walking the slabs.
    ``parts`` is a list of ``(memo_key, posting_ids)`` pairs — the hash
    cover, the interval cover and each satisfied scan entry — whose ids
    are disjoint (a profile carries at most one predicate per attribute).
    """
    operations = 0
    executed = 0
    hits = 0
    parts = []
    hash_table = state.view_hash
    if hash_table is not None:
        operations += 1
        executed += 1
        entry_ids = hash_table.get(value)
        if entry_ids:
            posting = state.posting_cache.get(entry_ids)
            if posting is None:
                posting = state.flatten(entry_ids)
            ids, comparisons = posting
            operations += comparisons
            executed += comparisons
            hits += len(ids)
            parts.append((entry_ids, ids))
    interval_bucket = state.view_interval
    if interval_bucket is not None:
        operations += interval_bucket.probe_cost
        executed += interval_bucket.probe_cost
        cover = interval_bucket.lookup(value)
        if cover:
            posting = state.posting_cache.get(cover)
            if posting is None:
                posting = state.flatten(cover)
            ids, comparisons = posting
            operations += comparisons
            # Range-heavy columns map many distinct values onto few slab
            # covers; the flatten runs once per cover, so the executed
            # side charges it once per cover too.
            if cover not in seen_covers:
                seen_covers.add(cover)
                executed += comparisons
            hits += len(ids)
            parts.append((cover, ids))
    for entry in state.view_scan:
        operations += 1
        executed += 1
        if entry.predicate.matches(value):
            postings = entry.postings
            hits += len(postings)
            if postings:
                parts.append((entry.entry_id, postings))
    return operations, executed, hits, parts


def _resolve(memo, seen_covers, state, value, stats):
    """Memoised probe of one ``(attribute, value)`` pair.

    The memo entry is ``(operations, hits, payload)`` where ``payload``
    is a tuple of posting-id sequences of every satisfied entry; the
    matching numpy array is built lazily (see :func:`_combined_array`)
    only when a tile actually chooses matrix counting.
    """
    probe = memo.get(value)
    if probe is None:
        operations, executed, hits, parts = _probe_value(state, value, seen_covers)
        probe = memo[value] = (operations, hits, parts)
        if stats is not None:
            stats.distinct_probes += 1
            stats.executed_operations += executed
    return probe


def _combined_array(state, parts):
    """Memoise the combined posting slab of a probe as one numpy array.

    Single-part covers reuse the per-slab array cache directly (entry-id
    tuples for bucket covers, the bare entry id for scan entries — an
    ``int`` never collides with a ``tuple``); multi-part covers memoise
    their concatenation under a ``("+", key, ...)`` compound key, which a
    flat entry-id tuple can never equal.  Maintenance drops this cache
    together with ``posting_cache``.
    """
    cache = state.np_posting_cache
    if len(parts) == 1:
        key, ids = parts[0]
        array = cache.get(key)
        if array is None:
            array = cache[key] = _np.asarray(ids, dtype=_np.intp)
        return array
    key = ("+",) + tuple(key for key, _ in parts)
    array = cache.get(key)
    if array is None:
        array = cache[key] = _np.concatenate(
            [_np.asarray(ids, dtype=_np.intp) for _, ids in parts]
        )
    return array


def match_batch_columnar(
    matcher: "PredicateIndexMatcher",
    events: Iterable["Event"],
    *,
    stats: KernelStats | None = None,
) -> list[MatchResult]:
    """Filter a batch of events column-by-column (see the module doc).

    Semantically identical to mapping :meth:`PredicateIndexMatcher.match`
    over ``events`` — same matched ids in the same order, same per-event
    operation counts, same partial-event and early-rejection behaviour
    (rejected events of one value run share a single immutable result
    object).  Pass a :class:`KernelStats` to observe the executed-work
    accounting.
    """
    events = events if isinstance(events, list) else list(events)
    n = len(events)
    if n == 0:
        return []
    probe_states = matcher._probe_states
    order, runs = _schedule(events, probe_states)
    nids = len(matcher._pid_of)
    tile_rows = max(64, _MAX_TILE_CELLS // nids) if (HAS_NUMPY and nids) else n
    #: Per-column probe memo, shared across tiles: distinct values resolve
    #: (flatten + accounting) once per batch, not once per tile.
    memos: list[dict] = [{} for _ in probe_states]
    #: Per-column interval covers already flattened this batch: executed
    #: work counts each cover's comparisons once, however many distinct
    #: values resolve to it.
    cover_sets: list[set] = [set() for _ in probe_states]
    results: list[MatchResult | None] = [None] * n
    if stats is not None:
        stats.events += n
    run_cursor = 0

    for tile_start in range(0, n, tile_rows):
        tile_end = min(n, tile_start + tile_rows)
        tile = order[tile_start:tile_end]
        # Clip the schedule runs to this tile (runs and tiles both follow
        # the scheduled order, so a linear cursor suffices).
        tile_runs = []
        while run_cursor < len(runs):
            value, start, end = runs[run_cursor]
            lo = max(start, tile_start) - tile_start
            hi = min(end, tile_end) - tile_start
            if lo < hi:
                tile_runs.append((value, lo, hi))
            if end > tile_end:
                break
            run_cursor += 1
        _match_tile(matcher, events, tile, tile_runs, memos, cover_sets, results, stats)
    return results


def _match_tile(matcher, events, tile, tile_runs, memos, cover_sets, results, stats):
    """Probe one scheduled row tile and emit its results.

    The probe phase is strategy-agnostic: it accumulates per-row charged
    operations, early rejections and *deferred* hit groups ``(rows,
    payload)``; the counting strategy (vectorized matrix vs scratch
    counter) is then chosen from the observed number of counter bumps.
    """
    t = len(tile)
    probe_states = matcher._probe_states
    values_of = [events[index].values for index in tile]
    ops = [0] * t
    dead = [False] * t
    #: Deferred counting work: (state, row range-or-list, payload parts).
    hit_groups: list[tuple[object, object, list]] = []
    pending_bumps = 0

    # -- column 1: contiguous scheduled runs ------------------------------
    if probe_states:
        first_memo = memos[0]
        first_covers = cover_sets[0]
        _, state = probe_states[0]
        reject_fast = state.reject_fast
        for value, lo, hi in tile_runs:
            if value is _MISSING:
                continue
            operations, hits, parts = _resolve(first_memo, first_covers, state, value, stats)
            if operations:
                for row in range(lo, hi):
                    ops[row] += operations
            if hits:
                hit_groups.append((state, range(lo, hi), parts))
                pending_bumps += hits * (hi - lo)
            elif reject_fast:
                for row in range(lo, hi):
                    dead[row] = True

    # -- columns 2+: group the still-alive rows per distinct value --------
    if len(probe_states) > 1:
        alive = [row for row in range(t) if not dead[row]]
        for (attribute, state), memo, seen_covers in zip(
            probe_states[1:], memos[1:], cover_sets[1:]
        ):
            if not alive:
                break
            groups: dict[object, list[int]] = {}
            for row in alive:
                value = values_of[row].get(attribute, _MISSING)
                if value is _MISSING:
                    continue
                group = groups.get(value)
                if group is None:
                    groups[value] = [row]
                else:
                    group.append(row)
            if not groups:
                continue
            died = False
            reject_fast = state.reject_fast
            for value, rows in groups.items():
                operations, hits, parts = _resolve(memo, seen_covers, state, value, stats)
                if operations:
                    for row in rows:
                        ops[row] += operations
                if hits:
                    hit_groups.append((state, rows, parts))
                    pending_bumps += hits * len(rows)
                elif reject_fast:
                    for row in rows:
                        dead[row] = True
                    died = True
            if died:
                alive = [row for row in alive if not dead[row]]

    # -- counting: vectorized matrix or per-row scratch walk --------------
    nids = len(matcher._pid_of)
    use_matrix = HAS_NUMPY and nids > 0 and pending_bumps >= _MIN_MATRIX_BUMPS
    if stats is not None:
        stats.counter_bumps += pending_bumps
        stats.charged_operations += sum(ops)
        if use_matrix:
            stats.matrix_tiles += 1
        else:
            stats.scratch_tiles += 1
    if use_matrix:
        matched_by_row = _count_matrix(matcher, t, nids, hit_groups, dead)
        get_matched = matched_by_row.get
    else:
        covers: list[list] = [[] for _ in range(t)]
        for _, rows, parts in hit_groups:
            for row in rows:
                covers[row].append(parts)

        def get_matched(row):
            if not covers[row]:
                return None
            return _count_covers(matcher, covers[row], matcher._required)

    # -- epilogue ----------------------------------------------------------
    always = matcher._always_match_ids
    order_pos = matcher._order_pos
    pid_of = matcher._pid_of
    cache: dict = {}
    for row in range(t):
        operations = ops[row]
        visited = len(values_of[row])
        matched = None if dead[row] else get_matched(row)
        if matched:
            if always:
                matched.extend(always)
            matched.sort(key=order_pos.__getitem__)
            results[tile[row]] = MatchResult(
                tuple([pid_of[dense] for dense in matched]),
                operations,
                visited_levels=visited,
            )
            continue
        # Empty and always-only results repeat massively across a batch
        # (every rejected event of a run carries identical numbers);
        # MatchResult is an immutable value object, so sharing one
        # instance is observationally equivalent to the per-event path.
        key = (operations, visited, dead[row])
        result = cache.get(key)
        if result is None:
            if always and not dead[row]:
                ordered = sorted(always, key=order_pos.__getitem__)
                pids = tuple([pid_of[dense] for dense in ordered])
            else:
                pids = ()
            result = cache[key] = MatchResult(pids, operations, visited_levels=visited)
        results[tile[row]] = result


def _count_matrix(matcher, t, nids, hit_groups, dead):
    """Vectorized counting: accumulate hit groups into a 2-D matrix.

    One fancy-indexed add per value group (contiguous row slices for the
    scheduled first column), then a single vectorized threshold compare
    over the rows that counted anything.  The posting ids of one group
    are disjoint (a profile carries one predicate per attribute) and
    groups of one column are row-disjoint, so plain ``+= 1`` adds are
    exact.  Returns ``{row: [matched dense ids]}``.
    """
    counts = _np.zeros((t, nids), dtype=_np.int32)
    for state, rows, parts in hit_groups:
        payload = _combined_array(state, parts)
        if type(rows) is range:
            if len(rows) == 1:
                counts[rows.start, payload] += 1
            else:
                counts[rows.start : rows.stop, payload] += 1
        elif len(rows) == 1:
            counts[rows[0], payload] += 1
        else:
            counts[_np.asarray(rows, dtype=_np.intp)[:, None], payload] += 1
    required_arr = _np.asarray(matcher._required, dtype=_np.int32)
    # Untouched rows hold zero everywhere and required > 0 filters them, so
    # one full vectorized compare needs no per-row bookkeeping; only rows
    # rejected *after* counting something must be masked out.
    matched_mask = (counts == required_arr) & (required_arr > 0)
    if any(dead):
        matched_mask[_np.asarray(dead, dtype=bool)] = False
    matched_by_row: dict[int, list[int]] = {}
    for row, dense in zip(*(index.tolist() for index in _np.nonzero(matched_mask))):
        matched_by_row.setdefault(row, []).append(dense)
    return matched_by_row


def _count_covers(matcher, row_covers, required) -> list[int]:
    """Count one event's pre-resolved covers via the matcher's scratch.

    Mirrors the tail of :meth:`PredicateIndexMatcher.match` — counts into
    the preallocated dense counter, resets via the touched list — but
    skips the probe work the column phase already deduped.
    """
    counts = matcher._counts
    touched = matcher._touched
    if touched:
        # A previous per-event match aborted mid-way; heal like match().
        for dense in touched:
            counts[dense] = 0
        del touched[:]
    for parts in row_covers:
        for _, ids in parts:
            for dense in ids:
                count = counts[dense]
                if count == 0:
                    touched.append(dense)
                counts[dense] = count + 1
    if not touched:
        return []
    matched = [dense for dense in touched if counts[dense] == required[dense]]
    for dense in touched:
        counts[dense] = 0
    del touched[:]
    return matched
