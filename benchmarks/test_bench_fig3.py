"""Figure 3 benchmark: the exemplary distribution library."""

from repro.experiments.figures.fig3 import FIG3_DISTRIBUTIONS, figure_3
from repro.core.domains import IntegerDomain
from repro.distributions.library import make_distribution


def test_fig3_distribution_table(benchmark, save_table):
    """Regenerate the Fig. 3 distribution sketch as a decile table."""
    table = benchmark(figure_3)
    save_table(table)
    assert len(table.rows) == len(FIG3_DISTRIBUTIONS)


def test_fig3_distribution_construction_speed(benchmark):
    """Time building every named distribution over a 100-value domain."""
    domain = IntegerDomain(0, 99)

    def build_all():
        return [make_distribution(name, domain) for name in FIG3_DISTRIBUTIONS]

    built = benchmark(build_all)
    assert len(built) == len(FIG3_DISTRIBUTIONS)
