"""Benchmark-suite configuration.

Each figure benchmark both *times* the reproduction (via pytest-benchmark)
and *persists* the regenerated table under ``benchmarks/output/`` so the
numbers quoted in EXPERIMENTS.md can be refreshed with a single
``pytest benchmarks/ --benchmark-only`` run.

``--bench-summary [PATH]`` additionally dumps a ``BENCH_summary.json`` of
the mean comparison operations per event for every matcher the baselines
benchmark exercises — a timing-free regression guard that CI uploads as an
artifact (wall-clock numbers are too flaky to gate on in CI; the operation
counts are deterministic).
"""

import json
import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")

_OPS_SUMMARY: dict[str, dict[str, float]] = {}
_CHURN_SUMMARY: dict[str, dict[str, float]] = {}
_BATCH_SUMMARY: dict[str, dict[str, float]] = {}
_DELIVERY_SUMMARY: dict[str, dict[str, float]] = {}
_SHARDED_SUMMARY: dict[str, dict[str, float]] = {}
_DURABILITY_SUMMARY: dict[str, dict[str, float]] = {}
_HYBRID_SUMMARY: dict[str, dict[str, float]] = {}
_ROUTING_SUMMARY: dict[str, dict[str, float]] = {}
_CORPUS_SUMMARY: dict[str, dict[str, float]] = {}


def pytest_addoption(parser):
    """Register ``--bench-summary`` (effective when pytest targets this
    directory; a plain repo-root run never parses the option)."""
    parser.addoption(
        "--bench-summary",
        action="store",
        nargs="?",
        const=os.path.join(OUTPUT_DIR, "BENCH_summary.json"),
        default=None,
        metavar="PATH",
        help="dump a JSON summary of mean comparison operations per event "
        "per matcher (default path: benchmarks/output/BENCH_summary.json)",
    )


@pytest.fixture
def record_ops():
    """Record one matcher's FilterStatistics for the summary dump."""

    def _record(matcher_name: str, statistics) -> None:
        _OPS_SUMMARY[matcher_name] = {
            "mean_operations_per_event": statistics.average_operations_per_event(),
            "mean_matches_per_event": statistics.average_matches_per_event(),
            "events": float(statistics.events),
        }

    return _record


@pytest.fixture
def record_churn():
    """Record one engine's churn-workload statistics for the summary dump.

    Like ``record_ops`` these are timing-free, deterministic numbers (the
    matching cost observed while subscriptions churn), so the regression
    gate can compare them across CI runs.
    """

    def _record(engine_name: str, statistics, churn_ops: int) -> None:
        _CHURN_SUMMARY[engine_name] = {
            "mean_operations_per_event": statistics.average_operations_per_event(),
            "mean_matches_per_event": statistics.average_matches_per_event(),
            "events": float(statistics.events),
            "churn_ops": float(churn_ops),
        }

    return _record


@pytest.fixture
def record_batch():
    """Record one batch-kernel scenario for the summary dump.

    Besides the deterministic charged metrics, callers may pass extra
    keys — e.g. the kernel's executed ops/event and ``dedup_factor``
    (deterministic, gateable) or ``wall_clock_seconds`` (timing runs
    only, gated by ``compare_to_baseline.py`` solely when both summaries
    carry it).
    """

    def _record(scenario_name: str, statistics, **extra: float) -> None:
        entry = {
            "mean_operations_per_event": statistics.average_operations_per_event(),
            "mean_matches_per_event": statistics.average_matches_per_event(),
            "events": float(statistics.events),
        }
        entry.update(extra)
        _BATCH_SUMMARY[scenario_name] = entry

    return _record


@pytest.fixture
def record_delivery():
    """Record one delivery-executor scenario for the summary dump.

    The deterministic charged metrics (ops/event, matches/event) are
    identical across executors — matching is upstream of delivery — so
    the regression gate doubles as an executor-equivalence check.
    Timing runs add ``wall_clock_seconds`` (gated loosely, local only)
    and an informational ``events_per_second``.
    """

    def _record(scenario_name: str, statistics, **extra: float) -> None:
        entry = {
            "mean_operations_per_event": statistics.average_operations_per_event(),
            "mean_matches_per_event": statistics.average_matches_per_event(),
            "events": float(statistics.events),
        }
        entry.update(extra)
        _DELIVERY_SUMMARY[scenario_name] = entry

    return _record


@pytest.fixture
def record_sharded():
    """Record one sharded-matcher scenario for the summary dump.

    The charged metrics are deterministic at every shard count (the
    per-shard ops are exact under fixed seeds and the fold is a plain
    sum), so the regression gate covers the partitioned engine the same
    way it covers the single-shard families.  Timing runs add
    ``wall_clock_seconds`` keys, gated loosely and only when both
    summaries carry them.
    """

    def _record(scenario_name: str, statistics, **extra: float) -> None:
        entry = {
            "mean_operations_per_event": statistics.average_operations_per_event(),
            "mean_matches_per_event": statistics.average_matches_per_event(),
            "events": float(statistics.events),
        }
        entry.update(extra)
        _SHARDED_SUMMARY[scenario_name] = entry

    return _record


@pytest.fixture
def record_durability():
    """Record one durability scenario for the summary dump.

    Journal accounting (records appended, subscriptions recovered) and
    post-replay matching cost are deterministic under fixed seeds, so
    the regression gate covers the durable boot path like any engine.
    Timing runs add ``wall_clock_seconds`` / per-op overhead keys, gated
    loosely and only when both summaries carry them.
    """

    def _record(scenario_name: str, statistics=None, **extra: float) -> None:
        entry: dict[str, float] = {}
        if statistics is not None:
            entry["mean_operations_per_event"] = (
                statistics.average_operations_per_event()
            )
            entry["mean_matches_per_event"] = (
                statistics.average_matches_per_event()
            )
            entry["events"] = float(statistics.events)
        entry.update(extra)
        _DURABILITY_SUMMARY[scenario_name] = entry

    return _record


@pytest.fixture
def record_hybrid():
    """Record one mixed-workload engine run for the summary dump.

    Per engine family the charged ops/event and matches/event are exact
    under the fixed workload seeds (the calibrated ``auto`` run included:
    arbitration reads deterministic op counters, never the clock), so the
    regression gate can hold the hybrid-plan win ratios stable.  Extra
    numeric keys carry the calibration trajectory; timing runs add
    ``wall_clock_seconds``, gated loosely and only when both summaries
    carry them.
    """

    def _record(engine_name: str, statistics, **extra: float) -> None:
        entry = {
            "mean_operations_per_event": statistics.average_operations_per_event(),
            "mean_matches_per_event": statistics.average_matches_per_event(),
            "events": float(statistics.events),
        }
        entry.update(extra)
        _HYBRID_SUMMARY[engine_name] = entry

    return _record


@pytest.fixture
def record_routing():
    """Record one broker-overlay scenario for the summary dump.

    Everything the routing benchmark measures is deterministic under
    fixed seeds: suppression ratios, hop counts, covering-table sizes and
    cover-check counters come from exact integer accounting, and
    ``mean_matches_per_event`` (delivered notifications per published
    event) doubles as the delivery-equivalence signal the gate refuses to
    let drift.  Timing runs may add ``wall_clock_seconds``, gated loosely
    and only when both summaries carry it.
    """

    def _record(scenario_name: str, **metrics: float) -> None:
        _ROUTING_SUMMARY[scenario_name] = dict(metrics)

    return _record


@pytest.fixture
def record_corpus():
    """Record one corpus profile x engine-family run for the summary dump.

    Keys are ``"<profile>:<family>"``.  The corpus runner's ops/event and
    matches/event are deterministic (pinned seeds, pinned shard counts,
    pinned adaptation knobs), so ``compare_to_baseline.py`` gates every
    scenario of the corpus individually — a regression names the
    scenario that moved.  Timing runs add ``wall_clock_seconds``, gated
    loosely and only when both summaries carry it.
    """

    def _record(record, **extra: float) -> None:
        entry = {
            "mean_operations_per_event": record.ops_per_event,
            "mean_matches_per_event": record.matches_per_event,
            "events": float(record.events),
            "churn_ops": float(record.churn_ops),
        }
        if record.wall_clock_seconds is not None:
            entry["wall_clock_seconds"] = record.wall_clock_seconds
        entry.update(extra)
        _CORPUS_SUMMARY[f"{record.profile}:{record.family}"] = entry

    return _record


@pytest.fixture
def profile_service():
    """Factory for profile-configured services: ``profile_service(scenario=...)``.

    Builds a :class:`repro.api.FilterService` via ``from_profile`` so
    benchmarks stop duplicating engine/delivery/shard setup; pass
    ``engine=`` (or any other constructor kwarg) to override the
    profile's hints.  Services are closed at teardown.
    """
    from repro.api import FilterService

    services = []

    def _make(*, scenario: str, **overrides):
        service = FilterService.from_profile(scenario, **overrides)
        services.append(service)
        return service

    yield _make
    for service in services:
        service.close()


def pytest_sessionfinish(session, exitstatus):
    """Write BENCH_summary.json when ``--bench-summary`` was given."""
    try:
        target = session.config.getoption("--bench-summary")
    except (ValueError, KeyError):
        return
    summaries = (
        _OPS_SUMMARY,
        _CHURN_SUMMARY,
        _BATCH_SUMMARY,
        _DELIVERY_SUMMARY,
        _SHARDED_SUMMARY,
        _DURABILITY_SUMMARY,
        _HYBRID_SUMMARY,
        _ROUTING_SUMMARY,
        _CORPUS_SUMMARY,
    )
    if not target or not any(summaries):
        return
    directory = os.path.dirname(target)
    if directory:
        os.makedirs(directory, exist_ok=True)
    payload = {
        "metric": "mean comparison operations per event",
        "scenario": "stock ticker (400 profiles, 1500 events)",
        "matchers": dict(sorted(_OPS_SUMMARY.items())),
        "churn": dict(sorted(_CHURN_SUMMARY.items())),
        "batch": dict(sorted(_BATCH_SUMMARY.items())),
        "delivery": dict(sorted(_DELIVERY_SUMMARY.items())),
        "sharded": dict(sorted(_SHARDED_SUMMARY.items())),
        "durability": dict(sorted(_DURABILITY_SUMMARY.items())),
        "hybrid": dict(sorted(_HYBRID_SUMMARY.items())),
        "routing": dict(sorted(_ROUTING_SUMMARY.items())),
        "corpus": dict(sorted(_CORPUS_SUMMARY.items())),
    }
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="session")
def output_dir() -> str:
    """Directory where regenerated figure tables are written."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_table(output_dir):
    """Persist a FigureTable (text + CSV) and echo it to stdout."""

    def _save(table) -> None:
        text = table.to_text()
        print()
        print(text)
        base = os.path.join(output_dir, table.figure_id)
        with open(base + ".txt", "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        with open(base + ".csv", "w", encoding="utf-8") as handle:
            handle.write(table.to_csv() + "\n")

    return _save
