"""Benchmark-suite configuration.

Each figure benchmark both *times* the reproduction (via pytest-benchmark)
and *persists* the regenerated table under ``benchmarks/output/`` so the
numbers quoted in EXPERIMENTS.md can be refreshed with a single
``pytest benchmarks/ --benchmark-only`` run.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


@pytest.fixture(scope="session")
def output_dir() -> str:
    """Directory where regenerated figure tables are written."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_table(output_dir):
    """Persist a FigureTable (text + CSV) and echo it to stdout."""

    def _save(table) -> None:
        text = table.to_text()
        print()
        print(text)
        base = os.path.join(output_dir, table.figure_id)
        with open(base + ".txt", "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        with open(base + ".csv", "w", encoding="utf-8") as handle:
            handle.write(table.to_csv() + "\n")

    return _save
