"""Benchmarks for the paper's worked Examples 2-4 (paper-vs-measured).

Each benchmark times the analytical reproduction and prints the paper's
hand-computed value next to the library's result; EXPERIMENTS.md quotes
these numbers.
"""

import pytest

from repro.analysis.paper_examples import (
    PAPER_EXAMPLE2,
    PAPER_EXAMPLE3,
    example2_results,
    example3_results,
    example4_results,
)


def test_example2_value_reordering(benchmark):
    result = benchmark(example2_results)
    print()
    print("Example 2 (temperature attribute, Eq. 2)   paper   measured")
    print(
        f"  E(X) event order (V1)                     0.87   {result.event_order.expectation:.4f}"
    )
    print(f"  R    event order (V1)                     1.21   {result.event_order.total:.4f}")
    print(f"  E(X) binary search                        1.65   {result.binary.expectation:.4f}")
    print(f"  R    binary search                        1.99   {result.binary.total:.4f}")
    print(f"  E(X) natural order                        2.44   {result.natural.expectation:.4f}")
    assert result.event_order.expectation == pytest.approx(
        PAPER_EXAMPLE2["event_order_expectation"], abs=1e-6
    )
    assert result.binary.total == pytest.approx(PAPER_EXAMPLE2["binary_response"], abs=1e-6)


def test_example3_attribute_reordering(benchmark):
    result = benchmark(example3_results)
    print()
    print("Example 3 (attribute reordering)            paper   measured")
    print(
        "  s_att A1 (temperature, humidity, radiation)  "
        f"{PAPER_EXAMPLE3['selectivity_a1']['temperature']:.3f}/"
        f"{PAPER_EXAMPLE3['selectivity_a1']['humidity']:.3f}/"
        f"{PAPER_EXAMPLE3['selectivity_a1']['radiation']:.3f}   "
        f"{result.selectivity_a1['temperature']:.3f}/"
        f"{result.selectivity_a1['humidity']:.3f}/"
        f"{result.selectivity_a1['radiation']:.3f}"
    )
    print(
        f"  expected ops, natural order                 3.371   "
        f"{result.natural_cost.operations_per_event:.3f}"
    )
    print(
        f"  expected ops, A1 reordered                  1.910   "
        f"{result.reordered_cost.operations_per_event:.3f}"
    )
    assert result.reordered_order[0] == "humidity"
    assert (
        result.reordered_cost.operations_per_event
        < result.natural_cost.operations_per_event
    )


def test_example4_combined_reordering(benchmark):
    result = benchmark(example4_results)
    print()
    print("Example 4 (V1 + A2 combined)                paper   measured")
    print(
        f"  expected ops, V1 + A2                       1.080   "
        f"{result.combined_cost.operations_per_event:.3f}"
    )
    print(
        f"  expected ops, binary + A2                   1.616   "
        f"{result.binary_cost.operations_per_event:.3f}"
    )
    print(
        f"  expected ops, natural tree                  3.371   "
        f"{result.natural_cost.operations_per_event:.3f}"
    )
    assert (
        result.combined_cost.operations_per_event
        < result.binary_cost.operations_per_event
        < result.natural_cost.operations_per_event
    )
