"""Broker-overlay benchmark: suppression, batching and churn cost.

The distributed claim of the covering-based overlay, measured on a
10-broker chain — the topology where bad routing hurts most (every
needless forward pays up to nine hops):

* **early suppression** — with a hit-sparse subscriber population at the
  far end of the chain, at least half of the published events must die
  at or within one hop of the publisher (the ISSUE's acceptance bar; in
  practice nearly all of them die at hop zero);
* **batch forwarding** — routing a batch crosses each interested link
  once, so link transfers collapse versus per-event publishing and the
  interest matchers' columnar kernel shows its probe dedup
  (``dedup_factor > 1``);
* **churn cost** — subscription churn against cover-heavy tables pays
  O(affected covers): cancelling profiles that cover nothing performs
  zero cover re-checks however large the tables are.

All recorded numbers are deterministic (fixed seeds, integer counters),
so the ``routing`` section of ``BENCH_summary.json`` gates them in CI
without trusting CI timing.
"""

import time

import pytest

from repro.core.predicates import Equals, RangePredicate
from repro.core.profiles import profile
from repro.service.routing import NetworkService
from repro.simulation import build_topology, run_fanout_scenario
from repro.workloads import build_workload, get_profile

_BROKERS = 10
_SPEC = (
    get_profile("stock-ticker")
    .spec.with_counts(profile_count=250, event_count=600)
    .with_seed(17)
)
_WORKLOAD = build_workload(_SPEC)
_EVENTS = list(_WORKLOAD.events)
_PROFILES = list(_WORKLOAD.profiles)


def _far_end_chain(engine: str = "index") -> tuple[NetworkService, list[str]]:
    """A 10-broker chain with the whole (cover-heavy, hit-sparse)
    subscriber population at the far end — the worst case for naive
    flooding, the best showcase for covering-based suppression."""
    service = NetworkService(_SPEC.schema, engine=engine)
    names = build_topology(service, brokers=_BROKERS, topology="chain")
    for item in _PROFILES:
        service.subscribe(item, at=names[-1])
    return service, names


def test_chain_fanout_suppression(benchmark, record_routing):
    def run():
        service, names = _far_end_chain()
        report = service.publish_batch(_EVENTS, at=names[0])
        return service, report

    service, report = benchmark.pedantic(run, rounds=2, iterations=1)
    stats = service.stats()
    near_publisher = report.suppressed_within(1) / len(report.events)
    record_routing(
        "chain-fanout[batch]",
        mean_matches_per_event=stats.notifications / stats.events_published,
        suppressed_within_one_hop=near_publisher,
        suppression_rate=stats.suppression_rate,
        mean_hops_per_event=stats.hops / stats.events_published,
        cover_hit_rate=stats.cover_hit_rate,
        routing_table_entries=float(stats.routing_table_entries),
        active_routing_entries=float(stats.active_routing_entries),
        dedup_factor=stats.interest_kernel.dedup_factor,
    )
    print(
        f"\nchain-fanout: {near_publisher * 100:.1f}% suppressed within one hop, "
        f"{stats.hops / stats.events_published:.3f} hops/event, "
        f"cover hit rate {stats.cover_hit_rate:.2f}, "
        f"kernel dedup {stats.interest_kernel.dedup_factor:.2f}x"
    )
    # The ISSUE's acceptance bar for the hit-sparse workload.
    assert near_publisher >= 0.5
    # Covering keeps the forwarded set strictly smaller than the stored one.
    assert stats.active_routing_entries < stats.routing_table_entries
    # The columnar kernel's probe dedup is engaged on the interest links.
    assert stats.interest_kernel.dedup_factor > 1.0


def test_batch_forwarding_beats_per_event(record_routing):
    """One batched publish crosses each interested link once; the same
    events published one by one pay one transfer per event and never
    reach the columnar kernel."""
    # A moderately broad far-end tap makes a meaningful share of the
    # batch travel the whole chain (the hit-sparse population alone lets
    # almost nothing through, which would make the comparison vacuous).
    tap = profile("tap", price=RangePredicate.at_least(100))

    batched, batched_names = _far_end_chain()
    batched.subscribe(tap, at=batched_names[-1])
    batched_report = batched.publish_batch(_EVENTS, at=batched_names[0])

    single, single_names = _far_end_chain()
    single.subscribe(tap, at=single_names[-1])
    single_transfers = 0
    for event in _EVENTS:
        single_transfers += single.publish(event, at=single_names[0]).link_transfers

    batched_stats = batched.stats()
    single_stats = single.stats()
    # Identical deliveries and identical per-event hop counts...
    assert batched_stats.notifications == single_stats.notifications
    assert batched_stats.hops == single_stats.hops
    # ...but the batch needs far fewer link transfers (the kernel dedup
    # shows only on the batched side).
    assert batched_report.link_transfers < single_transfers
    assert batched_stats.interest_kernel.dedup_factor > 1.0
    record_routing(
        "chain-fanout[per-event]",
        mean_matches_per_event=single_stats.notifications / single_stats.events_published,
        link_transfers=float(single_transfers),
        suppression_rate=single_stats.suppression_rate,
    )
    record_routing(
        "chain-fanout[batch-transfers]",
        link_transfers=float(batched_report.link_transfers),
        transfer_savings=1.0 - batched_report.link_transfers / single_transfers,
    )
    print(
        f"\nlink transfers: batch={batched_report.link_transfers} "
        f"per-event={single_transfers} "
        f"({(1 - batched_report.link_transfers / single_transfers) * 100:.0f}% saved)"
    )


def test_churn_cost_under_cover_heavy_load(record_routing):
    """Churn against cover-heavy routing tables pays O(affected covers).

    The wide coverers absorb every narrow profile, so narrow
    subscribe/cancel cycles must run at a constant, tiny cover-check
    cost — and cancelling an isolated profile must re-check nothing.
    """
    service = NetworkService(_SPEC.schema, engine="index")
    names = build_topology(service, brokers=_BROKERS, topology="chain")
    home = names[-1]
    for i in range(8):
        service.subscribe(
            profile(f"wide-{i}", price=RangePredicate.at_least(40 + 10 * i)),
            at=home,
        )
    for i in range(120):
        service.subscribe(
            profile(f"narrow-{i}", price=Equals(60 + (i % 130))), at=home
        )
    checks_start, hits_start = service.network.cover_counters()

    churn_ops = 0
    start = time.perf_counter()
    for round_index in range(60):
        handle = service.subscribe(
            profile(f"churn-{round_index}", price=Equals(70 + round_index % 120)),
            at=home,
        )
        handle.cancel()
        churn_ops += 2
    elapsed = time.perf_counter() - start
    checks_churn, hits_churn = service.network.cover_counters()
    churn_checks = checks_churn - checks_start

    # Isolated removals: profiles nothing covers and that cover nothing.
    isolated = [
        service.subscribe(profile(f"iso-{i}", volume=Equals(i)), at=home)
        for i in range(20)
    ]
    checks_before_cancel, _ = service.network.cover_counters()
    for handle in isolated:
        handle.cancel()
    checks_after_cancel, _ = service.network.cover_counters()

    record_routing(
        "churn[cover-heavy]",
        cover_checks_per_op=churn_checks / churn_ops,
        cover_hit_rate=service.stats().cover_hit_rate,
        isolated_removal_checks=float(checks_after_cancel - checks_before_cancel),
    )
    print(
        f"\nchurn: {churn_checks / churn_ops:.1f} cover checks/op, "
        f"isolated removals {checks_after_cancel - checks_before_cancel} checks, "
        f"{elapsed / churn_ops * 1e6:.0f}us/op"
    )
    # Adds stop at the first coverer (the wide set), removals of covered
    # entries touch one bucket: the per-op cost is bounded by the wide
    # set, not the 120-entry narrow population.
    assert churn_checks / churn_ops <= 8 * (_BROKERS - 1)
    # The ISSUE's isolated-removal criterion, network-wide.
    assert checks_after_cancel == checks_before_cancel


def test_fanout_scenario_smoke(record_routing):
    """The simulation driver end to end: 10 brokers, simulated time,
    churn interleaved with batches (CI-sized knobs)."""
    report = run_fanout_scenario(
        brokers=_BROKERS,
        subscriptions=200,
        event_batches=5,
        batch_size=40,
        churn_operations=60,
        topology="chain",
        seed=23,
    )
    assert report.events_published == 200
    assert report.churn_operations > 0
    assert report.network.suppression_rate > 0.5
    record_routing(
        "fanout-scenario[chain]",
        mean_matches_per_event=report.notifications / report.events_published,
        suppression_rate=report.network.suppression_rate,
        simulated_time=report.simulated_time,
        churn_operations=float(report.churn_operations),
        cover_hit_rate=report.network.cover_hit_rate,
    )
    print(
        f"\nfanout scenario: {report.notifications} notifications, "
        f"suppression {report.network.suppression_rate:.3f}, "
        f"simulated time {report.simulated_time:.1f}"
    )


@pytest.mark.parametrize("engine", ["tree", "index"])
def test_overlay_delivers_like_central_service(engine, record_routing):
    """Benchmark-level correctness guard: the overlay delivers exactly
    the notifications a central service would, whatever local engine the
    brokers run."""
    from repro.api import FilterService

    service, names = _far_end_chain(engine=engine)
    central = FilterService(_SPEC.schema, engine=engine)
    for item in _PROFILES:
        central.subscribe(item, subscriber=item.subscriber or "s")
    report = service.publish_batch(_EVENTS[:200], at=names[0])
    overlay_delivered = sorted(
        n.profile_id for batch in report.notifications.values() for n in batch
    )
    central_delivered = sorted(
        n.profile_id
        for outcome in central.publish_batch(_EVENTS[:200])
        for n in outcome.notifications
    )
    assert overlay_delivered == central_delivered
    record_routing(
        f"equivalence[{engine}]",
        mean_matches_per_event=len(overlay_delivered) / 200.0,
    )
