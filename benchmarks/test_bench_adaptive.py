"""Adaptive filter benchmark: static tree vs history-driven restructuring.

Ablation of the adaptive component (DESIGN.md `adaptive` experiment): a
peaked event stream is filtered by (a) the natural-order tree, (b) a tree
reordered once from the true distribution, and (c) the adaptive engine that
has to discover the distribution from its history.
"""

import random


from repro.core import Attribute, Event, IntegerDomain, ProfileSet, Schema, profile
from repro.selectivity import AttributeMeasure, TreeOptimizer, ValueMeasure
from repro.service import AdaptationPolicy, AdaptiveFilterEngine
from repro.distributions.discrete import peaked_discrete
from repro.matching import TreeMatcher


def _profiles() -> ProfileSet:
    schema = Schema([Attribute("v", IntegerDomain(0, 199))])
    return ProfileSet(schema, [profile(f"P{v}", v=v) for v in range(0, 200, 4)])


def _events(count: int = 4000, seed: int = 3) -> list[Event]:
    rng = random.Random(seed)
    dist = peaked_discrete(
        IntegerDomain(0, 199), peak_fraction=0.05, peak_mass=0.9, location="high"
    )
    return [Event({"v": dist.sample(rng)}) for _ in range(count)]


EVENTS = _events()


def test_static_natural_tree(benchmark):
    matcher = TreeMatcher(_profiles())
    total = benchmark.pedantic(
        lambda: sum(matcher.match(e).operations for e in EVENTS), rounds=2, iterations=1
    )
    print(f"\nnatural tree: {total / len(EVENTS):.2f} ops/event")


def test_statically_reordered_tree(benchmark):
    profiles = _profiles()
    optimizer = TreeOptimizer(
        profiles,
        {
            "v": peaked_discrete(
                IntegerDomain(0, 199), peak_fraction=0.05, peak_mass=0.9, location="high"
            )
        },
    )
    matcher = TreeMatcher(
        profiles, optimizer.configuration(value_measure=ValueMeasure.V1_EVENT)
    )
    total = benchmark.pedantic(
        lambda: sum(matcher.match(e).operations for e in EVENTS), rounds=2, iterations=1
    )
    print(f"\noracle-reordered tree: {total / len(EVENTS):.2f} ops/event")


def test_adaptive_engine(benchmark):
    def run():
        engine = AdaptiveFilterEngine(
            _profiles(),
            policy=AdaptationPolicy(
                value_measure=ValueMeasure.V1_EVENT,
                attribute_measure=AttributeMeasure.A2_ZERO_PROBABILITY,
                reoptimize_interval=500,
                warmup_events=500,
            ),
        )
        return sum(engine.match(e).operations for e in EVENTS), engine

    (total, engine) = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nadaptive engine: {total / len(EVENTS):.2f} ops/event")
    assert any(record.applied for record in engine.adaptations())


def test_adaptation_closes_most_of_the_gap():
    profiles = _profiles()
    natural = TreeMatcher(profiles)
    natural_ops = sum(natural.match(e).operations for e in EVENTS)

    adaptive = AdaptiveFilterEngine(
        _profiles(),
        policy=AdaptationPolicy(
            value_measure=ValueMeasure.V1_EVENT,
            reoptimize_interval=500,
            warmup_events=500,
        ),
    )
    adaptive_ops = sum(adaptive.match(e).operations for e in EVENTS)
    print()
    print(f"natural tree : {natural_ops / len(EVENTS):8.2f} ops/event")
    print(f"adaptive tree: {adaptive_ops / len(EVENTS):8.2f} ops/event")
    assert adaptive_ops < natural_ops
