"""Scaling ablations: tree construction and matching vs the profile count.

The paper bounds the tree response time by ``O(n log2 p)``; these benchmarks
measure how construction time, tree size and per-event operations grow with
the number of profiles, and how the routing overlay scales with extra
brokers.
"""


import pytest

from repro.core.domains import IntegerDomain
from repro.matching import TreeMatcher, build_tree
from repro.matching.statistics import FilterStatistics
from repro.workloads import build_workload, get_profile


def _single_attribute(*, events, profiles, domain_size, profile_count, event_count, seed):
    """The ``single-attribute`` corpus profile with swept knobs applied."""
    return (
        get_profile("single-attribute")
        .spec.with_counts(profile_count=profile_count, event_count=event_count)
        .with_seed(seed)
        .with_distributions(events=events, profiles=profiles)
        .with_domain("value", IntegerDomain(0, domain_size - 1))
    )


@pytest.mark.parametrize("profile_count", [100, 400, 1600])
def test_tree_construction_scaling(benchmark, profile_count):
    workload = build_workload(
        _single_attribute(
            events="gauss",
            profiles="equal",
            domain_size=500,
            profile_count=profile_count,
            event_count=1,
            seed=7,
        )
    )
    tree = benchmark(lambda: build_tree(workload.profiles))
    print(
        f"\np={profile_count}: {tree.node_count()} nodes, "
        f"{len(tree.partitions['value'].subranges)} sub-ranges"
    )


@pytest.mark.parametrize("profile_count", [100, 400, 1600])
def test_matching_cost_scaling(benchmark, profile_count):
    """Binary-search matching cost grows roughly like log2(2p - 1)."""
    workload = build_workload(
        _single_attribute(
            events="equal",
            profiles="equal",
            domain_size=2000,
            profile_count=profile_count,
            event_count=500,
            seed=11,
        )
    )
    from repro.matching.tree.config import SearchStrategy, TreeConfiguration

    matcher = TreeMatcher(
        workload.profiles,
        TreeConfiguration(("value",), {}, SearchStrategy.BINARY, "binary"),
    )
    events = list(workload.events)

    def run():
        statistics = FilterStatistics()
        for event in events:
            statistics.record(matcher.match(event))
        return statistics

    statistics = benchmark.pedantic(run, rounds=2, iterations=1)
    import math

    bound = math.log2(2 * profile_count - 1) + 1
    print(
        f"\np={profile_count}: {statistics.average_operations_per_event():.2f} ops/event "
        f"(log2(2p-1) = {bound - 1:.2f})"
    )
    assert statistics.average_operations_per_event() <= bound
