"""Scaling ablations: tree construction and matching vs the profile count.

The paper bounds the tree response time by ``O(n log2 p)``; these benchmarks
measure how construction time, tree size and per-event operations grow with
the number of profiles, and how the routing overlay scales with extra
brokers.
"""


import pytest

from repro.matching import TreeMatcher, build_tree
from repro.matching.statistics import FilterStatistics
from repro.workloads import build_workload, single_attribute_spec


@pytest.mark.parametrize("profile_count", [100, 400, 1600])
def test_tree_construction_scaling(benchmark, profile_count):
    workload = build_workload(
        single_attribute_spec(
            events="gauss",
            profiles="equal",
            domain_size=500,
            profile_count=profile_count,
            event_count=1,
            seed=7,
        )
    )
    tree = benchmark(lambda: build_tree(workload.profiles))
    print(
        f"\np={profile_count}: {tree.node_count()} nodes, "
        f"{len(tree.partitions['value'].subranges)} sub-ranges"
    )


@pytest.mark.parametrize("profile_count", [100, 400, 1600])
def test_matching_cost_scaling(benchmark, profile_count):
    """Binary-search matching cost grows roughly like log2(2p - 1)."""
    workload = build_workload(
        single_attribute_spec(
            events="equal",
            profiles="equal",
            domain_size=2000,
            profile_count=profile_count,
            event_count=500,
            seed=11,
        )
    )
    from repro.matching.tree.config import SearchStrategy, TreeConfiguration

    matcher = TreeMatcher(
        workload.profiles,
        TreeConfiguration(("value",), {}, SearchStrategy.BINARY, "binary"),
    )
    events = list(workload.events)

    def run():
        statistics = FilterStatistics()
        for event in events:
            statistics.record(matcher.match(event))
        return statistics

    statistics = benchmark.pedantic(run, rounds=2, iterations=1)
    import math

    bound = math.log2(2 * profile_count - 1) + 1
    print(
        f"\np={profile_count}: {statistics.average_operations_per_event():.2f} ops/event "
        f"(log2(2p-1) = {bound - 1:.2f})"
    )
    assert statistics.average_operations_per_event() <= bound
