#!/usr/bin/env python3
"""Regression gate: compare a ``BENCH_summary.json`` against the baseline.

The benchmark suite dumps deterministic, timing-free numbers (mean
comparison operations per event, mean matches per event — fixed seeds make
them bit-stable across runs) into ``BENCH_summary.json``; a known-good
copy is committed as ``benchmarks/baseline.json``.  CI runs this script
after the benchmark smoke job and fails when

* a matcher/engine present in the baseline disappeared from the summary
  (coverage loss),
* ``mean_operations_per_event`` regressed beyond ``--tolerance`` (relative),
* ``mean_matches_per_event`` drifted at all (delivery counts are a
  correctness signal, not a performance one), or
* optional ``wall_clock_seconds`` entries regressed beyond the *much*
  looser ``--wall-tolerance`` — only when both sides carry them, which the
  timing-free CI smoke run does not (CI timing is untrustworthy; the
  deterministic metrics are the real gate there).

Improvements are reported but never fail the gate; refresh the baseline in
the same PR that makes things faster:

    PYTHONPATH=src python -m pytest benchmarks -q --benchmark-disable \
        --bench-summary benchmarks/baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys

#: Metric gated with the relative --tolerance (higher is worse).
OPS_METRIC = "mean_operations_per_event"
#: Metric gated exactly (any drift is a behaviour change).
MATCHES_METRIC = "mean_matches_per_event"
#: Optional wall-clock metric gated with --wall-tolerance.
WALL_METRIC = "wall_clock_seconds"

#: Sections of the summary payload that hold per-engine metric dicts.
SECTIONS = (
    "matchers",
    "churn",
    "batch",
    "delivery",
    "sharded",
    "durability",
    "hybrid",
    "routing",
    "corpus",
)


def compare_section(
    section: str,
    baseline: dict,
    current: dict,
    *,
    tolerance: float,
    wall_tolerance: float,
    failures: list[str],
    notes: list[str],
) -> None:
    for name, base_metrics in sorted(baseline.items()):
        current_metrics = current.get(name)
        if current_metrics is None:
            failures.append(f"{section}.{name}: missing from the current summary")
            continue

        base_ops = base_metrics.get(OPS_METRIC)
        current_ops = current_metrics.get(OPS_METRIC)
        if base_ops is not None and current_ops is not None and base_ops > 0:
            ratio = current_ops / base_ops
            if ratio > 1.0 + tolerance:
                failures.append(
                    f"{section}.{name}.{OPS_METRIC}: {current_ops:.3f} vs baseline "
                    f"{base_ops:.3f} (+{(ratio - 1) * 100:.1f}% > "
                    f"{tolerance * 100:.0f}% tolerance)"
                )
            elif ratio < 1.0 - tolerance:
                notes.append(
                    f"{section}.{name}.{OPS_METRIC}: improved to {current_ops:.3f} "
                    f"from {base_ops:.3f} ({(1 - ratio) * 100:.1f}%) — consider "
                    "refreshing the baseline"
                )

        base_matches = base_metrics.get(MATCHES_METRIC)
        current_matches = current_metrics.get(MATCHES_METRIC)
        if base_matches is not None and current_matches is not None:
            if abs(base_matches - current_matches) > 1e-9:
                failures.append(
                    f"{section}.{name}.{MATCHES_METRIC}: {current_matches!r} vs "
                    f"baseline {base_matches!r} — delivery behaviour changed "
                    "(fixed seeds make this metric exact)"
                )

        base_wall = base_metrics.get(WALL_METRIC)
        current_wall = current_metrics.get(WALL_METRIC)
        if base_wall is not None and current_wall is not None and base_wall > 0:
            wall_ratio = current_wall / base_wall
            if wall_ratio > 1.0 + wall_tolerance:
                failures.append(
                    f"{section}.{name}.{WALL_METRIC}: {current_wall:.4f}s vs baseline "
                    f"{base_wall:.4f}s (+{(wall_ratio - 1) * 100:.0f}% > "
                    f"{wall_tolerance * 100:.0f}% tolerance)"
                )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("summary", help="freshly generated BENCH_summary.json")
    parser.add_argument(
        "baseline",
        nargs="?",
        default="benchmarks/baseline.json",
        help="committed known-good summary (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="relative ops/event regression tolerated (default: 0.10)",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=1.0,
        help="relative wall-clock regression tolerated when both summaries "
        "carry timings (default: 1.0, i.e. 2x)",
    )
    args = parser.parse_args(argv)

    with open(args.summary, encoding="utf-8") as handle:
        current = json.load(handle)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)

    failures: list[str] = []
    notes: list[str] = []
    for section in SECTIONS:
        compare_section(
            section,
            baseline.get(section, {}),
            current.get(section, {}),
            tolerance=args.tolerance,
            wall_tolerance=args.wall_tolerance,
            failures=failures,
            notes=notes,
        )

    for note in notes:
        print(f"note: {note}")
    if failures:
        print(f"\nFAIL: {len(failures)} benchmark regression(s) vs {args.baseline}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"OK: no benchmark regressions vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
