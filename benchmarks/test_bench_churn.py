"""Subscription-churn benchmark: maintenance cost per churn operation.

The workload the paper cares most about at scale: a broker whose
subscription population *changes while events flow*.  Each churn step
unsubscribes one profile, re-subscribes another and publishes a small
batch of events, exercising the maintenance path of every engine family:

* ``counting`` / ``tree`` — rebuild their shared structures per change;
* ``index`` — applies postings deltas (dense-id recycling, slab endpoint
  splicing) and defers replanning;
* ``auto`` — the adaptive roster entry, churning through whichever family
  the arbitration currently runs.

Wall-clock per churn op is printed and timed via pytest-benchmark; the
deterministic matching statistics feed ``BENCH_summary.json`` through the
``record_churn`` fixture so CI can gate on them without trusting CI
timing.  The headline regression gate of this module —
``test_incremental_maintenance_is_3x_faster_than_rebuild`` — asserts the
tentpole claim: incremental index maintenance beats rebuild-per-change by
at least 3x (it is orders of magnitude in practice).
"""

import random
import time

import pytest

from repro.core.profiles import ProfileSet
from repro.matching import (
    CountingMatcher,
    FilterStatistics,
    PredicateIndexMatcher,
    TreeMatcher,
)
from repro.service.adaptive import AdaptationPolicy, AdaptiveFilterEngine
from repro.workloads import build_workload, get_profile

_WORKLOAD = build_workload(
    get_profile("stock-ticker").spec.with_counts(profile_count=300, event_count=400)
)
_EVENTS = list(_WORKLOAD.events)
_PROFILES = list(_WORKLOAD.profiles)

#: Churn script: (steps, events published per step).
_STEPS = 120
_PUBLISH_PER_STEP = 3


def _fresh_profiles() -> ProfileSet:
    """A private profile set per run — churn mutates it."""
    return ProfileSet(_WORKLOAD.schema, _PROFILES)


def _churn_run(matcher) -> tuple[FilterStatistics, int]:
    """Interleave unsubscribe/subscribe churn with publishing.

    Deterministic: victims rotate through the profile list, events cycle
    through the generated stream.  Returns the matching statistics and the
    number of churn operations (adds + removes) performed.
    """
    statistics = FilterStatistics()
    rng = random.Random(13)
    event_index = 0
    churn_ops = 0
    for _ in range(_STEPS):
        victim = _PROFILES[rng.randrange(len(_PROFILES))]
        matcher.remove_profile(victim.profile_id)
        matcher.add_profile(victim)
        churn_ops += 2
        for _ in range(_PUBLISH_PER_STEP):
            statistics.record(matcher.match(_EVENTS[event_index % len(_EVENTS)]))
            event_index += 1
    return statistics, churn_ops


def _wall_clock_per_churn_op(matcher_factory, *, rounds: int = 2) -> float:
    """Best-of-``rounds`` seconds per churn op (publishing included)."""
    best = float("inf")
    for _ in range(rounds):
        matcher = matcher_factory()
        start = time.perf_counter()
        _, churn_ops = _churn_run(matcher)
        best = min(best, (time.perf_counter() - start) / churn_ops)
    return best


def _engine_factories():
    return {
        "counting": lambda: CountingMatcher(_fresh_profiles()),
        "tree": lambda: TreeMatcher(_fresh_profiles()),
        "index": lambda: PredicateIndexMatcher(_fresh_profiles()),
        "auto": lambda: AdaptiveFilterEngine(
            _fresh_profiles(),
            policy=AdaptationPolicy(
                engine="auto", reoptimize_interval=150, warmup_events=100
            ),
        ),
    }


@pytest.mark.parametrize("engine_name", ["counting", "tree", "index", "auto"])
def test_churn_throughput(benchmark, record_churn, engine_name):
    factory = _engine_factories()[engine_name]

    def run():
        return _churn_run(factory())

    statistics, churn_ops = benchmark.pedantic(run, rounds=2, iterations=1)
    record_churn(engine_name, statistics, churn_ops)
    print(
        f"\nchurn[{engine_name}]: {statistics.average_operations_per_event():.1f} "
        f"match ops/event over {churn_ops} churn ops"
    )


def test_churn_engines_agree_on_notifications(record_churn):
    """All engines deliver identical notifications under churn."""
    results = {}
    for name, factory in _engine_factories().items():
        statistics, churn_ops = _churn_run(factory())
        results[name] = statistics
        record_churn(name, statistics, churn_ops)
    notifications = {name: stats.total_notifications for name, stats in results.items()}
    assert len(set(notifications.values())) == 1, notifications


class _RebuildPerChangeMatcher(PredicateIndexMatcher):
    """The pre-incremental maintenance strategy: rebuild on every change."""

    def add_profile(self, profile):
        self.profiles.add(profile)
        self._rebuild()

    def remove_profile(self, profile_id):
        from repro.matching.interfaces import remove_profile_strict

        remove_profile_strict(self.profiles, profile_id)
        self._rebuild()


def test_incremental_maintenance_is_3x_faster_than_rebuild(request):
    """The tentpole churn claim: postings deltas vs rebuild-per-change.

    Skipped in timing-free (``--benchmark-disable``) runs like the CI
    smoke job, where the deterministic BENCH_summary.json numbers are the
    regression guard instead.  The observed margin is far beyond the
    asserted 3x (hundreds of x at this profile count).
    """
    if request.config.getoption("benchmark_disable", default=False):
        pytest.skip("wall-clock gate skipped in timing-free (smoke) runs")
    incremental = _wall_clock_per_churn_op(lambda: PredicateIndexMatcher(_fresh_profiles()))
    rebuild = _wall_clock_per_churn_op(lambda: _RebuildPerChangeMatcher(_fresh_profiles()))
    print(
        f"\nmaintenance per churn op: incremental={incremental * 1e6:.1f}us "
        f"rebuild={rebuild * 1e6:.1f}us ({rebuild / incremental:.0f}x)"
    )
    assert incremental * 3.0 < rebuild


def test_incremental_churn_stays_equivalent():
    """Correctness guard for the benchmark itself: after the full churn
    script the incremental matcher equals a fresh build."""
    matcher = PredicateIndexMatcher(_fresh_profiles())
    _churn_run(matcher)
    fresh = PredicateIndexMatcher(ProfileSet(_WORKLOAD.schema, list(matcher.profiles)))
    for event in _EVENTS[:100]:
        assert (
            matcher.match(event).matched_profile_ids
            == fresh.match(event).matched_profile_ids
        )
