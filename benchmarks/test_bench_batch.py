"""Columnar batch-kernel benchmark: per-event loop vs columnar execution.

Two scenarios bracket the kernel's design space:

* **stock ticker** — reject-heavy, hit-sparse: most events die on the
  first probe.  The columnar win here is *dedup* — a 1500-event batch
  observes ~40 symbols, so the kernel executes a fraction of the probe
  work the per-event loop pays.  Gated deterministically via
  :class:`~repro.matching.index.kernel.KernelStats` (charged/executed
  operations), which is exact under the fixed workload seeds: the kernel
  must execute >=2x fewer comparison operations per event than the
  per-event loop on a 256-event batch (the tentpole acceptance claim).
* **wide range** — hit-heavy: every event satisfies hundreds of broad
  range entries, so per-event cost is counter bumping.  The columnar win
  here is *vectorized counting*; gated at >=2x wall-clock where timing is
  trusted (skipped in ``--benchmark-disable`` smoke runs, like every
  other wall-clock gate in this suite).

Deterministic per-scenario numbers (ops/event, matches/event, dedup
factor) feed ``BENCH_summary.json``'s ``batch`` section through the
``record_batch`` fixture; timing runs additionally record
``wall_clock_seconds`` keys, which ``compare_to_baseline.py`` gates with
the loose ``--wall-tolerance`` only when both summaries carry them —
i.e. on developer machines, not in CI smoke.
"""

import time

import pytest

from repro.matching import FilterStatistics, PredicateIndexMatcher
from repro.matching.index import kernel
from repro.workloads import build_workload, get_profile

_STOCK = build_workload(
    get_profile("stock-ticker").spec.with_counts(profile_count=400, event_count=1500)
)
_WIDE = build_workload(get_profile("wide-range").spec)

#: The acceptance batch size of the stock-ticker dedup gate.
_STOCK_GATE_BATCH = 256

_SCENARIOS = {
    "stock-ticker": _STOCK,
    "wide-range": _WIDE,
}


def _statistics(results) -> FilterStatistics:
    statistics = FilterStatistics()
    for result in results:
        statistics.record(result)
    return statistics


def _wall_clock(runner, *, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        runner()
        best = min(best, time.perf_counter() - start)
    return best


def _timing_enabled(request) -> bool:
    return not request.config.getoption("benchmark_disable", default=False)


@pytest.mark.parametrize("scenario", sorted(_SCENARIOS))
def test_columnar_kernel_equals_per_event_loop(scenario, record_batch, request):
    """Correctness guard + the deterministic summary numbers per scenario."""
    workload = _SCENARIOS[scenario]
    matcher = PredicateIndexMatcher(workload.profiles)
    events = list(workload.events)
    sequential = [matcher.match(event) for event in events]
    stats = kernel.KernelStats()
    columnar = kernel.match_batch_columnar(matcher, events, stats=stats)
    assert [r.matched_profile_ids for r in columnar] == [
        r.matched_profile_ids for r in sequential
    ]
    assert [r.operations for r in columnar] == [r.operations for r in sequential]

    extra = {
        "executed_operations_per_event": stats.executed_operations / stats.events,
        "dedup_factor": stats.dedup_factor,
    }
    if _timing_enabled(request):
        extra["wall_clock_seconds"] = _wall_clock(
            lambda: kernel.match_batch_columnar(matcher, events)
        )
        extra["wall_clock_seconds_event_loop"] = _wall_clock(
            lambda: [matcher.match(event) for event in events]
        )
    record_batch(f"{scenario}[columnar]", _statistics(columnar), **extra)
    print(
        f"\n{scenario}: charged {stats.charged_operations / stats.events:.2f} "
        f"ops/event, executed {stats.executed_operations / stats.events:.2f} "
        f"ops/event ({stats.dedup_factor:.1f}x dedup)"
    )


def test_columnar_dedup_is_2x_on_stock_batch():
    """The tentpole ops/event acceptance gate, deterministic (runs in CI).

    On a 256-event stock-ticker batch the columnar kernel must *execute*
    at least 2x fewer comparison operations per event than the per-event
    loop charges — the per-batch probe dedup factor.  Larger batches
    dedupe harder.
    """
    matcher = PredicateIndexMatcher(_STOCK.profiles)
    events = list(_STOCK.events)

    stats_256 = kernel.KernelStats()
    kernel.match_batch_columnar(matcher, events[:_STOCK_GATE_BATCH], stats=stats_256)
    print(f"\nstock-ticker[{_STOCK_GATE_BATCH}]: dedup {stats_256.dedup_factor:.2f}x")
    assert stats_256.dedup_factor >= 2.0

    stats_full = kernel.KernelStats()
    kernel.match_batch_columnar(matcher, events, stats=stats_full)
    print(f"stock-ticker[{len(events)}]: dedup {stats_full.dedup_factor:.2f}x")
    assert stats_full.dedup_factor >= 4.0
    assert stats_full.dedup_factor >= stats_256.dedup_factor


def test_columnar_cover_dedup_wins_on_range_heavy_batch():
    """Executed-ops gate of the slab-cover dedup, deterministic (runs in CI).

    The wide-range workload is range-heavy: many distinct event values
    resolve to the same interval-slab cover, whose flatten runs once per
    cover.  Charging the executed side per *cover* instead of per
    *distinct value* is worth ~1.46x here; per-distinct-value accounting
    alone topped out at ~1.06x on this workload, so the 1.3x gate proves
    the cover dedup specifically.
    """
    matcher = PredicateIndexMatcher(_WIDE.profiles)
    stats = kernel.KernelStats()
    kernel.match_batch_columnar(matcher, list(_WIDE.events), stats=stats)
    print(f"\nwide-range: dedup {stats.dedup_factor:.2f}x")
    assert stats.executed_operations < stats.charged_operations
    assert stats.dedup_factor >= 1.3


def test_columnar_wide_range_uses_vectorized_counting():
    """The hit-heavy scenario must reach the count-matrix path (numpy)."""
    if not kernel.HAS_NUMPY:
        pytest.skip("numpy unavailable: the fallback path has no matrix tiles")
    matcher = PredicateIndexMatcher(_WIDE.profiles)
    stats = kernel.KernelStats()
    kernel.match_batch_columnar(matcher, list(_WIDE.events), stats=stats)
    assert stats.matrix_tiles >= 1
    assert stats.counter_bumps > 100_000  # genuinely hit-heavy


def test_columnar_wall_clock_2x_on_wide_range(request):
    """The tentpole wall-clock gate: vectorized counting on hit-heavy
    batches.  Timing-trusted runs only; ~2.5x observed locally."""
    if not _timing_enabled(request):
        pytest.skip("wall-clock gate skipped in timing-free (smoke) runs")
    if not kernel.HAS_NUMPY:
        pytest.skip("numpy unavailable: vectorized counting cannot engage")
    matcher = PredicateIndexMatcher(_WIDE.profiles)
    events = list(_WIDE.events)
    per_event = _wall_clock(lambda: [matcher.match(event) for event in events])
    columnar = _wall_clock(lambda: kernel.match_batch_columnar(matcher, events))
    print(
        f"\nwide-range wall clock: per-event {per_event * 1e3:.1f}ms "
        f"columnar {columnar * 1e3:.1f}ms ({per_event / columnar:.2f}x)"
    )
    assert columnar * 2.0 < per_event


def test_columnar_wall_clock_competitive_on_stock(request):
    """Reject-heavy batches must not regress behind the per-event loop.

    The stock workload is the kernel's worst case (almost nothing to
    count or dedupe pays off per event); the full-batch sweep is ~1.4x
    faster locally, asserted here with generous slack against noise.
    """
    if not _timing_enabled(request):
        pytest.skip("wall-clock gate skipped in timing-free (smoke) runs")
    matcher = PredicateIndexMatcher(_STOCK.profiles)
    events = list(_STOCK.events)
    per_event = _wall_clock(lambda: [matcher.match(event) for event in events])
    columnar = _wall_clock(lambda: kernel.match_batch_columnar(matcher, events))
    print(
        f"\nstock-ticker wall clock: per-event {per_event * 1e3:.1f}ms "
        f"columnar {columnar * 1e3:.1f}ms ({per_event / columnar:.2f}x)"
    )
    assert columnar < per_event * 1.25


@pytest.mark.parametrize("scenario", sorted(_SCENARIOS))
def test_columnar_batch_throughput(benchmark, scenario):
    """pytest-benchmark visibility for the columnar sweep per scenario."""
    workload = _SCENARIOS[scenario]
    matcher = PredicateIndexMatcher(workload.profiles)
    events = list(workload.events)
    benchmark.pedantic(
        lambda: kernel.match_batch_columnar(matcher, events), rounds=2, iterations=1
    )


def test_fallback_path_stays_equivalent_on_batches():
    """The no-numpy fallback serves the same batches, same answers."""
    matcher = PredicateIndexMatcher(_STOCK.profiles)
    events = list(_STOCK.events)[:400]
    expected = [matcher.match(event).matched_profile_ids for event in events]
    previous = kernel.HAS_NUMPY
    kernel.HAS_NUMPY = False
    try:
        fallback = kernel.match_batch_columnar(matcher, events)
    finally:
        kernel.HAS_NUMPY = previous
    assert [r.matched_profile_ids for r in fallback] == expected
