"""Corpus benchmark: every declarative profile through every applicable family.

This is the "breadth with teeth" gate of the scenario corpus
(``src/repro/workloads/profiles/*.toml``).  Each profile runs through
each engine family its hints declare applicable, via the
``FilterService`` facade and the profile's own run shape (batch size,
delivery mode, churn schedule).  Under the pinned seeds, shard counts
and adaptation knobs the resulting ops/event and matches/event are
bit-stable, so:

* the per-scenario numbers land in the ``corpus`` section of
  ``BENCH_summary.json`` and are gated individually by
  ``compare_to_baseline.py`` — a regression names the scenario that
  moved;
* the *win coverage* is asserted outright: each production family
  (tree / index / hybrid / sharded) must achieve the minimum ops/event
  on at least one corpus scenario, i.e. the corpus genuinely spans the
  space where the families disagree.

``benchmarks/run_corpus.py`` drives the same runner from the command
line and appends one record per run to the committed
``BENCH_history.jsonl`` — the reviewable perf trajectory; this module
also checks that file stays well-formed and covers the corpus.
"""

import os
import time

import pytest

from repro.experiments.corpus import append_history, iter_history, run_profile
from repro.workloads.profiles import get_profile, list_profiles

#: CI-sized event cap: large enough that pinned replans (aml-transactions
#: applies its hybrid replan at event 400) land inside the stream, small
#: enough that the full matrix stays in benchmark-smoke budget.
CI_EVENT_CAP = 600

#: Families whose corpus win the gate demands (the production roster).
REQUIRED_WINNERS = ("tree", "index", "hybrid", "sharded")

_HISTORY = os.path.join(os.path.dirname(os.path.dirname(__file__)), "BENCH_history.jsonl")

_RESULTS: dict[tuple[str, str], tuple] = {}


def _run(profile_name: str, family: str):
    if (profile_name, family) not in _RESULTS:
        profile = get_profile(profile_name)
        start = time.perf_counter()
        record = run_profile(profile, family, event_count=CI_EVENT_CAP)
        wall = time.perf_counter() - start
        _RESULTS[(profile_name, family)] = (record, wall)
    return _RESULTS[(profile_name, family)]


def _timing_enabled(request) -> bool:
    return not request.config.getoption("benchmark_disable", default=False)


def test_corpus_runs_every_profile_through_every_family(record_corpus, request):
    """≥8 committed profiles load and run; every run is recorded."""
    names = list_profiles()
    assert len(names) >= 8, f"corpus shrank to {len(names)} profiles: {names}"
    for name in names:
        profile = get_profile(name)
        assert profile.engine.families, name
        for family in profile.engine.families:
            record, wall = _run(name, family)
            assert record.events > 0 and record.ops_per_event > 0.0
            extra = {}
            if _timing_enabled(request):
                extra["wall_clock_seconds"] = wall
            record_corpus(record, **extra)
        # The same subscription state feeds every family (churn schedule
        # included), so delivered matches must agree across the roster.
        matches = {
            _run(name, family)[0].matches_per_event
            for family in profile.engine.families
        }
        assert len(matches) == 1, f"{name}: families disagree on matches {matches}"


def test_every_engine_family_wins_a_corpus_scenario():
    """The disagreement-space gate: each family is the cheapest somewhere."""
    wins: dict[str, list[str]] = {family: [] for family in REQUIRED_WINNERS}
    for name in list_profiles():
        profile = get_profile(name)
        ops = {
            family: _run(name, family)[0].ops_per_event
            for family in profile.engine.families
        }
        best = min(ops.values())
        for family, value in ops.items():
            if value <= best + 1e-9 and family in wins:
                wins[family].append(name)
    print(f"\ncorpus wins: {wins}")
    for family in REQUIRED_WINNERS:
        assert wins[family], (
            f"{family} wins no corpus scenario — the corpus no longer spans "
            f"its niche (wins: {wins})"
        )


def test_history_records_round_trip(tmp_path):
    """append_history → iter_history is lossless and stamps metadata."""
    profile = get_profile("single-attribute")
    records = [_run("single-attribute", family)[0] for family in profile.engine.families]
    path = tmp_path / "history.jsonl"
    appended = append_history(records, path, timestamp=1700000000.0, revision="deadbeef")
    assert appended == len(records)
    replayed = list(iter_history(path))
    assert [r["family"] for r in replayed] == list(profile.engine.families)
    assert all(r["revision"] == "deadbeef" for r in replayed)
    assert all(r["profile"] == "single-attribute" for r in replayed)


def test_committed_history_is_well_formed_and_covers_the_corpus():
    """BENCH_history.jsonl parses and carries one record per profile x family."""
    if not os.path.exists(_HISTORY):
        pytest.skip("no committed BENCH_history.jsonl in this checkout")
    seen = {(record["profile"], record["family"]) for record in iter_history(_HISTORY)}
    missing = [
        (name, family)
        for name in list_profiles()
        for family in get_profile(name).engine.families
        if (name, family) not in seen
    ]
    assert not missing, (
        f"BENCH_history.jsonl lacks records for {missing}; run "
        "benchmarks/run_corpus.py to append them"
    )


def test_profile_service_fixture_builds_from_scenario(profile_service):
    """The bench fixture honours the profile's hints and overrides."""
    service = profile_service(scenario="smart-building")
    assert service.stats().engine == "tree"
    overridden = profile_service(scenario="smart-building", engine="index")
    assert overridden.stats().engine == "index"
