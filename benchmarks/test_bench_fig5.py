"""Figure 5 benchmarks: operations per event / per profile / per both.

The six distribution combinations mix uniform, falling and peaked event
distributions with peaked profile distributions; the three sub-figures
report the same runs under three different metrics.
"""

import math

from repro.experiments.figures.fig5 import figure_5a, figure_5b, figure_5c


def test_fig5a_operations_per_event(benchmark, save_table):
    table = benchmark.pedantic(figure_5a, rounds=3, iterations=1)
    save_table(table)
    assert len(table.rows) == 6
    for row in table.rows:
        assert all(value > 0 for value in row.values.values())


def test_fig5b_operations_per_profile(benchmark, save_table):
    table = benchmark.pedantic(figure_5b, rounds=3, iterations=1)
    save_table(table)
    # Paper finding: the profile-dependent reorderings (V2/V3) "lead to
    # faster notifications for profiles with high priority" — per profile
    # they beat the event-based order on every peaked-profile combination,
    # even when their per-event average is worse (Fig. 5(a) vs 5(b)).
    for row in table.rows:
        assert (
            row.values["profile order search"]
            <= row.values["event order search"] + 1e-9
        )


def test_fig5c_operations_per_event_and_profile(benchmark, save_table):
    table = benchmark.pedantic(figure_5c, rounds=3, iterations=1)
    save_table(table)
    for row in table.rows:
        for value in row.values.values():
            assert value > 0 and not math.isnan(value)
