"""Figure 6 benchmarks: attribute reordering (experiments TA1 and TA2)."""

from repro.experiments.figures.fig6 import figure_6a, figure_6b


def _check_ordering_findings(table):
    for distribution in ("equal", "gauss", "relocated gauss low"):
        descending = table.value(f"{distribution} · desc.", "event desc order search")
        ascending = table.value(f"{distribution} · asc.", "event desc order search")
        natural = table.value(f"{distribution} · natur.", "event desc order search")
        # Descending selectivity order is the best of the three level orders.
        assert descending <= ascending + 1e-9
        assert descending <= natural + 1e-9


def test_fig6a_wide_selectivity_differences(benchmark, save_table):
    table = benchmark.pedantic(figure_6a, rounds=3, iterations=1)
    save_table(table)
    _check_ordering_findings(table)
    # With most events on the zero-subdomains (relocated Gauss) the
    # selectivity-ordered linear search beats binary search.
    row = "relocated gauss low · desc."
    assert table.value(row, "event desc order search") <= table.value(row, "binary search")


def test_fig6b_small_selectivity_differences(benchmark, save_table):
    table = benchmark.pedantic(figure_6b, rounds=3, iterations=1)
    save_table(table)
    _check_ordering_findings(table)
