"""Benchmarks for the test scenarios TV1-TV4 (simulation vs analytic model).

TV1/TV2 time the full multi-attribute run with the 95 %-precision stopping
rule; TV3 times the 4 000-event single-attribute simulation; TV4 times the
analytical evaluation and the two are compared in the printed summary.
"""

import pytest

from repro.experiments.scenarios import run_tv1, run_tv2, run_tv3, run_tv4


def _print_result(result):
    print()
    print(f"scenario {result.scenario}:")
    for name, value in result.operations_per_event().items():
        print(f"  {name:26s} {value:8.2f} ops/event")


def test_tv1_tree_creation_and_precision_run(benchmark):
    result = benchmark.pedantic(
        lambda: run_tv1(profile_count=800, max_events=4000), rounds=1, iterations=1
    )
    _print_result(result)
    for evaluation in result.evaluations:
        assert evaluation.statistics is not None
        assert evaluation.statistics.events >= 30
        assert evaluation.tree_nodes > 0


def test_tv2_full_tree_precision_run(benchmark):
    result = benchmark.pedantic(
        lambda: run_tv2(profile_count=300, max_events=4000), rounds=1, iterations=1
    )
    _print_result(result)
    assert result.by_strategy("binary search").operations_per_event > 0


def test_tv3_single_attribute_simulation(benchmark):
    result = benchmark.pedantic(
        lambda: run_tv3(profile_count=60, event_count=4000), rounds=1, iterations=1
    )
    _print_result(result)


def test_tv4_analytic_model_agrees_with_tv3(benchmark):
    analytic = benchmark(lambda: run_tv4(profile_count=60))
    simulated = run_tv3(profile_count=60, event_count=4000)
    _print_result(analytic)
    print("  (TV3 simulation for comparison)")
    for name, value in simulated.operations_per_event().items():
        print(f"  {name:26s} {value:8.2f} ops/event")
    for name, value in analytic.operations_per_event().items():
        assert simulated.operations_per_event()[name] == pytest.approx(value, rel=0.15)
