"""Sharded-matcher benchmark: parity gate plus batch-throughput scaling.

Two gates with very different trust models:

* **ops parity** — deterministic, runs everywhere including CI smoke.
  At every shard count the sharded engine must return bit-identical
  matches (ids *and* order) to the single-shard index engine over the
  full wide-range sweep, and at one shard the operation accounting must
  be exactly the index engine's.  The per-shard-count charged metrics
  feed ``BENCH_summary.json``'s ``sharded`` section through
  ``record_sharded``, so ``compare_to_baseline.py`` gates them like any
  other engine.
* **wall-clock scaling** — the thread fan-out must reach >=2x batch
  throughput at 4 shards on the hit-heavy wide workload.  Threads only
  help when the interpreter can actually run shards concurrently, so the
  gate is trusted solely on machines with >=4 cores and a free-threaded
  (GIL-disabled) build; elsewhere (including this repo's CI, which times
  nothing) it records informational numbers and skips the assertion.
"""

import os
import sys
import time

import pytest

from repro.matching import FilterStatistics, PredicateIndexMatcher
from repro.matching.sharded import ShardedMatcher
from repro.workloads import build_workload, get_profile

_WIDE = build_workload(get_profile("wide-range").spec)

_SHARD_COUNTS = (1, 2, 4)
_SCALING_SHARDS = 4


def _statistics(results) -> FilterStatistics:
    statistics = FilterStatistics()
    for result in results:
        statistics.record(result)
    return statistics


def _wall_clock(runner, *, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        runner()
        best = min(best, time.perf_counter() - start)
    return best


def _timing_enabled(request) -> bool:
    return not request.config.getoption("benchmark_disable", default=False)


def _gil_disabled() -> bool:
    checker = getattr(sys, "_is_gil_enabled", None)
    return checker is not None and not checker()


def _sharded(shard_count: int, *, executor: str = "serial") -> ShardedMatcher:
    from repro.core.profiles import ProfileSet

    profiles = ProfileSet(_WIDE.profiles.schema, list(_WIDE.profiles))
    return ShardedMatcher(profiles, shard_count=shard_count, executor=executor)


@pytest.mark.parametrize("shard_count", _SHARD_COUNTS)
def test_sharded_ops_parity(shard_count, record_sharded, request):
    """Deterministic gate: bit-identical matches at every shard count."""
    index = PredicateIndexMatcher(_WIDE.profiles)
    sharded = _sharded(shard_count)
    events = list(_WIDE.events)
    expected = index.match_batch(events)
    results = sharded.match_batch(events)
    assert [r.matched_profile_ids for r in results] == [
        r.matched_profile_ids for r in expected
    ]
    if shard_count == 1:
        assert [r.operations for r in results] == [r.operations for r in expected]

    extra: dict = {"shard_count": float(shard_count)}
    if _timing_enabled(request):
        extra["wall_clock_seconds"] = _wall_clock(lambda: sharded.match_batch(events))
    record_sharded(f"wide-range[{shard_count} shards]", _statistics(results), **extra)


def test_sharded_stats_fold_matches_merged_results():
    """The folded kernel stats bill exactly what the merged results report."""
    sharded = _sharded(4)
    results = sharded.match_batch(list(_WIDE.events))
    folded = sharded.kernel_stats
    assert folded.charged_operations == sum(r.operations for r in results)
    assert folded.events == len(_WIDE.events) * 4  # every shard sees the batch


def test_sharded_batch_throughput_scales_to_4_shards(request):
    """The tentpole scaling gate: >=2x batch throughput at 4 shards.

    Wall-clock trusted only where threads can actually run in parallel:
    >=4 cores and a GIL-disabled interpreter.  Elsewhere the numbers are
    printed for information and the assertion skips (like every other
    wall-clock gate in this suite).
    """
    if not _timing_enabled(request):
        pytest.skip("wall-clock gate skipped in timing-free (smoke) runs")
    events = list(_WIDE.events)
    one = _sharded(1)
    four = _sharded(_SCALING_SHARDS, executor="threads")
    try:
        single = _wall_clock(lambda: one.match_batch(events))
        fanned = _wall_clock(lambda: four.match_batch(events))
    finally:
        four.close()
    speedup = single / fanned
    print(
        f"\nwide-range sharded wall clock: 1 shard {single * 1e3:.1f}ms, "
        f"{_SCALING_SHARDS} shards {fanned * 1e3:.1f}ms ({speedup:.2f}x)"
    )
    cores = os.cpu_count() or 1
    if cores < _SCALING_SHARDS:
        pytest.skip(f"only {cores} core(s): thread fan-out cannot scale here")
    if not _gil_disabled():
        pytest.skip("GIL enabled: shards cannot run concurrently on threads")
    assert speedup >= 2.0


@pytest.mark.parametrize("shard_count", _SHARD_COUNTS)
def test_sharded_batch_throughput(benchmark, shard_count):
    """pytest-benchmark visibility for the sharded sweep per shard count."""
    sharded = _sharded(shard_count, executor="threads" if shard_count > 1 else "serial")
    events = list(_WIDE.events)
    try:
        benchmark.pedantic(lambda: sharded.match_batch(events), rounds=2, iterations=1)
    finally:
        sharded.close()
