"""Delivery-throughput benchmark: inline vs threadpool (vs asyncio).

The stock-ticker batch flows through a :class:`~repro.api.FilterService`
whose 400 subscriptions all carry sinks, once per delivery executor.
Two kinds of numbers feed ``BENCH_summary.json``'s ``delivery`` section:

* **deterministic** (gated by ``compare_to_baseline.py`` in CI):
  ops/event and matches/event per mode — matching is strictly upstream
  of delivery, so these must be *identical* across executors (asserted
  in-test, too: same per-subscription notification sets and order);
* **timing** (local runs only, loose ``--wall-tolerance`` gate):
  ``wall_clock_seconds`` per mode plus an informational
  ``events_per_second``, the executor-overhead comparison the ROADMAP
  asked for on the ``publish_batch`` seam.
"""

from __future__ import annotations

import time

import pytest

from repro.api import FilterService
from repro.workloads import build_workload, get_profile

_STOCK = build_workload(
    get_profile("stock-ticker").spec.with_counts(profile_count=400, event_count=1500)
)
_EVENTS = list(_STOCK.events)
_PROFILES = list(_STOCK.profiles)

#: Executor configurations under comparison.
_MODES = {
    "inline": {},
    "threadpool": {"max_workers": 4, "queue_capacity": 4096},
    "asyncio": {"queue_capacity": 4096},
}


def _timing_enabled(request) -> bool:
    return not request.config.getoption("benchmark_disable", default=False)


def _run_mode(mode: str):
    """Publish the whole batch under one executor; return the evidence."""
    kwargs = _MODES[mode]
    received: dict[str, list[float]] = {}
    with FilterService(
        _STOCK.schema, engine="index", adaptive=False, delivery=mode, **kwargs
    ) as service:
        for item in _PROFILES:
            log: list[float] = []
            received[item.profile_id] = log
            service.subscribe(
                item,
                subscriber=item.subscriber or "bench",
                sink=lambda n, log=log: log.append(n.event["price"]),
            )
        start = time.perf_counter()
        service.publish_batch(_EVENTS)
        service.drain()
        elapsed = time.perf_counter() - start
        statistics = service.broker.statistics
        delivery = service.stats().delivery
    return received, statistics, delivery, elapsed


#: The inline run every mode is compared against (computed once).
_INLINE_REFERENCE = None


def _inline_reference():
    global _INLINE_REFERENCE
    if _INLINE_REFERENCE is None:
        _INLINE_REFERENCE = _run_mode("inline")
    return _INLINE_REFERENCE


@pytest.mark.parametrize("mode", sorted(_MODES))
def test_delivery_throughput(mode, record_delivery, request):
    """Per-mode summary numbers + the cross-mode equivalence gate."""
    if mode == "inline":
        received, statistics, delivery, elapsed = _inline_reference()
    else:
        received, statistics, delivery, elapsed = _run_mode(mode)
    inline_received, inline_statistics, _, _ = _inline_reference()

    # Delivery is downstream of matching: per-subscription notification
    # sets and order are identical whatever executor ran the sinks.
    assert received == inline_received
    assert (
        statistics.average_operations_per_event()
        == inline_statistics.average_operations_per_event()
    )
    assert delivery.pending == 0
    assert delivery.delivered == statistics.total_notifications

    extra: dict[str, float] = {
        "notifications_per_event": statistics.total_notifications / statistics.events,
    }
    if _timing_enabled(request):
        extra["wall_clock_seconds"] = elapsed
        extra["events_per_second"] = len(_EVENTS) / elapsed
    record_delivery(f"stock-ticker[{mode}]", statistics, **extra)
    print(
        f"\ndelivery[{mode}]: {len(_EVENTS) / elapsed:,.0f} events/s, "
        f"{delivery.delivered} notifications delivered"
    )


def test_slow_sink_does_not_stall_the_matcher(request):
    """The tentpole latency claim: a slow subscriber stalls inline
    publishing but not the threadpool's matching path."""
    if not _timing_enabled(request):
        pytest.skip("timing-sensitive: skipped in smoke runs")
    from repro.core.predicates import RangePredicate
    from repro.core.profiles import profile

    delay = 0.002
    events = _EVENTS[:150]
    # A catch-all subscriber turns every event into one slow delivery,
    # so the inline cost is deterministic: len(events) * delay.
    catch_all = profile("bench-tape", price=RangePredicate.at_least(0))

    def measure(mode: str) -> float:
        with FilterService(
            _STOCK.schema,
            engine="index",
            adaptive=False,
            delivery=mode,
            max_workers=8,
            queue_capacity=4096,
        ) as service:
            service.subscribe(
                catch_all, subscriber="bench", sink=lambda n: time.sleep(delay)
            )
            start = time.perf_counter()
            service.publish_batch(events)
            publish_seconds = time.perf_counter() - start
            service.drain()
        return publish_seconds

    inline_seconds = measure("inline")
    pooled_seconds = measure("threadpool")
    print(
        f"\npublish wall-clock with a {delay * 1e3:.0f}ms sink: "
        f"inline {inline_seconds * 1e3:.0f}ms, threadpool {pooled_seconds * 1e3:.0f}ms"
    )
    # Inline pays every sink delay inside publish_batch (>= 300ms here);
    # the pool hands the backlog to its workers and returns.
    assert inline_seconds >= len(events) * delay
    assert pooled_seconds < inline_seconds / 2


@pytest.mark.parametrize("mode", sorted(_MODES))
def test_delivery_benchmark(benchmark, mode):
    """pytest-benchmark visibility of the per-mode end-to-end sweep."""
    benchmark.pedantic(lambda: _run_mode(mode), rounds=1, iterations=1)
