"""Figure 4 benchmarks: influence of value reordering (scenario TV4).

Fig. 4(a): natural order vs event order (Measure V1) vs binary search over
seven event/profile distribution combinations.  Fig. 4(b): Measures V1-V3 vs
binary search over eight combinations.  The regenerated tables are written
to ``benchmarks/output/fig4*.txt`` and quoted in EXPERIMENTS.md.
"""

from repro.experiments.figures.fig4 import figure_4a, figure_4b


def test_fig4a_value_reordering_measure_v1(benchmark, save_table):
    table = benchmark.pedantic(figure_4a, rounds=3, iterations=1)
    save_table(table)
    assert len(table.rows) == 7
    # Paper finding: the event-based order is at least as good as the natural
    # order on every combination (it probes the most probable values first).
    for row in table.rows:
        assert row.values["event order search"] <= row.values["natural order search"] + 1e-9
    # Paper finding: no strategy wins everywhere.
    assert len(set(table.winners().values())) >= 2


def test_fig4b_value_reordering_measures_v1_v3(benchmark, save_table):
    table = benchmark.pedantic(figure_4b, rounds=3, iterations=1)
    save_table(table)
    assert len(table.rows) == 8
    assert set(table.series) == {
        "profile order search",
        "event * profile order search",
        "event order search",
        "binary search",
    }
