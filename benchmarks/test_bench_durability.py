"""Durability benchmarks: WAL overhead, replay time, webhook throughput.

Three questions the ROADMAP's robustness item asks of the durable path:

* **What does journaling cost on subscribe?**  The stock-ticker profile
  set is subscribed once without a store and once per backend; timing
  runs report the per-subscribe overhead, smoke runs gate the journal
  accounting (records appended, snapshots taken) deterministically.
* **How fast is recovery?**  A journal of ``--benchmark`` size (50k
  subscriptions on timing runs, 2k in smoke) boots a fresh
  ``FilterService(store=...)``; the recovered service must match
  bit-identically to a never-restarted one (gated via ops/event).
* **Does a failing endpoint tax the healthy ones?**  The webhook
  executor fans the ticker out across eight endpoints with 5% seeded
  failures on one of them (and then with that endpoint fully dark);
  the healthy lanes' delivered counts must be exact, and on timing
  runs matching throughput must stay within 10% of the no-webhook
  baseline (the isolation gate).
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.api import (
    FilterService,
    JsonlWalStore,
    SqliteSubscriptionStore,
    WebhookConfig,
    WebhookSink,
)
from repro.core.domains import IntegerDomain
from repro.core.events import Event
from repro.core.predicates import RangePredicate
from repro.core.profiles import profile
from repro.core.schema import Attribute, Schema
from repro.testing import InjectedFault
from repro.workloads import build_workload, get_profile

_STOCK = build_workload(
    get_profile("stock-ticker").spec.with_counts(profile_count=400, event_count=1500)
)
_EVENTS = list(_STOCK.events)
_PROFILES = list(_STOCK.profiles)

#: Replay-size knobs: smoke runs stay small (and deterministic for the
#: baseline gate); timing runs take the 50k-subscription measurement.
_REPLAY_SMOKE = 2_000
_REPLAY_TIMING = 50_000


def _timing_enabled(request) -> bool:
    return not request.config.getoption("benchmark_disable", default=False)


def _make_store(backend: str, tmp_path, **kwargs):
    if backend == "jsonl":
        return JsonlWalStore(tmp_path / "wal", **kwargs)
    return SqliteSubscriptionStore(tmp_path / "subs.db", **kwargs)


def _subscribe_all(service: FilterService) -> float:
    start = time.perf_counter()
    service.subscribe_all(_PROFILES, subscriber="bench")
    return time.perf_counter() - start


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_wal_append_overhead_per_subscribe(backend, tmp_path, record_durability, request):
    """Journaling cost of the subscribe path, per backend."""
    bare = FilterService(_STOCK.schema, engine="index", adaptive=False)
    bare_elapsed = _subscribe_all(bare)
    bare.close()

    store = _make_store(backend, tmp_path, snapshot_every=1000)
    durable = FilterService(_STOCK.schema, engine="index", adaptive=False,
                            store=store)
    durable_elapsed = _subscribe_all(durable)
    stats = durable.stats().durability
    assert stats.appended == len(_PROFILES)
    assert stats.last_seq == len(_PROFILES)
    durable.close()

    extra: dict[str, float] = {
        "records_appended": float(stats.appended),
        "snapshots": float(stats.snapshots),
    }
    if _timing_enabled(request):
        overhead = max(0.0, durable_elapsed - bare_elapsed) / len(_PROFILES)
        extra["wall_clock_seconds"] = durable_elapsed
        extra["append_overhead_us_per_subscribe"] = overhead * 1e6
        print(
            f"\ndurability[{backend}]: {overhead * 1e6:.1f} us journaling "
            f"overhead per subscribe ({len(_PROFILES)} profiles)"
        )
    record_durability(f"append-overhead[{backend}]", **extra)


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_replay_time(backend, tmp_path, record_durability, request):
    """Boot-from-journal latency and post-replay matching equivalence."""
    count = _REPLAY_TIMING if _timing_enabled(request) else _REPLAY_SMOKE
    spec = get_profile("stock-ticker").spec.with_counts(profile_count=count, event_count=1)
    profiles = list(build_workload(spec).profiles)

    # Seed the journal directly (the subscribe-path cost is measured
    # above); compaction folds it into one snapshot plus a short tail.
    store = _make_store(backend, tmp_path, snapshot_every=count)
    store.open()
    for index, item in enumerate(profiles):
        store.append("subscribe", f"sub-{index + 1}", profile=item,
                     subscriber=item.subscriber or "bench")
    store.close()

    start = time.perf_counter()
    service = FilterService(
        _STOCK.schema, engine="index", adaptive=False,
        store=_make_store(backend, tmp_path, snapshot_every=count),
    )
    elapsed = time.perf_counter() - start
    stats = service.stats().durability
    assert stats.recovered_subscriptions == count

    # The recovered service matches exactly like a never-restarted one.
    oracle = FilterService(_STOCK.schema, engine="index", adaptive=False)
    oracle.subscribe_all(profiles, subscriber="bench")
    for event in _EVENTS[:500]:
        assert (
            sorted(service.publish(event).match_result.matched_profile_ids)
            == sorted(oracle.publish(event).match_result.matched_profile_ids)
        )
    statistics = service.broker.statistics
    oracle.close()

    extra: dict[str, float] = {
        "recovered_subscriptions": float(stats.recovered_subscriptions),
    }
    if _timing_enabled(request):
        extra["wall_clock_seconds"] = elapsed
        extra["replay_subscriptions_per_second"] = count / elapsed
        print(
            f"\ndurability-replay[{backend}]: {count} subscriptions in "
            f"{elapsed:.2f}s ({count / elapsed:,.0f}/s)"
        )
        record_durability(f"replay-50k[{backend}]", statistics, **extra)
    else:
        record_durability(f"replay[{backend}]", statistics, **extra)
    service.close()


_ENDPOINTS = [f"https://endpoint-{index}.test/hook" for index in range(8)]

# The ticker workload is too selective to stress delivery (a handful of
# notifications per thousand events); the webhook benchmarks use a dense
# seeded band workload instead: 32 price-band profiles, ~3 matches/event.
_HOOK_PRICES = IntegerDomain(0, 9_999)
_HOOK_SCHEMA = Schema([Attribute("price", _HOOK_PRICES)])
_HOOK_PROFILES = [
    profile(f"H{index:02d}",
            price=RangePredicate.between((index * 300) % 9_000,
                                         (index * 300) % 9_000 + 999))
    for index in range(32)
]
_HOOK_RNG = random.Random(7)
_HOOK_EVENTS = [Event({"price": _HOOK_RNG.randrange(10_000)})
                for _ in range(1_500)]


class _SeededFlakyTransport:
    """Fail every 20th post (5%) to the designated flaky endpoint."""

    def __init__(self, flaky_endpoint: str, *, dead: bool = False) -> None:
        self._flaky = flaky_endpoint
        self._dead = dead
        self._lock = threading.Lock()
        self.posts: dict[str, int] = {}
        self.failures = 0

    def __call__(self, endpoint: str, payload: bytes, timeout: float) -> None:
        with self._lock:
            count = self.posts.get(endpoint, 0) + 1
            self.posts[endpoint] = count
            if endpoint == self._flaky and (self._dead or count % 20 == 0):
                self.failures += 1
                raise InjectedFault(f"injected failure #{self.failures}")


def _webhook_service(transport, **config_kwargs) -> FilterService:
    service = FilterService(
        _HOOK_SCHEMA, engine="index", adaptive=False, delivery="webhook",
        webhook=WebhookConfig(transport=transport, max_attempts=2,
                              backoff_base=0.0, jitter=0.0,
                              breaker_cooldown=9e9, **config_kwargs),
        queue_capacity=len(_HOOK_EVENTS) * len(_HOOK_PROFILES),
    )
    for index, item in enumerate(_HOOK_PROFILES):
        service.subscribe(
            item,
            subscriber="bench",
            sink=WebhookSink(_ENDPOINTS[index % len(_ENDPOINTS)]),
        )
    return service


def test_webhook_throughput_with_injected_failures(record_durability, request):
    """5% seeded failures on one endpoint: healthy lanes unaffected."""
    transport = _SeededFlakyTransport(_ENDPOINTS[0])
    service = _webhook_service(transport)
    start = time.perf_counter()
    for event in _HOOK_EVENTS:
        service.publish(event)
    matching_elapsed = time.perf_counter() - start
    service.drain()
    stats = service.stats().delivery
    statistics = service.broker.statistics

    # The retry budget absorbs every 5% transient: nothing is lost, and
    # the healthy lanes deliver their exact notification counts.
    assert stats.delivered == stats.dispatched
    assert stats.dead_lettered == 0
    assert stats.retried == transport.failures > 0
    per_endpoint = {
        endpoint: count
        for endpoint, count in transport.posts.items()
        if endpoint != _ENDPOINTS[0]
    }
    assert sum(per_endpoint.values()) + transport.posts[_ENDPOINTS[0]] \
        == stats.dispatched + transport.failures
    service.close()

    extra = {
        "delivered": float(stats.delivered),
        "injected_failures": float(transport.failures),
    }
    if _timing_enabled(request):
        extra["wall_clock_seconds"] = matching_elapsed
        extra["events_per_second"] = len(_HOOK_EVENTS) / matching_elapsed
    record_durability("webhook-flaky-5pct", statistics, **extra)


def test_dead_endpoint_isolation_gate(record_durability, request):
    """One dark endpoint: its lane dead-letters, the other seven lanes
    deliver everything, and matching stays within 10% of no-webhook."""
    transport = _SeededFlakyTransport(_ENDPOINTS[0], dead=True)
    service = _webhook_service(transport, breaker_threshold=5)
    start = time.perf_counter()
    for event in _HOOK_EVENTS:
        service.publish(event)
    webhook_elapsed = time.perf_counter() - start
    service.drain()
    stats = service.stats().delivery
    statistics = service.broker.statistics
    dead = len(service.dead_letters())
    service.close()

    # Healthy lanes: every post of the seven live endpoints landed.
    healthy_posts = sum(
        count for endpoint, count in transport.posts.items()
        if endpoint != _ENDPOINTS[0]
    )
    assert stats.delivered == healthy_posts
    assert stats.delivered + stats.dead_lettered == stats.dispatched
    assert dead == min(stats.dead_lettered, 256)  # DLQ capacity

    extra = {
        "delivered": float(stats.delivered),
        "dead_lettered": float(stats.dead_lettered),
    }
    if _timing_enabled(request):
        # The no-webhook matching baseline: same subscriptions, no sinks
        # leaving the process.
        baseline = FilterService(_HOOK_SCHEMA, engine="index", adaptive=False)
        baseline.subscribe_all(_HOOK_PROFILES, subscriber="bench")
        start = time.perf_counter()
        for event in _HOOK_EVENTS:
            baseline.publish(event)
        baseline_elapsed = time.perf_counter() - start
        baseline.close()
        slowdown = webhook_elapsed / baseline_elapsed
        print(
            f"\nwebhook-isolation: matching {webhook_elapsed:.2f}s with a dark "
            f"endpoint vs {baseline_elapsed:.2f}s bare ({slowdown:.2f}x)"
        )
        # The acceptance gate, with a small absolute floor so micro-run
        # jitter on a fast machine cannot trip it.
        assert webhook_elapsed <= baseline_elapsed * 1.10 + 0.25
        extra["wall_clock_seconds"] = webhook_elapsed
        extra["baseline_wall_clock_seconds"] = baseline_elapsed
    record_durability("webhook-dead-endpoint", statistics, **extra)
