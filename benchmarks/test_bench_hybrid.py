"""Mixed-workload benchmark: calibrated ``auto`` vs every fixed family.

The mixed-structure workload (the ``"mixed-structure"`` corpus profile)
combines an equality-sparse attribute, a range-heavy mixed attribute whose
broad ranges nearly all match, and a narrow-band attribute — so the best
per-attribute structures disagree and no single fixed family is optimal:

* the **tree** walks its root edges sequentially, paying for the 2000-way
  symbol spread,
* **counting** evaluates every distinct range predicate per event,
* the binary **index** keeps the metric interval index coupled to the
  winning hash and pays the probe overhead on near-total covers,
* only the **hybrid** per-attribute plan keeps the metric hash while
  demoting the overlapping interval side to a scan.

The gate is deterministic: under the fixed workload seeds the charged
comparison ops/event of every engine — including the calibrated ``auto``
run, whose arbitration reads op counters, never the clock — are exact, so
``auto`` must land on the hybrid plan and strictly beat each fixed family.
Wall-clock numbers are recorded for timing-trusted runs only and are never
part of the acceptance comparison (the ``auto`` run spends real time
*building* candidates at every arbitration, which the op metric rightly
ignores).
"""

import time

from repro.matching import FilterStatistics, PredicateIndexMatcher
from repro.matching.index import IndexPlanner
from repro.service import AdaptationPolicy, AdaptiveFilterEngine
from repro.workloads import build_workload, get_profile

_WORKLOAD = build_workload(get_profile("mixed-structure").spec)
_EVENTS = list(_WORKLOAD.events)

#: One engine run per family, shared across the tests of this module.
_RUNS: dict[str, tuple[FilterStatistics, float, AdaptiveFilterEngine]] = {}

_FIXED_FAMILIES = ("index", "tree", "counting")

_POLICY = dict(reoptimize_interval=1000, warmup_events=1000)


def _run(engine_name: str) -> tuple[FilterStatistics, float, AdaptiveFilterEngine]:
    if engine_name not in _RUNS:
        profiles = build_workload(get_profile("mixed-structure").spec).profiles
        engine = AdaptiveFilterEngine(
            profiles, policy=AdaptationPolicy(engine=engine_name, **_POLICY)
        )
        statistics = FilterStatistics()
        start = time.perf_counter()
        for event in _EVENTS:
            statistics.record(engine.match(event))
        wall = time.perf_counter() - start
        _RUNS[engine_name] = (statistics, wall, engine)
    return _RUNS[engine_name]


def _timing_enabled(request) -> bool:
    return not request.config.getoption("benchmark_disable", default=False)


def test_hybrid_plan_demotes_only_the_overlapping_interval():
    """Plan shape on the mixed workload: a genuinely per-attribute mix."""
    matcher = PredicateIndexMatcher(
        _WORKLOAD.profiles,
        planner=IndexPlanner(dict(_WORKLOAD.event_distributions), hybrid=True),
    )
    symbol = matcher.plan.plan_for("symbol")
    metric = matcher.plan.plan_for("metric")
    band = matcher.plan.plan_for("band")
    assert symbol.use_hash
    # The near-total-overlap ranges are demoted to a scan while the
    # selective equalities on the *same attribute* keep their hash.
    assert metric.is_hybrid and metric.use_hash and not metric.use_interval
    # The narrow alert bands stay on the interval index.
    assert band.use_interval


def test_calibrated_auto_beats_every_fixed_family(record_hybrid, request):
    """The acceptance gate: deterministic ops/event, auto wins outright."""
    auto_stats, auto_wall, auto_engine = _run("auto")
    auto_ops = auto_stats.average_operations_per_event()

    fixed_ops = {}
    for family in _FIXED_FAMILIES:
        statistics, wall, _ = _run(family)
        fixed_ops[family] = statistics.average_operations_per_event()
        extra = {}
        if _timing_enabled(request):
            extra["wall_clock_seconds"] = wall
        record_hybrid(family, statistics, **extra)

    records = auto_engine.adaptations()
    extra = {
        "correction_factor_final": records[-1].correction_factor,
        "adaptations_applied": float(sum(1 for r in records if r.applied)),
    }
    if _timing_enabled(request):
        extra["wall_clock_seconds"] = auto_wall
    record_hybrid("auto[calibrated]", auto_stats, **extra)

    print(f"\nauto[calibrated]: {auto_ops:.2f} ops/event")
    for family, ops in fixed_ops.items():
        print(f"{family}: {ops:.2f} ops/event ({ops / auto_ops:.2f}x of auto)")

    # auto must have arbitrated its way onto the hybrid plan…
    assert any(r.engine == "hybrid" and r.applied for r in records)
    matcher = auto_engine.matcher
    assert isinstance(matcher, PredicateIndexMatcher) and matcher.planner.hybrid
    # …and strictly beat every fixed family on the exact op metric.
    for family, ops in fixed_ops.items():
        assert auto_ops < ops, f"auto {auto_ops:.3f} did not beat {family} {ops:.3f}"
    # The scan-family margins are not marginal.
    assert fixed_ops["tree"] > 10 * auto_ops
    assert fixed_ops["counting"] > 10 * auto_ops


def test_calibration_error_shrinks_across_intervals():
    """Measured feedback drives the hybrid misprediction down interval by
    interval — the model claims ~58 ops/event, reality is ~7, and the
    EWMA factor closes the gap geometrically (deterministic under the
    fixed seeds: op counters, not clocks, feed the calibrator)."""
    _, _, engine = _run("auto")
    samples = [s for s in engine.calibration().recent if s.family == "hybrid"]
    assert len(samples) >= 4
    errors = [s.error for s in samples]
    assert all(late < early for early, late in zip(errors, errors[1:])), (
        f"calibrated misprediction not strictly decreasing: {errors}"
    )
    assert errors[-1] < errors[0] / 8
    assert 0.0 < engine.calibrator.factor("hybrid") < 0.3


def test_hybrid_matcher_throughput(benchmark):
    """pytest-benchmark visibility for the hybrid matcher on the mixed mix."""
    matcher = PredicateIndexMatcher(
        _WORKLOAD.profiles,
        planner=IndexPlanner(dict(_WORKLOAD.event_distributions), hybrid=True),
    )
    benchmark.pedantic(lambda: matcher.match_batch(_EVENTS), rounds=2, iterations=1)
